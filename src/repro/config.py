"""Configuration objects for the neural fault injection pipeline.

Configuration is expressed as plain dataclasses with validation in
``__post_init__`` so that mistakes surface at construction time rather than
deep inside a training loop or an injection campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any, Mapping

from .errors import ConfigurationError


@dataclass
class ModelConfig:
    """Hyper-parameters of the fault-generation policy network.

    ``encoder_cache_size``, ``render_cache_size``, and
    ``compiled_cache_size`` bound the prompt-keyed memoization caches of
    :class:`~repro.llm.features.FeatureEncoder`,
    :class:`~repro.llm.grammar.CodeGrammar`, and
    :class:`~repro.llm.compiled_grammar.GrammarCompiler` (LRU entries; ``0``
    disables a cache entirely, which the benchmarks use for the uncached
    per-sample reference path).  ``compiled_decode`` routes generation
    through the compiled-grammar decode engine (cached decision automatons
    with jump-forward over force-determined slots); it is behaviourally
    equivalent to the interpreted path — identical faults and RNG streams —
    and exists as a flag for the ablation benchmark and differential tests.
    """

    embedding_dim: int = 32
    hidden_dim: int = 64
    feature_dim: int = 96
    learning_rate: float = 0.05
    seed: int = 7
    temperature: float = 1.0
    top_k: int | None = None
    top_p: float | None = None
    constrain_to_spec: bool = True
    spec_constraint_threshold: float = 0.3
    encoder_cache_size: int = 2048
    render_cache_size: int = 1024
    compiled_decode: bool = True
    compiled_cache_size: int = 512

    def __post_init__(self) -> None:
        if not (0.0 <= self.spec_constraint_threshold <= 1.0):
            raise ConfigurationError("spec_constraint_threshold must be in [0, 1]")
        if self.embedding_dim <= 0 or self.hidden_dim <= 0 or self.feature_dim <= 0:
            raise ConfigurationError("model dimensions must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.temperature <= 0:
            raise ConfigurationError("temperature must be positive")
        if self.top_k is not None and self.top_k <= 0:
            raise ConfigurationError("top_k must be positive when set")
        if self.top_p is not None and not (0.0 < self.top_p <= 1.0):
            raise ConfigurationError("top_p must be in (0, 1] when set")
        if (
            self.encoder_cache_size < 0
            or self.render_cache_size < 0
            or self.compiled_cache_size < 0
        ):
            raise ConfigurationError("cache sizes must be non-negative (0 disables)")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class SFTConfig:
    """Supervised fine-tuning schedule."""

    epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 0.05
    shuffle: bool = True
    seed: int = 11

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class RLHFConfig:
    """Reinforcement learning from human feedback schedule."""

    iterations: int = 4
    candidates_per_iteration: int = 4
    reward_learning_rate: float = 0.1
    reward_epochs: int = 30
    policy_learning_rate: float = 0.05
    kl_beta: float = 0.1
    baseline_momentum: float = 0.9
    seed: int = 13

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if self.candidates_per_iteration <= 0:
            raise ConfigurationError("candidates_per_iteration must be positive")
        if self.kl_beta < 0:
            raise ConfigurationError("kl_beta must be non-negative")
        if not (0.0 <= self.baseline_momentum < 1.0):
            raise ConfigurationError("baseline_momentum must be in [0, 1)")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class IntegrationConfig:
    """Sandboxed integration and testing behaviour."""

    test_timeout_seconds: float = 10.0
    workload_iterations: int = 25
    capture_output: bool = True
    keep_workspaces: bool = False

    def __post_init__(self) -> None:
        if self.test_timeout_seconds <= 0:
            raise ConfigurationError("test_timeout_seconds must be positive")
        if self.workload_iterations <= 0:
            raise ConfigurationError("workload_iterations must be positive")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


#: Execution modes understood by the sandbox runner and campaign orchestrator.
EXECUTION_MODES = ("inprocess", "subprocess", "pool", "distributed")


@dataclass
class DistributedConfig:
    """The distributed execution plane (:mod:`repro.distributed`).

    The coordinator binds ``host:port`` (``port=0`` picks an ephemeral port,
    published on the pool's ``address``) and accepts remote sandbox workers
    over TCP.  With ``spawn_workers`` (the default) the first distributed
    batch also spawns a localhost fleet of ``workers`` processes (``0``
    defers to ``ExecutionConfig.max_workers``), each advertising
    ``worker_capacity`` inner sandbox slots; external workers started with
    ``python -m repro worker --connect HOST:PORT`` may join at any time.

    ``lease_size`` bounds how many tasks ride one lease (``0`` defers to the
    worker's advertised capacity).  A worker that misses heartbeats for
    ``heartbeat_timeout_seconds`` — workers beat every
    ``heartbeat_interval_seconds`` while executing — is declared lost and its
    lease requeued under the :class:`ResilienceConfig` retry budget.  When no
    workers at all are connected for ``worker_wait_seconds`` during an active
    batch, outstanding tasks fail with error payloads instead of hanging.
    """

    host: str = "127.0.0.1"
    port: int = 0
    spawn_workers: bool = True
    workers: int = 0
    worker_capacity: int = 1
    lease_size: int = 0
    heartbeat_interval_seconds: float = 0.25
    heartbeat_timeout_seconds: float = 5.0
    worker_wait_seconds: float = 30.0

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ConfigurationError("distributed host must be a non-empty string")
        if not (0 <= self.port <= 65535):
            raise ConfigurationError("distributed port must be in [0, 65535] (0 = ephemeral)")
        if self.workers < 0:
            raise ConfigurationError("distributed workers must be non-negative (0 = auto)")
        if self.worker_capacity <= 0:
            raise ConfigurationError("worker_capacity must be positive")
        if self.lease_size < 0:
            raise ConfigurationError("lease_size must be non-negative (0 = worker capacity)")
        if self.heartbeat_interval_seconds <= 0:
            raise ConfigurationError("heartbeat_interval_seconds must be positive")
        if self.heartbeat_timeout_seconds <= self.heartbeat_interval_seconds:
            raise ConfigurationError(
                "heartbeat_timeout_seconds must exceed heartbeat_interval_seconds"
            )
        if self.worker_wait_seconds <= 0:
            raise ConfigurationError("worker_wait_seconds must be positive")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class ExecutionConfig:
    """How campaign experiments are scheduled across workers.

    ``max_workers`` is a request, not a guarantee: pools are capped from
    ``os.cpu_count()`` (see :func:`repro.execution.resolve_workers`).
    ``distributed`` configures the machine-spanning plane used when a
    request (or ``default_mode``) selects ``"distributed"``.
    """

    max_workers: int | None = None
    batch_size: int = 32
    default_mode: str = "inprocess"
    distributed: DistributedConfig = field(default_factory=DistributedConfig)

    def __post_init__(self) -> None:
        if isinstance(self.distributed, Mapping):
            self.distributed = DistributedConfig(**self.distributed)
        if self.max_workers is not None and self.max_workers <= 0:
            raise ConfigurationError("max_workers must be positive when set")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.default_mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"default_mode must be one of {EXECUTION_MODES}, got {self.default_mode!r}"
            )

    def resolved_workers(self, requested: int | None = None) -> int:
        """The worker count actually used, capped by the machine's CPU count."""
        from .execution import resolve_workers

        return resolve_workers(requested if requested is not None else self.max_workers)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class DatasetConfig:
    """Dataset generation parameters (Section IV-1).

    When ``validate_candidates`` is set, every applied fault candidate is
    executed against its target through the shared sandbox runner (one pooled
    batch per target, scheduled per :class:`ExecutionConfig`) and candidates
    whose mutated module cannot even be loaded are dropped from the dataset.
    The keep/discard decision only depends on module load success, so one
    workload iteration (the default) is enough; raise
    ``validation_iterations`` only to make the validation run double as a
    deeper workload smoke test.  Validation always runs in a
    timeout-protected sandbox: an ``inprocess`` execution config is promoted
    to ``subprocess``, because arbitrary mutants can hang and in-process
    execution has no timeout.
    """

    samples_per_target: int = 50
    seed: int = 17
    max_faults_per_function: int = 3
    include_descriptions: bool = True
    validate_candidates: bool = False
    validation_iterations: int = 1
    validation_timeout_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.samples_per_target <= 0:
            raise ConfigurationError("samples_per_target must be positive")
        if self.max_faults_per_function <= 0:
            raise ConfigurationError("max_faults_per_function must be positive")
        if self.validation_iterations <= 0:
            raise ConfigurationError("validation_iterations must be positive")
        if self.validation_timeout_seconds <= 0:
            raise ConfigurationError("validation_timeout_seconds must be positive")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class ChaosConfig:
    """Self-chaos injection into the library's own execution plane.

    When ``enabled``, pool workers deterministically misbehave — crash
    mid-task (``worker_crash_probability``), stall before executing
    (``task_delay_probability`` / ``task_delay_seconds``), or drop the
    computed result on the floor (``drop_result_probability``) — so the
    supervision layer (requeue-on-death, retry budgets, quarantine) is
    exercised by the library's own test suite rather than trusted on faith.

    Decisions are pure functions of ``(seed, task key, attempt)`` and only
    ever fire on a task's first attempt, so chaotic campaigns always
    terminate and — because the workload itself is untouched — produce
    byte-identical results to fault-free runs (the differential suite in
    ``tests/test_chaos_differential.py`` pins this).
    """

    enabled: bool = False
    seed: int = 31
    worker_crash_probability: float = 0.0
    task_delay_probability: float = 0.0
    task_delay_seconds: float = 0.05
    drop_result_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("worker_crash_probability", "task_delay_probability", "drop_result_probability"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.task_delay_seconds < 0:
            raise ConfigurationError("task_delay_seconds must be non-negative")

    def any_faults(self) -> bool:
        """Whether this configuration can actually inject anything."""
        return self.enabled and (
            self.worker_crash_probability > 0
            or self.task_delay_probability > 0
            or self.drop_result_probability > 0
        )

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class ResilienceConfig:
    """Failure-handling behaviour of the serving and execution planes.

    ``supervise`` turns on the worker pool's supervision loop (proactive
    liveness checks, requeue-on-worker-death, poison-task quarantine);
    ``task_retry_budget`` bounds how often one task may be re-executed after
    its worker died, and ``quarantine_threshold`` is how many worker deaths
    one task may cause before it is failed individually instead of recycling
    the pool forever.  The retry fields parameterize the deterministic
    exponential-backoff :class:`~repro.resilience.RetryPolicy` wrapped around
    sandbox execution; the breaker fields parameterize the per-(target, mode)
    :class:`~repro.resilience.CircuitBreaker`.  ``chaos`` configures the
    self-chaos harness (:class:`ChaosConfig`).
    """

    supervise: bool = True
    task_retry_budget: int = 3
    quarantine_threshold: int = 2
    retry_max_attempts: int = 3
    retry_base_delay_seconds: float = 0.02
    retry_max_delay_seconds: float = 1.0
    retry_jitter: float = 0.25
    retry_seed: int = 29
    breaker_failure_threshold: int = 5
    breaker_recovery_seconds: float = 5.0
    breaker_half_open_calls: int = 1
    chaos: ChaosConfig = field(default_factory=ChaosConfig)

    def __post_init__(self) -> None:
        if isinstance(self.chaos, Mapping):
            self.chaos = ChaosConfig(**self.chaos)
        if self.task_retry_budget < 0:
            raise ConfigurationError("task_retry_budget must be non-negative")
        if self.quarantine_threshold <= 0:
            raise ConfigurationError("quarantine_threshold must be positive")
        if self.retry_max_attempts <= 0:
            raise ConfigurationError("retry_max_attempts must be positive")
        if self.retry_base_delay_seconds < 0 or self.retry_max_delay_seconds < 0:
            raise ConfigurationError("retry delays must be non-negative")
        if not (0.0 <= self.retry_jitter <= 1.0):
            raise ConfigurationError("retry_jitter must be in [0, 1]")
        if self.breaker_failure_threshold <= 0:
            raise ConfigurationError("breaker_failure_threshold must be positive")
        if self.breaker_recovery_seconds < 0:
            raise ConfigurationError("breaker_recovery_seconds must be non-negative")
        if self.breaker_half_open_calls <= 0:
            raise ConfigurationError("breaker_half_open_calls must be positive")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class EngineConfig:
    """Serving behaviour of the :class:`~repro.api.FaultInjectionEngine`.

    The engine's continuous-batching scheduler drains up to ``max_batch_size``
    queued :class:`~repro.api.GenerateRequest` objects per dispatch (``None``
    defers to ``ExecutionConfig.batch_size``), waiting at most
    ``max_queue_delay_seconds`` after the first request arrives so concurrent
    clients coalesce into one batched forward pass.  ``extract_cache_size``
    bounds the description-hash LRU cache of the shared
    :class:`~repro.nlp.FaultSpecExtractor` (``0`` disables it).
    """

    max_batch_size: int | None = None
    max_queue_delay_seconds: float = 0.002
    extract_cache_size: int = 2048

    def __post_init__(self) -> None:
        if self.max_batch_size is not None and self.max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive when set")
        if self.max_queue_delay_seconds < 0:
            raise ConfigurationError("max_queue_delay_seconds must be non-negative")
        if self.extract_cache_size < 0:
            raise ConfigurationError("extract_cache_size must be non-negative (0 disables)")

    def resolved_batch_size(self, execution: "ExecutionConfig") -> int:
        """The scheduler batch bound actually used for one dispatch."""
        return self.max_batch_size if self.max_batch_size is not None else execution.batch_size

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class ServerConfig:
    """Behaviour of the HTTP/JSON serving front-end (:mod:`repro.server`).

    ``request_retention`` bounds how many *completed* async envelopes the
    server keeps for ``GET /v1/requests/<id>`` polling — oldest finished
    tickets are evicted first, pending tickets are never evicted.
    ``max_body_bytes`` caps accepted request bodies (HTTP 413 beyond it);
    ``drain_timeout_seconds`` bounds how long a graceful shutdown waits for
    queued async tickets to resolve before closing the engine anyway.
    ``max_queue_depth`` is the admission-control bound: request submissions
    arriving while the engine scheduler already holds that many queued
    tickets are shed with HTTP 429 and a ``Retry-After`` of
    ``retry_after_seconds`` (``0`` disables shedding).

    ``shards`` selects the serving topology: ``1`` (the default) runs the
    classic single-engine front-end, while ``N > 1`` runs N engine worker
    processes behind a consistent-hash router (docs/SHARDING.md) — each
    shard owns a full engine/scheduler/pool stack and requests for one
    target always land on the same shard.  ``shard_queue_depth`` bounds each
    shard's own scheduler queue for per-shard admission control (``None``
    inherits ``max_queue_depth``); a dataset burst can then saturate one
    shard's queue without shedding generate traffic routed elsewhere.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    request_retention: int = 256
    max_body_bytes: int = 1 << 20
    drain_timeout_seconds: float = 30.0
    max_queue_depth: int = 128
    retry_after_seconds: float = 1.0
    shards: int = 1
    shard_queue_depth: int | None = None

    #: serve CLI flag -> ServerConfig field consumed by :meth:`from_args`.
    _ARG_FIELDS = (
        ("host", "host"),
        ("port", "port"),
        ("max_queue_depth", "max_queue_depth"),
        ("shards", "shards"),
        ("shard_queue_depth", "shard_queue_depth"),
    )

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ConfigurationError("host must be a non-empty string")
        if not (0 <= self.port <= 65535):
            raise ConfigurationError("port must be in [0, 65535] (0 = ephemeral)")
        if self.request_retention <= 0:
            raise ConfigurationError("request_retention must be positive")
        if self.max_body_bytes <= 0:
            raise ConfigurationError("max_body_bytes must be positive")
        if self.drain_timeout_seconds <= 0:
            raise ConfigurationError("drain_timeout_seconds must be positive")
        if self.max_queue_depth < 0:
            raise ConfigurationError("max_queue_depth must be non-negative (0 disables shedding)")
        if self.retry_after_seconds <= 0:
            raise ConfigurationError("retry_after_seconds must be positive")
        if self.shards <= 0:
            raise ConfigurationError("shards must be positive (1 = single-engine serving)")
        if self.shard_queue_depth is not None and self.shard_queue_depth < 0:
            raise ConfigurationError(
                "shard_queue_depth must be non-negative when set (0 disables shedding)"
            )

    def resolved_shard_queue_depth(self) -> int:
        """The per-shard admission bound actually applied to shard engines."""
        return (
            self.shard_queue_depth
            if self.shard_queue_depth is not None
            else self.max_queue_depth
        )

    @classmethod
    def from_args(cls, args: Any, base: "ServerConfig | None" = None) -> "ServerConfig":
        """The single validated entry point from ``serve`` CLI flags.

        The individual ``--host``/``--port``/``--max-queue-depth``/
        ``--shards``/``--shard-queue-depth`` flags are aliases for the fields
        of this dataclass; they are applied here in one place so every flag
        combination goes through ``__post_init__`` validation.  ``args`` may
        be an ``argparse.Namespace`` or any object with the flag attributes
        (missing/``None`` attributes keep the base value).

        Args:
            args: Parsed CLI arguments (attributes named after the flags).
            base: Configuration the flags override (default: ``ServerConfig()``).

        Returns:
            A validated configuration with the overrides applied.
        """
        config = base if base is not None else cls()
        overrides = {}
        for attr, field_name in cls._ARG_FIELDS:
            value = getattr(args, attr, None)
            if value is not None:
                overrides[field_name] = value
        if not overrides:
            return config
        from dataclasses import replace

        return replace(config, **overrides)

    def shard_child(self) -> "ServerConfig":
        """The configuration one shard worker process serves with.

        Shards bind loopback ephemeral ports behind the router, run the
        single-engine topology, and apply the per-shard admission bound.
        """
        from dataclasses import replace

        return replace(
            self,
            host="127.0.0.1",
            port=0,
            shards=1,
            shard_queue_depth=None,
            max_queue_depth=self.resolved_shard_queue_depth(),
        )

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class PipelineConfig:
    """Top-level configuration for the end-to-end pipeline (Fig. 1)."""

    model: ModelConfig = field(default_factory=ModelConfig)
    sft: SFTConfig = field(default_factory=SFTConfig)
    rlhf: RLHFConfig = field(default_factory=RLHFConfig)
    integration: IntegrationConfig = field(default_factory=IntegrationConfig)
    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    max_refinement_iterations: int = 5
    use_code_context: bool = True
    seed: int = 23

    def __post_init__(self) -> None:
        if self.max_refinement_iterations <= 0:
            raise ConfigurationError("max_refinement_iterations must be positive")

    def to_dict(self) -> dict[str, Any]:
        return {
            "model": self.model.to_dict(),
            "sft": self.sft.to_dict(),
            "rlhf": self.rlhf.to_dict(),
            "integration": self.integration.to_dict(),
            "dataset": self.dataset.to_dict(),
            "execution": self.execution.to_dict(),
            "engine": self.engine.to_dict(),
            "server": self.server.to_dict(),
            "resilience": self.resilience.to_dict(),
            "max_refinement_iterations": self.max_refinement_iterations,
            "use_code_context": self.use_code_context,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineConfig":
        """Build a configuration from a nested mapping (e.g. parsed JSON)."""
        def build(klass, key):
            value = data.get(key, {})
            if not isinstance(value, Mapping):
                raise ConfigurationError(f"{key} section must be a mapping")
            return klass(**value)

        return cls(
            model=build(ModelConfig, "model"),
            sft=build(SFTConfig, "sft"),
            rlhf=build(RLHFConfig, "rlhf"),
            integration=build(IntegrationConfig, "integration"),
            dataset=build(DatasetConfig, "dataset"),
            execution=build(ExecutionConfig, "execution"),
            engine=build(EngineConfig, "engine"),
            server=build(ServerConfig, "server"),
            resilience=build(ResilienceConfig, "resilience"),
            max_refinement_iterations=int(data.get("max_refinement_iterations", 5)),
            use_code_context=bool(data.get("use_code_context", True)),
            seed=int(data.get("seed", 23)),
        )
