"""A message-queue / microservice pipeline target."""

from __future__ import annotations

import types
from typing import Any

from ..rng import SeededRNG
from .base import TargetSystem

_SOURCE = '''
"""A message broker with at-least-once delivery used as an injection target."""

import threading

_lock = threading.Lock()
_topics = {}
_dead_letter = []
_delivered = {}
_stats = {"published": 0, "consumed": 0, "acked": 0, "retried": 0}

MAX_DELIVERY_ATTEMPTS = 3


class TopicNotFoundError(Exception):
    """Raised when publishing to or consuming from a missing topic."""


def reset_broker(topics):
    """Reset the broker with the given topic names."""
    _topics.clear()
    _dead_letter.clear()
    _delivered.clear()
    for key in _stats:
        _stats[key] = 0
    for topic in topics:
        _topics[topic] = []


def publish(topic, payload):
    """Append a message to a topic; returns the message id."""
    if topic not in _topics:
        raise TopicNotFoundError("no such topic: " + topic)
    with _lock:
        message_id = _stats["published"] + 1
        _stats["published"] += 1
        _topics[topic].append({"id": message_id, "payload": payload, "attempts": 0})
    return message_id


def consume(topic):
    """Take the oldest message from a topic (None when empty)."""
    if topic not in _topics:
        raise TopicNotFoundError("no such topic: " + topic)
    with _lock:
        if not _topics[topic]:
            return None
        message = _topics[topic].pop(0)
        message["attempts"] += 1
        _stats["consumed"] += 1
    return message


def acknowledge(topic, message):
    """Mark a message as successfully processed exactly once."""
    with _lock:
        _delivered.setdefault(topic, []).append(message["id"])
        _stats["acked"] += 1
    return True


def negative_acknowledge(topic, message):
    """Return a message to its topic for redelivery, or dead-letter it."""
    if message["attempts"] >= MAX_DELIVERY_ATTEMPTS:
        _dead_letter.append(message)
        return False
    with _lock:
        _topics[topic].insert(0, message)
        _stats["retried"] += 1
    return True


def process(topic, handler):
    """Consume one message and run ``handler`` on it with retry-on-error."""
    message = consume(topic)
    if message is None:
        return None
    try:
        result = handler(message["payload"])
    except Exception:
        negative_acknowledge(topic, message)
        return None
    acknowledge(topic, message)
    return result


def pending(topic):
    """Number of messages waiting in a topic."""
    if topic not in _topics:
        raise TopicNotFoundError("no such topic: " + topic)
    return len(_topics[topic])


def delivered_ids(topic):
    """Message ids acknowledged for a topic."""
    return list(_delivered.get(topic, []))


def dead_letter_count():
    """Number of messages routed to the dead-letter queue."""
    return len(_dead_letter)


def stats():
    """Copy of the broker counters."""
    return dict(_stats)
'''


class QueueTarget(TargetSystem):
    """Message broker with acknowledgements, retries, and a dead-letter queue."""

    name = "queue"
    description = "Message queue pipeline (publish, consume, ack, retry, dead-letter)"

    _TOPICS = ("orders", "emails")

    def _build_source(self) -> str:
        return _SOURCE

    def run_workload(self, module: types.ModuleType, iterations: int, rng: SeededRNG) -> dict[str, Any]:
        module.reset_broker(list(self._TOPICS))
        detected_errors = 0
        published = 0
        handled_payloads: list[int] = []
        flaky_state = {"count": 0}

        def handler(payload: int) -> int:
            flaky_state["count"] += 1
            if payload % 13 == 0:
                raise RuntimeError("handler rejected payload")
            handled_payloads.append(payload)
            return payload * 2

        for step in range(iterations):
            topic = rng.choice(list(self._TOPICS))
            payload = rng.randint(1, 10_000)
            try:
                module.publish(topic, payload)
                published += 1
            except module.TopicNotFoundError:
                detected_errors += 1
            try:
                module.process(topic, handler)
            except module.TopicNotFoundError:
                detected_errors += 1
        # Drain whatever is left so every message reaches a terminal state.
        for topic in self._TOPICS:
            guard = 0
            while module.pending(topic) > 0 and guard < iterations * 4:
                module.process(topic, handler)
                guard += 1
        stats = module.stats()
        delivered = sum(len(module.delivered_ids(topic)) for topic in self._TOPICS)
        duplicates = delivered - len(
            set(message_id for topic in self._TOPICS for message_id in module.delivered_ids(topic))
        )
        remaining = sum(module.pending(topic) for topic in self._TOPICS)
        return {
            "detected_errors": detected_errors,
            "published": published,
            "delivered": delivered,
            "dead_lettered": module.dead_letter_count(),
            "remaining": remaining,
            "duplicates": duplicates,
            "handled": len(handled_payloads),
            "stats": stats,
        }

    def check_invariants(self, module: types.ModuleType, metrics: dict[str, Any]) -> list[str]:
        def number(key: str) -> float:
            value = metrics.get(key, 0)
            return 0 if not isinstance(value, (int, float)) else value

        violations: list[str] = []
        accounted = number("delivered") + number("dead_lettered") + number("remaining")
        if accounted < number("published"):
            violations.append(
                f"messages lost: published {metrics.get('published')} but only {accounted} accounted for"
            )
        if metrics.get("duplicates", 0) > 0:
            violations.append(f"{metrics['duplicates']} messages acknowledged more than once")
        if metrics.get("remaining", 0) > 0:
            violations.append(f"{metrics['remaining']} messages stuck in topics after draining")
        return violations
