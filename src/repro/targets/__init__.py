"""Target systems: the applications faults are injected into.

Four self-contained applications with realistic injection surfaces (locks,
retries, loops, resource handles, network- and disk-shaped calls), each paired
with a deterministic workload and invariant checks used to detect silent data
corruption:

* :class:`EcommerceTarget` — the paper's running-example domain;
* :class:`KVStoreTarget` — write-ahead-logged key-value store;
* :class:`BankTarget` — money-conserving account ledger;
* :class:`QueueTarget` — at-least-once message broker.
"""

from .bank import BankTarget
from .base import TargetRunResult, TargetSystem
from .ecommerce import EcommerceTarget
from .kvstore import KVStoreTarget
from .queueing import QueueTarget
from .registry import TARGET_REGISTRY, all_targets, get_target, target_names

__all__ = [
    "BankTarget",
    "EcommerceTarget",
    "KVStoreTarget",
    "QueueTarget",
    "TARGET_REGISTRY",
    "TargetRunResult",
    "TargetSystem",
    "all_targets",
    "get_target",
    "target_names",
]
