"""An in-memory key-value store target with persistence and compaction."""

from __future__ import annotations

import types
from typing import Any

from ..rng import SeededRNG
from .base import TargetSystem

_SOURCE = '''
"""A write-ahead-logged in-memory key-value store used as an injection target."""

import threading

_lock = threading.Lock()
_data = {}
_wal = []
_snapshots = []
_stats = {"puts": 0, "gets": 0, "deletes": 0, "compactions": 0}


class StoreClosedError(Exception):
    """Raised when operating on a store that has been shut down."""


_state = {"open": True}


def reset_store():
    """Clear all data, the write-ahead log, and statistics."""
    _data.clear()
    _wal.clear()
    _snapshots.clear()
    _state["open"] = True
    for key in _stats:
        _stats[key] = 0


def _ensure_open():
    if not _state["open"]:
        raise StoreClosedError("store is closed")


def put(key, value):
    """Insert or update a key, appending the operation to the write-ahead log."""
    _ensure_open()
    if key is None:
        raise ValueError("key must not be None")
    with _lock:
        _wal.append(("put", key, value))
        _data[key] = value
        _stats["puts"] += 1
    return value


def get(key, default=None):
    """Read a key, returning ``default`` when absent."""
    _ensure_open()
    _stats["gets"] += 1
    if key in _data:
        return _data[key]
    return default


def delete(key):
    """Remove a key; returns True if it existed."""
    _ensure_open()
    with _lock:
        if key not in _data:
            return False
        _wal.append(("delete", key, None))
        del _data[key]
        _stats["deletes"] += 1
        return True


def compact():
    """Fold the write-ahead log into a snapshot and truncate it."""
    _ensure_open()
    with _lock:
        snapshot = dict(_data)
        _snapshots.append(snapshot)
        del _wal[:]
        _stats["compactions"] += 1
    return len(snapshot)


def replay():
    """Rebuild the dataset from the latest snapshot plus the write-ahead log."""
    state = dict(_snapshots[-1]) if _snapshots else {}
    for operation, key, value in _wal:
        if operation == "put":
            state[key] = value
        elif operation == "delete" and key in state:
            del state[key]
    return state


def write_snapshot_to(path):
    """Persist the latest state to disk (line-per-entry text format)."""
    handle = open(path, "w")
    for key in sorted(_data):
        handle.write(str(key) + "=" + str(_data[key]) + "\\n")
    handle.flush()
    handle.close()
    return len(_data)


def size():
    """Number of live keys."""
    return len(_data)


def close_store():
    """Shut the store down; subsequent operations fail fast."""
    _state["open"] = False


def stats():
    """Copy of the operation counters."""
    return dict(_stats)
'''


class KVStoreTarget(TargetSystem):
    """Key-value store with a write-ahead log, compaction, and recovery."""

    name = "kvstore"
    description = "In-memory key-value store with WAL, compaction, and snapshot recovery"

    def _build_source(self) -> str:
        return _SOURCE

    def run_workload(self, module: types.ModuleType, iterations: int, rng: SeededRNG) -> dict[str, Any]:
        module.reset_store()
        shadow: dict[str, int] = {}
        detected_errors = 0
        read_mismatches = 0
        for step in range(iterations):
            key = f"key-{rng.randint(0, 12)}"
            operation = rng.choice(["put", "put", "get", "delete", "compact"])
            try:
                if operation == "put":
                    value = rng.randint(0, 1000)
                    module.put(key, value)
                    shadow[key] = value
                elif operation == "get":
                    observed = module.get(key, default=None)
                    expected = shadow.get(key)
                    if observed != expected:
                        read_mismatches += 1
                elif operation == "delete":
                    module.delete(key)
                    shadow.pop(key, None)
                else:
                    module.compact()
            except (ValueError, module.StoreClosedError):
                detected_errors += 1
        recovered = module.replay()
        return {
            "detected_errors": detected_errors,
            "read_mismatches": read_mismatches,
            "live_keys": module.size(),
            "expected_keys": len(shadow),
            "recovered_keys": len(recovered),
            "recovery_matches": recovered == dict(module._data),
            "shadow_matches": shadow == dict(module._data),
            "stats": module.stats(),
        }

    def check_invariants(self, module: types.ModuleType, metrics: dict[str, Any]) -> list[str]:
        violations: list[str] = []
        if metrics.get("read_mismatches", 0) > 0:
            violations.append(f"{metrics['read_mismatches']} reads returned stale or wrong values")
        if not metrics.get("shadow_matches", True):
            violations.append("store contents diverge from the reference shadow copy")
        if metrics.get("live_keys") != metrics.get("expected_keys"):
            violations.append(
                f"live key count {metrics.get('live_keys')} != expected {metrics.get('expected_keys')}"
            )
        if not metrics.get("recovery_matches", True):
            violations.append("replaying the WAL over the snapshot does not reproduce the live data")
        return violations
