"""The e-commerce order service target (the paper's running-example domain)."""

from __future__ import annotations

import types
from typing import Any

from ..rng import SeededRNG
from .base import TargetSystem

_SOURCE = '''
"""A small e-commerce order service used as a fault-injection target."""

import threading
import time

PAYMENT_GATEWAY_FEE = 0.02

_lock = threading.Lock()
_inventory = {}
_orders = {}
_audit_log = []
_sessions = []
_next_order_id = [1]


class PaymentError(Exception):
    """Raised when the (simulated) payment gateway declines a charge."""


class Session:
    """A connection-like resource that must be closed after use."""

    def __init__(self):
        self.open = True

    def close(self):
        self.open = False


def reset_state(stock):
    """Reset inventory and order state; ``stock`` maps sku -> (price, quantity)."""
    _inventory.clear()
    _orders.clear()
    _audit_log.clear()
    _sessions.clear()
    _next_order_id[0] = 1
    for sku, (price, quantity) in stock.items():
        _inventory[sku] = {"price": price, "quantity": quantity}


def open_session():
    """Open a connection-like session; callers must close it."""
    session = Session()
    _sessions.append(session)
    return session


def close_session(session):
    """Release a session's underlying resources."""
    session.close()


def validate_cart(cart):
    """Reject empty carts, unknown items, and non-positive quantities."""
    if not cart:
        raise ValueError("cart is empty")
    for item in cart:
        if item["sku"] not in _inventory:
            raise ValueError("unknown sku: " + item["sku"])
        if item["qty"] <= 0:
            raise ValueError("quantity must be positive")


def apply_discount(total, tier):
    """Tiered discount: gold 10%, silver 5%, otherwise none."""
    if tier == "gold":
        return total * 0.9
    if tier == "silver":
        return total * 0.95
    return total


def compute_total(cart, tier):
    """Total price of the cart after discount and gateway fee."""
    total = 0.0
    for index in range(len(cart)):
        item = cart[index]
        price = _inventory[item["sku"]]["price"]
        total = total + price * item["qty"]
    total = apply_discount(total, tier)
    total = total + total * PAYMENT_GATEWAY_FEE
    return round(total, 2)


def reserve_inventory(cart):
    """Atomically decrement stock for every item in the cart."""
    with _lock:
        for item in cart:
            entry = _inventory[item["sku"]]
            if entry["quantity"] < item["qty"]:
                raise ValueError("insufficient stock for " + item["sku"])
        for item in cart:
            _inventory[item["sku"]]["quantity"] -= item["qty"]


def charge_payment(amount):
    """Charge the payment gateway; declines non-positive amounts."""
    if amount <= 0:
        raise PaymentError("amount must be positive")
    return {"charged": amount, "status": "ok"}


def send_confirmation(order_id):
    """Send an order confirmation over the (simulated) network."""
    _audit_log.append(("confirmation_sent", order_id))
    return True


def process_transaction(transaction_details):
    """Process a customer purchase end to end and return a receipt."""
    cart = transaction_details["cart"]
    tier = transaction_details.get("tier", "standard")
    validate_cart(cart)
    total = compute_total(cart, tier)
    session = open_session()
    try:
        reserve_inventory(cart)
        charge_payment(total)
        with _lock:
            order_id = _next_order_id[0]
            _next_order_id[0] += 1
            _orders[order_id] = {"total": total, "items": sum(i["qty"] for i in cart)}
        send_confirmation(order_id)
    finally:
        close_session(session)
    return {"order_id": order_id, "total": total}


def refund_order(order_id):
    """Refund an order and mark it as refunded in the ledger."""
    if order_id not in _orders:
        raise KeyError("unknown order")
    order = _orders[order_id]
    if order.get("refunded"):
        raise ValueError("order already refunded")
    with _lock:
        order["refunded"] = True
    _audit_log.append(("refund", order_id))
    return order["total"]


def revenue():
    """Total revenue of all non-refunded orders."""
    total = 0.0
    for order in _orders.values():
        if not order.get("refunded"):
            total = total + order["total"]
    return round(total, 2)


def open_sessions():
    """Number of sessions that were never closed."""
    count = 0
    for session in _sessions:
        if session.open:
            count = count + 1
    return count
'''


class EcommerceTarget(TargetSystem):
    """Order-processing service with payments, inventory, and refunds."""

    name = "ecommerce"
    description = "E-commerce order service (process_transaction, refunds, inventory)"

    _STOCK = {
        "book": (15.0, 500),
        "lamp": (40.0, 300),
        "mug": (8.0, 800),
        "desk": (120.0, 100),
    }

    def _build_source(self) -> str:
        return _SOURCE

    def run_workload(self, module: types.ModuleType, iterations: int, rng: SeededRNG) -> dict[str, Any]:
        module.reset_state(dict(self._STOCK))
        skus = sorted(self._STOCK)
        tiers = ["standard", "silver", "gold"]
        placed = 0
        detected_errors = 0
        refunds = 0
        expected_units = 0
        total_mismatches = 0
        expected_revenue = 0.0
        order_ids: list[int] = []
        for step in range(iterations):
            cart = []
            for _ in range(rng.randint(1, 4)):
                sku = rng.choice(skus)
                cart.append({"sku": sku, "qty": rng.randint(1, 4)})
            tier = rng.choice(tiers)
            expected_total = self._expected_total(cart, tier)
            try:
                receipt = module.process_transaction({"cart": cart, "tier": tier})
            except (ValueError, KeyError, module.PaymentError) as exc:
                detected_errors += 1
                continue
            placed += 1
            expected_units += sum(item["qty"] for item in cart)
            order_ids.append(receipt["order_id"])
            if abs(receipt["total"] - expected_total) > 0.01:
                total_mismatches += 1
            expected_revenue += receipt["total"]
            if step % 7 == 3 and order_ids:
                try:
                    refunded = module.refund_order(order_ids[-1])
                    refunds += 1
                    expected_revenue -= refunded
                except (KeyError, ValueError):
                    detected_errors += 1
        return {
            "orders_placed": placed,
            "refunds": refunds,
            "detected_errors": detected_errors,
            "expected_units": expected_units,
            "total_mismatches": total_mismatches,
            "expected_revenue": round(expected_revenue, 2),
            "observed_revenue": module.revenue(),
            "open_sessions": module.open_sessions(),
            "distinct_order_ids": len(set(order_ids)),
            "order_count": len(order_ids),
        }

    def check_invariants(self, module: types.ModuleType, metrics: dict[str, Any]) -> list[str]:
        # Mutated modules may return None from metric helpers (e.g. a removed
        # return statement); treat missing numbers as zero so the checks still
        # run and flag the divergence instead of crashing the harness.
        def number(key: str, default: float = 0.0) -> float:
            value = metrics.get(key, default)
            return default if not isinstance(value, (int, float)) else value

        violations: list[str] = []
        for sku, entry in module._inventory.items():
            if entry["quantity"] < 0:
                violations.append(f"negative inventory for {sku}: {entry['quantity']}")
        sold_units = sum(
            self._STOCK[sku][1] - entry["quantity"] for sku, entry in module._inventory.items()
        )
        if sold_units != number("expected_units", sold_units):
            violations.append(
                f"inventory conservation violated: {sold_units} units deducted, "
                f"{metrics.get('expected_units')} units sold"
            )
        if number("total_mismatches") > 0:
            violations.append(f"{metrics['total_mismatches']} receipts priced incorrectly")
        if abs(number("observed_revenue") - number("expected_revenue")) > 0.01:
            violations.append(
                "revenue ledger does not match receipts: "
                f"{metrics.get('observed_revenue')} != {metrics.get('expected_revenue')}"
            )
        if number("distinct_order_ids") != number("order_count"):
            violations.append("duplicate order identifiers were issued")
        if number("open_sessions") > 0:
            violations.append(f"{metrics['open_sessions']} sessions were never closed")
        return violations

    def _expected_total(self, cart: list[dict[str, Any]], tier: str) -> float:
        total = sum(self._STOCK[item["sku"]][0] * item["qty"] for item in cart)
        if tier == "gold":
            total *= 0.9
        elif tier == "silver":
            total *= 0.95
        total += total * 0.02
        return round(total, 2)
