"""Target-system abstraction: the applications faults are injected into.

A :class:`TargetSystem` bundles

* the Python source of a small but realistic application module;
* a *workload* that drives the application's public API;
* *invariant checks* that detect silent data corruption after the workload.

The automated integration and testing tool (Section III-B.4) loads the
(possibly mutated) module source, runs the workload, and classifies the
observed behaviour into failure modes; the invariant checks are what
distinguish silent corruption from a clean run.

Subclasses implement :meth:`TargetSystem._build_source` (plus the workload and
invariant hooks); the public :meth:`TargetSystem.build_source` is a concrete
memoizing wrapper, so campaigns that integrate N faults against one target
reuse a single source string instead of rebuilding it per fault.
"""

from __future__ import annotations

import time
import types
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from ..errors import TargetError
from ..rng import SeededRNG


@dataclass
class TargetRunResult:
    """Outcome of executing a target's workload against one module version."""

    target: str
    completed: bool
    duration_seconds: float
    metrics: dict[str, Any] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    error_type: str | None = None
    error_message: str | None = None
    detected_errors: int = 0

    @property
    def crashed(self) -> bool:
        return not self.completed and self.error_type is not None

    @property
    def corrupted(self) -> bool:
        return self.completed and bool(self.violations)

    def to_dict(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "completed": self.completed,
            "duration_seconds": self.duration_seconds,
            "metrics": dict(self.metrics),
            "violations": list(self.violations),
            "error_type": self.error_type,
            "error_message": self.error_message,
            "detected_errors": self.detected_errors,
        }


class TargetSystem(ABC):
    """Base class for the applications used as fault-injection targets."""

    #: unique, registry-friendly identifier
    name: str = "abstract"
    #: one-line description used in documentation and reports
    description: str = ""

    def build_source(self) -> str:
        """Return the pristine Python source of the target module (memoized).

        This method is concrete, not abstract: subclasses override
        :meth:`_build_source`, and this wrapper memoizes the result.  Source
        construction is a pure derivation, so it runs once per target
        instance; campaigns that integrate N faults against one target reuse
        the same string instead of rebuilding it per fault.

        Returns:
            The target module's source code, identical on every call.
        """
        cached = getattr(self, "_cached_source", None)
        if cached is None:
            cached = self._build_source()
            self._cached_source = cached
        return cached

    @abstractmethod
    def _build_source(self) -> str:
        """Construct the pristine Python source of the target module.

        Called at most once per instance via :meth:`build_source`; keep it
        pure (no per-call randomness) so the memoized source is stable.
        """

    @abstractmethod
    def run_workload(self, module: types.ModuleType, iterations: int, rng: SeededRNG) -> dict[str, Any]:
        """Exercise the module's public API and return workload metrics.

        Implementations must catch *expected* application errors (invalid
        input, declined transactions, ...) and count them under the
        ``"detected_errors"`` key; unexpected exceptions should propagate so
        the harness can classify the run as a crash.
        """

    @abstractmethod
    def check_invariants(self, module: types.ModuleType, metrics: dict[str, Any]) -> list[str]:
        """Return human-readable descriptions of violated invariants."""

    # -- concrete helpers ---------------------------------------------------------

    def load_module(self, source: str | None = None) -> types.ModuleType:
        """Execute ``source`` (or the pristine source) in a fresh module object."""
        source = source if source is not None else self.build_source()
        module = types.ModuleType(f"target_{self.name}")
        try:
            exec(compile(source, filename=f"<target:{self.name}>", mode="exec"), module.__dict__)
        except Exception as exc:
            raise TargetError(f"target {self.name!r} source failed to load: {exc}") from exc
        return module

    def functions(self) -> list[str]:
        """Names of the public functions the pristine target defines."""
        module = self.load_module()
        return sorted(
            name
            for name, value in vars(module).items()
            if callable(value) and not name.startswith("_") and getattr(value, "__module__", None) == module.__name__
        )

    def execute(
        self,
        source: str | None = None,
        iterations: int = 25,
        seed: int = 0,
    ) -> TargetRunResult:
        """Load, drive, and check one version of the target module."""
        rng = SeededRNG(seed, namespace=f"workload/{self.name}")
        started = time.perf_counter()
        try:
            module = self.load_module(source)
        except TargetError as exc:
            return TargetRunResult(
                target=self.name,
                completed=False,
                duration_seconds=time.perf_counter() - started,
                error_type="LoadError",
                error_message=str(exc),
            )
        try:
            metrics = self.run_workload(module, iterations, rng)
        except Exception as exc:  # noqa: BLE001 - the whole point is observing failures
            return TargetRunResult(
                target=self.name,
                completed=False,
                duration_seconds=time.perf_counter() - started,
                error_type=type(exc).__name__,
                error_message=str(exc),
            )
        duration = time.perf_counter() - started
        violations = self.check_invariants(module, metrics)
        return TargetRunResult(
            target=self.name,
            completed=True,
            duration_seconds=duration,
            metrics=metrics,
            violations=violations,
            detected_errors=int(metrics.get("detected_errors", 0)),
        )

    def baseline(self, iterations: int = 25, seed: int = 0) -> TargetRunResult:
        """Run the pristine target; raises if the golden run itself misbehaves."""
        result = self.execute(iterations=iterations, seed=seed)
        if not result.completed:
            raise TargetError(
                f"pristine target {self.name!r} crashed during its baseline run: {result.error_message}"
            )
        if result.violations:
            raise TargetError(
                f"pristine target {self.name!r} violates its own invariants: {result.violations}"
            )
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TargetSystem {self.name!r}>"
