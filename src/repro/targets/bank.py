"""A banking ledger target with transfers, interest, and auditing."""

from __future__ import annotations

import types
from typing import Any

from ..rng import SeededRNG
from .base import TargetSystem

_SOURCE = '''
"""A toy banking ledger used as a fault-injection target."""

import threading

_lock = threading.Lock()
_accounts = {}
_transactions = []
_frozen = set()


class InsufficientFundsError(Exception):
    """Raised when a withdrawal or transfer exceeds the available balance."""


class FrozenAccountError(Exception):
    """Raised when operating on a frozen account."""


def reset_bank(initial_balances):
    """Reset all accounts; ``initial_balances`` maps account id -> cents."""
    _accounts.clear()
    _transactions.clear()
    _frozen.clear()
    for account, balance in initial_balances.items():
        _accounts[account] = int(balance)


def _check_account(account):
    if account not in _accounts:
        raise KeyError("unknown account: " + str(account))
    if account in _frozen:
        raise FrozenAccountError("account is frozen: " + str(account))


def balance(account):
    """Current balance of an account in cents."""
    _check_account(account)
    return _accounts[account]


def deposit(account, amount):
    """Add funds to an account."""
    _check_account(account)
    if amount <= 0:
        raise ValueError("deposit must be positive")
    with _lock:
        _accounts[account] += amount
        _transactions.append(("deposit", account, amount))
    return _accounts[account]


def withdraw(account, amount):
    """Remove funds from an account, rejecting overdrafts."""
    _check_account(account)
    if amount <= 0:
        raise ValueError("withdrawal must be positive")
    with _lock:
        if _accounts[account] < amount:
            raise InsufficientFundsError("balance too low")
        _accounts[account] -= amount
        _transactions.append(("withdraw", account, amount))
    return _accounts[account]


def transfer(source, destination, amount):
    """Move funds between two accounts atomically."""
    _check_account(source)
    _check_account(destination)
    if amount <= 0:
        raise ValueError("transfer must be positive")
    with _lock:
        if _accounts[source] < amount:
            raise InsufficientFundsError("balance too low")
        _accounts[source] -= amount
        _accounts[destination] += amount
        _transactions.append(("transfer", source, destination, amount))
    return amount


def apply_interest(rate_percent):
    """Apply simple interest to every account; returns total interest paid."""
    total_interest = 0
    with _lock:
        for account in sorted(_accounts):
            interest = _accounts[account] * rate_percent // 100
            _accounts[account] += interest
            total_interest += interest
        _transactions.append(("interest", rate_percent, total_interest))
    return total_interest


def freeze(account):
    """Freeze an account so all operations on it fail."""
    _check_account(account)
    _frozen.add(account)


def total_assets():
    """Sum of every account balance."""
    total = 0
    for account in _accounts:
        total += _accounts[account]
    return total


def audit_trail():
    """Copy of the transaction log."""
    return list(_transactions)
'''


class BankTarget(TargetSystem):
    """Account ledger with transfers, overdraft protection, and interest."""

    name = "bank"
    description = "Banking ledger (deposits, withdrawals, transfers, interest)"

    _ACCOUNTS = {"alice": 100_000, "bob": 50_000, "carol": 75_000, "dave": 20_000}

    def _build_source(self) -> str:
        return _SOURCE

    def run_workload(self, module: types.ModuleType, iterations: int, rng: SeededRNG) -> dict[str, Any]:
        module.reset_bank(dict(self._ACCOUNTS))
        accounts = sorted(self._ACCOUNTS)
        detected_errors = 0
        transfers = 0
        interest_paid = 0
        expected_total = sum(self._ACCOUNTS.values())
        for step in range(iterations):
            source = rng.choice(accounts)
            destination = rng.choice([name for name in accounts if name != source])
            amount = rng.randint(1, 5_000)
            operation = rng.choice(["transfer", "transfer", "deposit", "withdraw", "interest"])
            try:
                if operation == "transfer":
                    module.transfer(source, destination, amount)
                    transfers += 1
                elif operation == "deposit":
                    module.deposit(source, amount)
                    expected_total += amount
                elif operation == "withdraw":
                    module.withdraw(source, amount)
                    expected_total -= amount
                else:
                    paid = module.apply_interest(1)
                    interest_paid += paid
                    expected_total += paid
            except (ValueError, KeyError, module.InsufficientFundsError, module.FrozenAccountError):
                detected_errors += 1
        negative_accounts = [name for name in accounts if module.balance(name) < 0]
        return {
            "detected_errors": detected_errors,
            "transfers": transfers,
            "interest_paid": interest_paid,
            "expected_total": expected_total,
            "observed_total": module.total_assets(),
            "negative_accounts": negative_accounts,
            "audit_entries": len(module.audit_trail()),
            "operations_applied": transfers
            + sum(1 for entry in module.audit_trail() if entry[0] in ("deposit", "withdraw", "interest")),
        }

    def check_invariants(self, module: types.ModuleType, metrics: dict[str, Any]) -> list[str]:
        violations: list[str] = []
        if metrics.get("observed_total") != metrics.get("expected_total"):
            violations.append(
                "money is not conserved: ledger holds "
                f"{metrics.get('observed_total')} but expected {metrics.get('expected_total')}"
            )
        if metrics.get("negative_accounts"):
            violations.append(f"accounts overdrawn despite checks: {metrics['negative_accounts']}")
        if metrics.get("audit_entries", 0) < metrics.get("transfers", 0):
            violations.append("audit trail is missing transfer records")
        return violations
