"""Registry of the built-in target systems."""

from __future__ import annotations

from ..errors import TargetError
from .bank import BankTarget
from .base import TargetSystem
from .ecommerce import EcommerceTarget
from .kvstore import KVStoreTarget
from .queueing import QueueTarget

_TARGET_CLASSES: tuple[type[TargetSystem], ...] = (
    EcommerceTarget,
    KVStoreTarget,
    BankTarget,
    QueueTarget,
)

TARGET_REGISTRY: dict[str, TargetSystem] = {cls.name: cls() for cls in _TARGET_CLASSES}


def all_targets() -> list[TargetSystem]:
    """Every built-in target system instance."""
    return list(TARGET_REGISTRY.values())


def target_names() -> list[str]:
    """Names of the built-in target systems."""
    return list(TARGET_REGISTRY)


def get_target(name: str) -> TargetSystem:
    """Look up a target by name, raising :class:`TargetError` if unknown."""
    try:
        return TARGET_REGISTRY[name]
    except KeyError as exc:
        raise TargetError(f"unknown target system {name!r}; available: {target_names()}") from exc
