"""The distributed coordinator: a machine-spanning :class:`DistributedPool`.

``DistributedPool`` exposes the exact batch interface of
:class:`repro.execution.WorkerPool` — ``run_batch`` over module sources with
submission-ordered payload dicts, ``stats()`` supervision counters,
``check_liveness()`` / ``shutdown()`` — but executes on **remote sandbox
workers** that dial in over TCP (:mod:`repro.distributed.protocol`) instead
of forked local processes.  ``ExecutionConfig.default_mode = "distributed"``
(or ``mode="distributed"`` on any request) routes every existing
``run_batch`` / ``run_many`` call site through it unchanged.

Scheduling is lease-based: idle workers are handed LEASE frames of up to
``capacity`` tasks, each with a wall-clock budget derived from the per-task
sandbox timeout (itself clamped upstream by the request
:class:`~repro.resilience.Deadline`).  Workers heartbeat while executing; a
missed heartbeat, an expired lease, or a dropped connection requeues the
lease's unfinished tasks under the same bounded supervision rules as the
local pool — ``ResilienceConfig.task_retry_budget`` caps re-executions and a
task repeatedly attributed worker deaths is quarantined.  Workers may join
and leave **mid-campaign**: a joiner is handed pending work on its next
scheduler pass, a leaver's lease is requeued, and the ``rebalances`` counter
records every membership change observed during an active batch.

Determinism is the hard guarantee: tasks are keyed by submission index,
results are reassembled in submission order, and the sandbox workload itself
is untouched by scheduling — so a distributed campaign is **byte-identical**
to pooled single-process execution regardless of which worker ran what, which
workers died, and in what order results arrived (pinned by the differential
suite in ``tests/test_chaos_differential.py``).
"""

from __future__ import annotations

import heapq
import itertools
import socket
import threading
import time
from typing import Any

from ..config import DistributedConfig, ResilienceConfig
from ..errors import RequestError, SandboxError
from ..execution.pool import resolve_workers
from ..resilience.chaos import chaos_payload
from ..resilience.retry import RetryPolicy
from .protocol import (
    Frame,
    GoodbyeFrame,
    HeartbeatFrame,
    HelloFrame,
    LeaseFrame,
    RegisterFrame,
    ResultFrame,
    recv_frame,
    send_frame,
)

#: Extra wall-clock grace on a lease beyond the sum of its task budgets —
#: covers the one-time interpreter/import/pool-spawn cost of a fresh worker.
_LEASE_GRACE_SECONDS = 15.0

#: How long a connecting peer gets to complete the HELLO handshake.
_HANDSHAKE_TIMEOUT_SECONDS = 10.0


class _WorkerLink:
    """Coordinator-side state of one connected worker."""

    __slots__ = ("worker_id", "capacity", "sock", "send_lock", "last_seen", "lease", "alive", "ready")

    def __init__(self, worker_id: str, capacity: int, sock: socket.socket) -> None:
        self.worker_id = worker_id
        self.capacity = capacity
        self.sock = sock
        self.send_lock = threading.Lock()
        self.last_seen = time.monotonic()
        self.lease: "_Lease | None" = None
        self.alive = True
        self.ready = False  # REGISTER reply confirmed on the wire


class _Lease:
    """One in-flight batch of task indices assigned to one worker."""

    __slots__ = ("lease_id", "link", "indices", "deadline")

    def __init__(self, lease_id: int, link: _WorkerLink, indices: list[int], deadline: float) -> None:
        self.lease_id = lease_id
        self.link = link
        self.indices = indices
        self.deadline = deadline


class _BatchState:
    """Mutable bookkeeping for one ``run_batch`` call."""

    def __init__(self, tasks: list[dict[str, Any]]) -> None:
        self.tasks = tasks
        self.results: list[dict[str, Any] | None] = [None] * len(tasks)
        self.attempts = [0] * len(tasks)
        self.deaths = [0] * len(tasks)  # worker deaths *attributed* (solo leases only)
        self.suspect = [False] * len(tasks)
        self.pending: list[int] = list(range(len(tasks)))
        heapq.heapify(self.pending)
        self.last_activity = time.monotonic()

    def done(self) -> bool:
        return all(result is not None for result in self.results)

    def outstanding(self) -> int:
        """Tasks not yet resolved (pending + leased)."""
        return sum(1 for result in self.results if result is None)


class DistributedPool:
    """Machine-spanning work queue with the local ``WorkerPool`` interface.

    The pool binds its coordinator socket at construction time (``port=0``
    picks an ephemeral port, published as :attr:`address`) and accepts
    worker connections immediately, so external workers — launched with
    ``python -m repro worker --connect HOST:PORT`` on any machine — can dial
    in before, during, or between batches.  With
    ``DistributedConfig.spawn_workers`` (the default) the first batch also
    spawns a localhost fleet sized from ``max_workers``, which is what makes
    ``mode="distributed"`` a drop-in replacement on one box.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        task_timeout_seconds: float = 10.0,
        resilience: ResilienceConfig | None = None,
        distributed: DistributedConfig | None = None,
    ) -> None:
        """Bind the coordinator socket and start accepting workers.

        Args:
            max_workers: Requested total capacity; sizes the auto-spawned
                localhost fleet (clamped by
                :func:`repro.execution.resolve_workers`).
            task_timeout_seconds: Default per-task sandbox budget.
            resilience: Retry budget / quarantine threshold / chaos, exactly
                as for the local pool.
            distributed: Transport and fleet behaviour; defaults to
                :class:`~repro.config.DistributedConfig`.

        Raises:
            SandboxError: If ``task_timeout_seconds`` is not positive.
        """
        if task_timeout_seconds <= 0:
            raise SandboxError("task_timeout_seconds must be positive")
        self.max_workers = resolve_workers(max_workers)
        self.task_timeout_seconds = float(task_timeout_seconds)
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.distributed = distributed if distributed is not None else DistributedConfig()

        self.tasks_executed = 0
        self.pool_rebuilds = 0  # localhost fleet workers respawned
        self.retries = 0  # tasks re-executed after a disruption
        self.quarantined = 0
        self.leases_issued = 0
        self.requeues = 0  # lease-level requeue events (death / expiry / drop)
        self.rebalances = 0  # membership changes observed during an active batch

        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._batch_lock = threading.Lock()
        self._workers: dict[str, _WorkerLink] = {}
        self._active_leases: dict[int, _Lease] = {}
        self._state: _BatchState | None = None
        self._lease_ids = itertools.count(1)
        self._closed = False
        self._fleet = None
        self._send_retry = RetryPolicy.from_config(self.resilience)

        self._listener = socket.create_server(
            (self.distributed.host, self.distributed.port), backlog=16
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-dist-accept", daemon=True
        )
        self._accept_thread.start()

    # -- addresses / lifecycle ------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The coordinator's bound ``(host, port)``."""
        host, port = self._listener.getsockname()[:2]
        return host, port

    @property
    def connect_address(self) -> str:
        """The ``HOST:PORT`` string workers pass to ``--connect``."""
        host, port = self.address
        return f"{host}:{port}"

    def worker_count(self) -> int:
        """Currently registered (alive) workers."""
        with self._lock:
            return len(self._workers)

    def check_liveness(self) -> bool:
        """Parity with ``WorkerPool``: whether the plane looks healthy.

        Returns:
            ``True`` when workers are connected or none were ever needed
            (no batch has run yet); ``False`` when the pool has run work
            before but currently has no live workers.
        """
        with self._lock:
            if self._workers:
                return True
        return self.tasks_executed == 0

    def stats(self) -> dict[str, int]:
        """Supervision + distribution counters for ``/v1/stats``.

        The first four keys mirror :meth:`repro.execution.WorkerPool.stats`
        (``pool_rebuilds`` counts localhost fleet respawns); the remaining
        four are the distributed plane's own gauges and counters.
        """
        return {
            "tasks_executed": self.tasks_executed,
            "pool_rebuilds": self.pool_rebuilds,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "workers": self.worker_count(),
            "leases": self.leases_issued,
            "requeues": self.requeues,
            "rebalances": self.rebalances,
        }

    def shutdown(self) -> None:
        """Say GOODBYE to every worker and release all sockets (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            self._workers.clear()
            self._wake.notify_all()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        for link in workers:
            try:
                with link.send_lock:
                    send_frame(link.sock, GoodbyeFrame(reason="coordinator shutting down"))
            except (OSError, RequestError):
                pass
            try:
                link.sock.close()
            except OSError:  # pragma: no cover
                pass
        fleet, self._fleet = self._fleet, None
        if fleet is not None:
            fleet.shutdown()

    def __enter__(self) -> "DistributedPool":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.shutdown()
        except Exception:
            pass

    # -- execution ------------------------------------------------------------------

    def run_batch(
        self,
        target_name: str,
        module_sources: list[str],
        seed: int = 0,
        iterations: int = 25,
        timeout_seconds: float | None = None,
    ) -> list[dict[str, Any]]:
        """Execute every source on the worker fleet, preserving input order.

        The signature, payload dialect, chaos keying, and supervision
        semantics all match :meth:`repro.execution.WorkerPool.run_batch`, so
        results are byte-identical to pooled local execution for the same
        inputs (modulo measured wall-clock fields).

        Args:
            target_name: Registry name of the target system to drive.
            module_sources: Module sources, one task each.
            seed: Workload seed shared by every task.
            iterations: Workload iterations per task.
            timeout_seconds: Per-task override of the pool's default budget
                (already clamped to the request deadline by the engine).

        Returns:
            One payload dict per source, in submission order.

        Raises:
            SandboxError: If the pool is shut down.
        """
        if self._closed:
            raise SandboxError("distributed pool is shut down")
        if not module_sources:
            return []
        timeout = float(timeout_seconds if timeout_seconds is not None else self.task_timeout_seconds)
        chaos = chaos_payload(self.resilience.chaos) if self.resilience.supervise else None
        tasks = [
            {
                "task_id": str(index),
                "target": target_name,
                "source": source,
                "seed": seed,
                "iterations": iterations,
                "timeout_seconds": timeout,
                "chaos": chaos,
                "chaos_key": f"{target_name}:{seed}:{index}",
                "attempt": 0,
            }
            for index, source in enumerate(module_sources)
        ]
        with self._batch_lock:
            self._ensure_fleet()
            state = _BatchState(tasks)
            with self._lock:
                self._state = state
            try:
                self._drive(state, timeout)
            finally:
                with self._lock:
                    self._state = None
            self.tasks_executed += len(tasks)
        return [
            payload if payload is not None else {"status": "error", "error": "task produced no result"}
            for payload in state.results
        ]

    # -- scheduler loop ---------------------------------------------------------------

    def _drive(self, state: _BatchState, timeout: float) -> None:
        """The scheduling loop: assign, watch liveness, requeue, repeat."""
        while True:
            stale = self._collect_stale()
            for link in stale:
                self._worker_lost(link, "missed heartbeats / lease expired")
            assignments = self._plan_assignments(state, timeout)
            for link, lease in assignments:
                self._dispatch_lease(link, lease, state)
            with self._lock:
                if state.done():
                    return
                if self._closed:
                    self._fail_outstanding_locked(state, "coordinator shut down mid-batch")
                    return
                self._wake.wait(timeout=0.05)
            self._maintain_fleet()
            self._check_starvation(state)

    def _plan_assignments(
        self, state: _BatchState, timeout: float
    ) -> list[tuple[_WorkerLink, _Lease]]:
        """Carve pending tasks into leases for idle workers (under the lock).

        Suspect tasks — victims of a multi-task lease whose worker died, so
        the killer among them is unknown — always travel alone, making any
        further death unambiguously attributable.
        """
        assignments: list[tuple[_WorkerLink, _Lease]] = []
        lease_cap = self.distributed.lease_size
        with self._lock:
            if self._state is not state:
                return []
            for link in sorted(self._workers.values(), key=lambda l: l.worker_id):
                if link.lease is not None or not link.alive or not link.ready:
                    continue
                if not state.pending:
                    break
                limit = lease_cap if lease_cap > 0 else link.capacity
                indices: list[int] = []
                while state.pending and len(indices) < max(1, limit):
                    index = heapq.heappop(state.pending)
                    if state.results[index] is not None:
                        continue  # resolved by a late result while queued
                    if state.suspect[index] and indices:
                        heapq.heappush(state.pending, index)
                        break
                    indices.append(index)
                    if state.suspect[index]:
                        break  # suspects run solo
                if not indices:
                    continue
                deadline = time.monotonic() + timeout * len(indices) + _LEASE_GRACE_SECONDS
                lease = _Lease(next(self._lease_ids), link, indices, deadline)
                link.lease = lease
                self._active_leases[lease.lease_id] = lease
                self.leases_issued += 1
                assignments.append((link, lease))
        return assignments

    def _dispatch_lease(self, link: _WorkerLink, lease: _Lease, state: _BatchState) -> None:
        """Send one LEASE frame, retrying transient send failures.

        Sends ride the engine-wide :class:`~repro.resilience.RetryPolicy`
        (deterministic seeded backoff), so a flapping worker connection
        degrades exactly like a crashed local worker: bounded retries, then
        the worker is declared lost and its lease is requeued.
        """
        frame = LeaseFrame(
            lease_id=lease.lease_id,
            tasks=tuple(
                {**state.tasks[index], "attempt": state.attempts[index]}
                for index in lease.indices
            ),
            deadline_seconds=max(lease.deadline - time.monotonic(), 0.001),
        )

        def send() -> None:
            with link.send_lock:
                send_frame(link.sock, frame)

        try:
            self._send_retry.run(send, key=f"distributed:{link.worker_id}", retry_on=(OSError,))
        except (OSError, RequestError):
            self._worker_lost(link, "lease send failed")

    def _collect_stale(self) -> list[_WorkerLink]:
        """Workers whose heartbeats stopped or whose lease ran out of budget."""
        now = time.monotonic()
        horizon = self.distributed.heartbeat_timeout_seconds
        stale: list[_WorkerLink] = []
        with self._lock:
            for link in self._workers.values():
                if link.lease is None:
                    continue
                if now - link.last_seen > horizon or now > link.lease.deadline:
                    stale.append(link)
        return stale

    def _maintain_fleet(self) -> None:
        if self._fleet is not None:
            self.pool_rebuilds += self._fleet.maintain()

    def _check_starvation(self, state: _BatchState) -> None:
        """Fail outstanding tasks when no worker can ever serve them."""
        wait = self.distributed.worker_wait_seconds
        with self._lock:
            if self._workers or state.done():
                return
            if time.monotonic() - state.last_activity <= wait:
                return
            self._fail_outstanding_locked(
                state,
                f"no distributed workers available within {wait:g}s; "
                "connect workers with `python -m repro worker --connect "
                f"{self.connect_address}`",
            )
            self._wake.notify_all()

    def _fail_outstanding_locked(self, state: _BatchState, reason: str) -> None:
        for index, payload in enumerate(state.results):
            if payload is None:
                state.results[index] = {"status": "error", "error": reason}
        state.pending.clear()

    # -- worker events (reader threads) ----------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _address = self._listener.accept()
            except OSError:  # listener closed by shutdown
                return
            threading.Thread(
                target=self._serve_connection,
                args=(sock,),
                name="repro-dist-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, sock: socket.socket) -> None:
        """Handshake one peer, then pump its frames until it goes away."""
        link: _WorkerLink | None = None
        try:
            sock.settimeout(_HANDSHAKE_TIMEOUT_SECONDS)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = recv_frame(sock)
            if not isinstance(hello, HelloFrame):
                send_frame(sock, GoodbyeFrame(reason=f"expected hello, got {hello.kind}"))
                sock.close()
                return
            link = self._register(hello, sock)
            if link is None:
                return
            sock.settimeout(None)
            while True:
                frame = recv_frame(sock)
                if not self._on_frame(link, frame):
                    break
        except (ConnectionError, OSError, RequestError):
            pass
        finally:
            if link is not None:
                self._worker_lost(link, "connection closed")
            else:
                try:
                    sock.close()
                except OSError:
                    pass

    def _register(self, hello: HelloFrame, sock: socket.socket) -> _WorkerLink | None:
        with self._lock:
            if self._closed:
                return None
            worker_id = hello.worker_id
            suffix = itertools.count(2)
            while worker_id in self._workers:
                worker_id = f"{hello.worker_id}-{next(suffix)}"
            link = _WorkerLink(worker_id, hello.capacity, sock)
            # Reserve the id now, but leave the link not-ready: the REGISTER
            # reply must hit the wire before the scheduler may send a LEASE,
            # because the worker requires REGISTER as its first frame.
            self._workers[worker_id] = link
        send_frame(
            sock,
            RegisterFrame(
                worker_id=worker_id,
                heartbeat_interval_seconds=self.distributed.heartbeat_interval_seconds,
            ),
        )
        with self._lock:
            if self._closed or self._workers.get(worker_id) is not link:
                return None
            link.ready = True
            if self._state is not None:
                self.rebalances += 1
                self._state.last_activity = time.monotonic()
            self._wake.notify_all()
        return link

    def _on_frame(self, link: _WorkerLink, frame: Frame) -> bool:
        """Handle one worker frame; returns False when the peer is leaving."""
        if isinstance(frame, HeartbeatFrame):
            with self._lock:
                link.last_seen = time.monotonic()
            return True
        if isinstance(frame, ResultFrame):
            self._on_result(link, frame)
            return True
        if isinstance(frame, GoodbyeFrame):
            return False
        raise RequestError(f"unexpected {frame.kind!r} frame from worker {link.worker_id}")

    def _on_result(self, link: _WorkerLink, frame: ResultFrame) -> None:
        with self._lock:
            link.last_seen = time.monotonic()
            lease = self._active_leases.pop(frame.lease_id, None)
            if lease is None:
                # A lease we already expired and requeued; the re-execution
                # owns the slot now and workloads are deterministic anyway.
                return
            if link.lease is lease:
                link.lease = None
            state = self._state
            if state is None:
                return
            state.last_activity = time.monotonic()
            for index in lease.indices:
                if state.results[index] is not None:
                    continue
                payload = frame.results.get(str(index))
                if payload is not None:
                    state.results[index] = dict(payload)
                    state.suspect[index] = False
                else:
                    # Computed-then-lost (chaos drop) or inner-pool death:
                    # requeue without attributing a worker death.
                    self._requeue_lease_tasks_locked(state, [index], attributed=False)
            self._wake.notify_all()

    def _worker_lost(self, link: _WorkerLink, reason: str) -> None:
        """A worker died, wedged, or left: forget it and requeue its lease."""
        with self._lock:
            if not link.alive:
                return
            link.alive = False
            self._workers.pop(link.worker_id, None)
            lease, link.lease = link.lease, None
            if lease is not None:
                self._active_leases.pop(lease.lease_id, None)
            state = self._state
            if state is not None:
                self.rebalances += 1
                state.last_activity = time.monotonic()
                if lease is not None:
                    unresolved = [i for i in lease.indices if state.results[i] is None]
                    if unresolved:
                        self.requeues += 1
                        # A solo lease makes the death attributable to its one
                        # task; a grouped lease only yields suspects.
                        attributed = len(lease.indices) == 1
                        if not attributed:
                            for index in unresolved:
                                state.suspect[index] = True
                        self._requeue_lease_tasks_locked(state, unresolved, attributed=attributed)
            self._wake.notify_all()
        try:
            link.sock.close()
        except OSError:
            pass

    def _requeue_lease_tasks_locked(
        self, state: _BatchState, indices: list[int], attributed: bool
    ) -> None:
        """Requeue tasks whose result vanished, or fail them at their bounds.

        Mirrors ``WorkerPool._requeue``: ``quarantine_threshold`` attributed
        deaths quarantine the task, and more than ``task_retry_budget``
        re-executions fail it as retry-exhausted, so the loop always
        terminates.
        """
        config = self.resilience
        for index in indices:
            if attributed:
                state.deaths[index] += 1
                if state.deaths[index] >= config.quarantine_threshold:
                    self.quarantined += 1
                    state.results[index] = {
                        "status": "error",
                        "error": (
                            f"task quarantined after killing {state.deaths[index]} distributed "
                            f"workers (threshold {config.quarantine_threshold})"
                        ),
                        "quarantined": True,
                    }
                    continue
            state.attempts[index] += 1
            if state.attempts[index] > config.task_retry_budget:
                state.results[index] = {
                    "status": "error",
                    "error": (
                        f"worker died and the task's retry budget "
                        f"({config.task_retry_budget}) is exhausted"
                    ),
                }
                continue
            self.retries += 1
            heapq.heappush(state.pending, index)

    # -- localhost fleet ---------------------------------------------------------------

    def _ensure_fleet(self) -> None:
        if self._fleet is not None or not self.distributed.spawn_workers:
            return
        from .launcher import LocalWorkerFleet

        workers = self.distributed.workers or self.max_workers
        self._fleet = LocalWorkerFleet(
            self.connect_address,
            workers=workers,
            capacity=self.distributed.worker_capacity,
        )
        self._fleet.start()
