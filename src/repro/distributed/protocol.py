"""The distributed execution plane's wire protocol.

Coordinator and workers speak **length-prefixed JSON frames** over TCP: a
4-byte big-endian payload length followed by one UTF-8 JSON object.  The
codec follows the same strictness conventions as the :mod:`repro.api` wire
layer — an unknown frame ``kind``, an unknown field, or a malformed value is
rejected with :class:`~repro.errors.RequestError` instead of being silently
ignored, so a version-skewed or buggy peer fails loudly at the boundary.

Frame kinds (see docs/DISTRIBUTED.md for the full reference):

========== =================== ====================================================
kind        direction           meaning
========== =================== ====================================================
hello       worker → coord      announce capacity, request registration
register    coord → worker      accept the worker, assign id + heartbeat interval
lease       coord → worker      a batch of sandbox tasks with a time budget
result      worker → coord      per-task payloads for one lease (missing ⇒ requeue)
heartbeat   worker → coord      liveness while a lease is executing (or idle)
goodbye     either direction    graceful leave / coordinator shutdown
========== =================== ====================================================

Task payloads inside a lease are the plain dicts of
:mod:`repro.execution.pool` plus a ``task_id``; they are deliberately opaque
to the framing layer (validated only as JSON objects) so the execution plane
can evolve without a protocol bump.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from ..errors import RequestError

#: Protocol revision; a worker and coordinator must agree exactly.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON payload.  Leases carry whole module
#: sources, so the bound is generous — but it must exist, or a corrupt
#: length prefix could make a peer try to allocate gigabytes.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def _require(data: Mapping[str, Any], name: str, types: tuple[type, ...], kind: str) -> Any:
    if name not in data:
        raise RequestError(f"{kind} frame is missing required field {name!r}")
    value = data[name]
    if not isinstance(value, types) or isinstance(value, bool) and bool not in types:
        expected = "/".join(t.__name__ for t in types)
        raise RequestError(
            f"{kind} frame field {name!r} must be {expected}, got {type(value).__name__}"
        )
    return value


def _frame_from_dict(cls, data: Mapping[str, Any]):
    """Shared strict constructor: known fields only, kind must match."""
    if not isinstance(data, Mapping):
        raise RequestError(f"frame must be a JSON object, got {type(data).__name__}")
    payload = dict(data)
    kind = payload.pop("kind", cls.kind)
    if kind != cls.kind:
        raise RequestError(f"kind mismatch: expected {cls.kind!r}, got {kind!r}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise RequestError(
            f"unknown {cls.kind} frame fields {unknown}; known fields: {sorted(known)}"
        )
    try:
        return cls(**payload)
    except RequestError:
        raise
    except TypeError as exc:
        raise RequestError(f"malformed {cls.kind} frame: {exc}") from exc


@dataclass(frozen=True)
class HelloFrame:
    """Worker → coordinator: first frame on a fresh connection."""

    kind = "hello"
    worker_id: str
    capacity: int
    protocol_version: int = PROTOCOL_VERSION

    def __post_init__(self) -> None:
        _require(self.__dict__, "worker_id", (str,), self.kind)
        capacity = _require(self.__dict__, "capacity", (int,), self.kind)
        if capacity <= 0:
            raise RequestError("hello frame capacity must be positive")
        version = _require(self.__dict__, "protocol_version", (int,), self.kind)
        if version != PROTOCOL_VERSION:
            raise RequestError(
                f"protocol version mismatch: coordinator speaks {PROTOCOL_VERSION}, "
                f"worker sent {version}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "worker_id": self.worker_id,
            "capacity": self.capacity,
            "protocol_version": self.protocol_version,
        }


@dataclass(frozen=True)
class RegisterFrame:
    """Coordinator → worker: registration accepted, id + cadence assigned."""

    kind = "register"
    worker_id: str
    heartbeat_interval_seconds: float
    protocol_version: int = PROTOCOL_VERSION

    def __post_init__(self) -> None:
        _require(self.__dict__, "worker_id", (str,), self.kind)
        interval = _require(self.__dict__, "heartbeat_interval_seconds", (int, float), self.kind)
        if interval <= 0:
            raise RequestError("register frame heartbeat_interval_seconds must be positive")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "worker_id": self.worker_id,
            "heartbeat_interval_seconds": self.heartbeat_interval_seconds,
            "protocol_version": self.protocol_version,
        }


@dataclass(frozen=True)
class LeaseFrame:
    """Coordinator → worker: a batch of sandbox tasks under one time budget.

    ``tasks`` are the plain task dicts of :mod:`repro.execution.pool`, each
    extended with a ``task_id`` the worker must echo in its result frame;
    ``deadline_seconds`` is the wall-clock budget after which the coordinator
    considers the lease lost and requeues it.
    """

    kind = "lease"
    lease_id: int
    tasks: tuple = ()
    deadline_seconds: float = 0.0

    def __post_init__(self) -> None:
        _require(self.__dict__, "lease_id", (int,), self.kind)
        tasks = _require(self.__dict__, "tasks", (list, tuple), self.kind)
        if not tasks:
            raise RequestError("lease frame must carry at least one task")
        for task in tasks:
            if not isinstance(task, Mapping) or "task_id" not in task:
                raise RequestError("lease frame tasks must be objects with a task_id")
        object.__setattr__(self, "tasks", tuple(dict(task) for task in tasks))
        deadline = _require(self.__dict__, "deadline_seconds", (int, float), self.kind)
        if deadline <= 0:
            raise RequestError("lease frame deadline_seconds must be positive")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "lease_id": self.lease_id,
            "tasks": [dict(task) for task in self.tasks],
            "deadline_seconds": self.deadline_seconds,
        }


@dataclass(frozen=True)
class ResultFrame:
    """Worker → coordinator: per-task payloads for one completed lease.

    ``results`` maps ``task_id`` (stringified, JSON objects only key by
    string) to the sandbox payload dict.  A task absent from the map was
    disrupted on the worker (chaos drop, inner-pool death) and the
    coordinator requeues it.
    """

    kind = "result"
    lease_id: int
    results: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(self.__dict__, "lease_id", (int,), self.kind)
        results = _require(self.__dict__, "results", (Mapping,), self.kind)
        for task_id, payload in results.items():
            if not isinstance(payload, Mapping) or "status" not in payload:
                raise RequestError(
                    f"result frame payload for task {task_id!r} must be an object with a status"
                )
        object.__setattr__(
            self, "results", {str(k): dict(v) for k, v in results.items()}
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "lease_id": self.lease_id,
            "results": {k: dict(v) for k, v in self.results.items()},
        }


@dataclass(frozen=True)
class HeartbeatFrame:
    """Worker → coordinator: still alive (``lease_id`` while executing)."""

    kind = "heartbeat"
    worker_id: str
    lease_id: int | None = None

    def __post_init__(self) -> None:
        _require(self.__dict__, "worker_id", (str,), self.kind)
        if self.lease_id is not None and not isinstance(self.lease_id, int):
            raise RequestError("heartbeat frame lease_id must be an integer when set")

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "worker_id": self.worker_id, "lease_id": self.lease_id}


@dataclass(frozen=True)
class GoodbyeFrame:
    """Either direction: graceful leave, with a human-readable reason."""

    kind = "goodbye"
    reason: str = ""

    def __post_init__(self) -> None:
        _require(self.__dict__, "reason", (str,), self.kind)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "reason": self.reason}


Frame = HelloFrame | RegisterFrame | LeaseFrame | ResultFrame | HeartbeatFrame | GoodbyeFrame

_FRAME_TYPES = {
    cls.kind: cls
    for cls in (HelloFrame, RegisterFrame, LeaseFrame, ResultFrame, HeartbeatFrame, GoodbyeFrame)
}

#: Every frame kind the protocol understands, sorted for error messages.
FRAME_KINDS = tuple(sorted(_FRAME_TYPES))


def frame_from_dict(data: Any) -> Frame:
    """Decode one JSON object into a typed frame.

    Args:
        data: The decoded JSON value of one frame.

    Returns:
        The typed frame instance.

    Raises:
        RequestError: If ``data`` is not an object, its ``kind`` is missing
            or unknown, it carries unknown fields, or a field is malformed.
    """
    if not isinstance(data, Mapping):
        raise RequestError(f"frame must be a JSON object, got {type(data).__name__}")
    kind = data.get("kind")
    if kind not in _FRAME_TYPES:
        raise RequestError(f"unknown frame kind {kind!r}; available: {list(FRAME_KINDS)}")
    return _frame_from_dict(_FRAME_TYPES[kind], data)


def encode_frame(frame: Frame) -> bytes:
    """The full wire bytes of one frame: length prefix + JSON payload.

    Raises:
        RequestError: If the encoded frame exceeds :data:`MAX_FRAME_BYTES`.
    """
    payload = json.dumps(frame.to_dict(), sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise RequestError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(payload)) + payload


def send_frame(sock: socket.socket, frame: Frame) -> None:
    """Write one frame to a connected socket (callers serialize sends)."""
    sock.sendall(encode_frame(frame))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ConnectionError` on EOF."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Frame:
    """Read one length-prefixed frame from a connected socket.

    Returns:
        The decoded typed frame.

    Raises:
        ConnectionError: If the peer closed the connection.
        RequestError: If the length prefix is oversized, the payload is not
            valid JSON, or the frame fails strict validation.
    """
    (length,) = _LENGTH.unpack(_recv_exactly(sock, _LENGTH.size))
    if length > MAX_FRAME_BYTES:
        raise RequestError(
            f"announced frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    payload = _recv_exactly(sock, length)
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RequestError(f"frame payload is not valid JSON: {exc}") from exc
    return frame_from_dict(data)
