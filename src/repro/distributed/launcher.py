"""Localhost worker fleets: ``python -m repro launch-workers -n N``.

The launcher is the harness that makes ``mode="distributed"`` usable on a
single box — and testable/benchmarkable without a second machine.
:class:`LocalWorkerFleet` spawns N ``python -m repro worker`` subprocesses
pointed at a coordinator address, watches them, and **respawns** any that die
(a deliberate chaos kill, an OOM, a crash) so capacity recovers — each
respawn is what the coordinator reports as a ``pool_rebuild``.

The same class backs three surfaces: the coordinator's auto-spawned fleet
(``DistributedConfig.spawn_workers``), the ``launch-workers`` CLI command for
manual topologies, and the differential/benchmark suites.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from ..errors import ConfigurationError


def parse_address(value: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` connect string.

    Args:
        value: The address, e.g. ``127.0.0.1:7001``.  IPv6 literals use the
            usual bracket form ``[::1]:7001``.

    Returns:
        ``(host, port)``.

    Raises:
        ConfigurationError: If the string has no port, the port is not an
            integer, or it is outside 1–65535.
    """
    text = str(value).strip()
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(f"worker connect address must be HOST:PORT, got {value!r}")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"worker connect address port must be an integer, got {port_text!r}"
        ) from None
    if not 1 <= port <= 65535:
        raise ConfigurationError(f"worker connect address port must be 1-65535, got {port}")
    return host, port


def worker_command(connect: str, capacity: int = 1) -> list[str]:
    """The argv that starts one remote worker against ``connect``."""
    return [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--connect",
        connect,
        "--max-workers",
        str(capacity),
    ]


def _worker_environment() -> dict[str, str]:
    """A child environment whose ``PYTHONPATH`` can import :mod:`repro`.

    The fleet must work from a source checkout without installation, so the
    package's own location is prepended to whatever ``PYTHONPATH`` the parent
    already had.
    """
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    parts = [package_root] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


class LocalWorkerFleet:
    """N localhost worker subprocesses kept at strength until shutdown."""

    def __init__(self, connect: str, workers: int = 4, capacity: int = 1) -> None:
        """Configure the fleet; nothing spawns until :meth:`start`.

        Args:
            connect: Coordinator ``HOST:PORT`` the workers dial.
            workers: Fleet size to maintain.
            capacity: Inner sandbox pool size per worker.

        Raises:
            ConfigurationError: If ``workers`` or ``capacity`` is not
                positive, or ``connect`` is malformed.
        """
        if workers <= 0:
            raise ConfigurationError("fleet workers must be positive")
        if capacity <= 0:
            raise ConfigurationError("fleet worker capacity must be positive")
        parse_address(connect)  # validate early; workers re-parse at startup
        self.connect = connect
        self.workers = int(workers)
        self.capacity = int(capacity)
        self.respawns = 0
        self._processes: list[subprocess.Popen] = []
        self._closed = False

    def start(self) -> None:
        """Spawn the fleet up to its configured strength (idempotent)."""
        if self._closed:
            raise ConfigurationError("fleet is shut down")
        while len(self._processes) < self.workers:
            self._processes.append(self._spawn())

    def _spawn(self) -> subprocess.Popen:
        return subprocess.Popen(
            worker_command(self.connect, self.capacity),
            env=_worker_environment(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def alive_count(self) -> int:
        """Workers currently running (does not respawn)."""
        return sum(1 for process in self._processes if process.poll() is None)

    def maintain(self) -> int:
        """Reap dead workers and respawn replacements.

        Returns:
            How many workers were respawned this call — the coordinator
            accumulates this into its ``pool_rebuilds`` counter.
        """
        if self._closed:
            return 0
        survivors = [process for process in self._processes if process.poll() is None]
        respawned = 0
        while len(survivors) < self.workers:
            survivors.append(self._spawn())
            respawned += 1
        self._processes = survivors
        self.respawns += respawned
        return respawned

    def shutdown(self, grace_seconds: float = 2.0) -> None:
        """Stop maintaining the fleet and terminate every worker (idempotent).

        Args:
            grace_seconds: How long to wait for SIGTERM before SIGKILL.
        """
        if self._closed:
            return
        self._closed = True
        processes, self._processes = self._processes, []
        for process in processes:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + grace_seconds
        for process in processes:
            remaining = deadline - time.monotonic()
            try:
                process.wait(timeout=max(remaining, 0.05))
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

    def __enter__(self) -> "LocalWorkerFleet":
        self.start()
        return self

    def __exit__(self, *_exc_info) -> None:
        self.shutdown()


def launch_workers(connect: str, workers: int = 4, capacity: int = 1) -> "LocalWorkerFleet":
    """Entry point behind ``python -m repro launch-workers``.

    Spawns the fleet and returns it; the CLI blocks on it until interrupted.

    Args:
        connect: Coordinator ``HOST:PORT``.
        workers: Fleet size.
        capacity: Inner sandbox pool size per worker.

    Returns:
        The started fleet.
    """
    fleet = LocalWorkerFleet(connect, workers=workers, capacity=capacity)
    fleet.start()
    return fleet
