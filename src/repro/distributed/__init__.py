"""The distributed execution plane: coordinator, remote workers, launcher.

This package promotes the execution plane from the fork-based local
:class:`~repro.execution.WorkerPool` to a machine-spanning work queue.  The
:class:`DistributedPool` coordinator exposes the same batch interface and the
same deterministic results — byte-identical to pooled mode regardless of
worker placement, deaths, or result arrival order — while remote workers
(``python -m repro worker --connect HOST:PORT``) join and leave elastically
over the length-prefixed JSON frame protocol of :mod:`.protocol`.

Select it with ``ExecutionConfig.default_mode = "distributed"`` or
``mode="distributed"`` on any request; see docs/DISTRIBUTED.md.
"""

from .coordinator import DistributedPool
from .launcher import LocalWorkerFleet, launch_workers, parse_address, worker_command
from .protocol import (
    FRAME_KINDS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Frame,
    GoodbyeFrame,
    HeartbeatFrame,
    HelloFrame,
    LeaseFrame,
    RegisterFrame,
    ResultFrame,
    encode_frame,
    frame_from_dict,
    recv_frame,
    send_frame,
)
from .worker import RemoteWorker, default_worker_id, observation_to_payload, run_worker

__all__ = [
    "DistributedPool",
    "FRAME_KINDS",
    "Frame",
    "GoodbyeFrame",
    "HeartbeatFrame",
    "HelloFrame",
    "LeaseFrame",
    "LocalWorkerFleet",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "RegisterFrame",
    "RemoteWorker",
    "ResultFrame",
    "default_worker_id",
    "encode_frame",
    "frame_from_dict",
    "launch_workers",
    "observation_to_payload",
    "parse_address",
    "recv_frame",
    "run_worker",
    "send_frame",
    "worker_command",
]
