"""The remote sandbox worker: ``python -m repro worker --connect HOST:PORT``.

A :class:`RemoteWorker` dials the coordinator, announces its capacity with a
HELLO frame, and then serves LEASE frames until the coordinator says GOODBYE
(or the connection drops).  Leased tasks are executed through the existing
:class:`~repro.integration.runner.SandboxRunner` in ``pool`` mode, so every
isolation property of local pooled execution — per-task ``SIGALRM`` budgets,
requeue-on-death supervision of the inner pool, poison-task quarantine —
holds unchanged on the remote side; the worker only adds the network hop.

While a lease executes, a background thread heartbeats the coordinator every
``heartbeat_interval_seconds`` (assigned by the REGISTER frame), which is how
a wedged or killed worker is detected and its lease requeued.

Worker-plane self-chaos (:mod:`repro.resilience.chaos`) is acted out *here*,
at the process boundary the distributed plane adds: a scheduled ``crash``
SIGKILLs this whole worker process (after reaping the inner pool so no
sandbox children are orphaned), a ``delay`` stalls before execution, and a
``drop`` silently omits the computed result from the RESULT frame.  Decisions
are the same pure ``(seed, key, attempt)`` hashes as local chaos and fire
only on attempt 0, so supervised requeues always converge on clean results.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from typing import Any, Mapping

from ..config import ExecutionConfig, IntegrationConfig, ResilienceConfig
from ..errors import RequestError, SandboxError
from ..integration.runner import RunObservation, SandboxRunner
from ..resilience.chaos import CRASH, DELAY, DROP, should_inject
from .protocol import (
    GoodbyeFrame,
    HeartbeatFrame,
    HelloFrame,
    LeaseFrame,
    RegisterFrame,
    ResultFrame,
    recv_frame,
    send_frame,
)

#: How often a worker retries the initial connect (coordinator may still be
#: binding when the launcher spawns the fleet).
_CONNECT_ATTEMPTS = 20
_CONNECT_BACKOFF_SECONDS = 0.25


def default_worker_id() -> str:
    """A reasonably unique worker identity: ``host-pid``."""
    return f"{socket.gethostname()}-{os.getpid()}"


def observation_to_payload(observation: RunObservation) -> dict[str, Any]:
    """Convert a sandbox observation back into the pool wire payload.

    The distributed plane speaks the same payload dialect as
    :meth:`repro.execution.WorkerPool.run_batch` (``status`` of ``ok`` /
    ``timeout`` / ``error``) so the coordinator is byte-compatible with the
    local pool.
    """
    if observation.result is not None:
        return {"status": "ok", "result": observation.result.to_dict()}
    if observation.timed_out:
        return {"status": "timeout"}
    return {
        "status": "error",
        "error": str(observation.harness_error or "worker produced no result"),
    }


class RemoteWorker:
    """One remote sandbox worker process serving leases from a coordinator."""

    def __init__(
        self,
        host: str,
        port: int,
        max_workers: int = 1,
        worker_id: str | None = None,
        integration: IntegrationConfig | None = None,
    ) -> None:
        """Configure the worker; nothing connects until :meth:`run`.

        Args:
            host: Coordinator address to dial.
            port: Coordinator port.
            max_workers: Inner sandbox pool size — the capacity this worker
                advertises in its HELLO frame.
            worker_id: Stable identity; defaults to ``host-pid``.  The
                coordinator may uniquify it in the REGISTER reply.
            integration: Sandbox behaviour for leased tasks; per-lease task
                timeouts override ``test_timeout_seconds``.

        Raises:
            SandboxError: If ``max_workers`` is not positive.
        """
        if max_workers <= 0:
            raise SandboxError("max_workers must be positive")
        self.host = host
        self.port = int(port)
        self.capacity = int(max_workers)
        self.worker_id = worker_id or default_worker_id()
        self._runner = SandboxRunner(
            integration or IntegrationConfig(),
            execution=ExecutionConfig(max_workers=self.capacity),
            # The inner pool supervises itself but never injects chaos: the
            # coordinator schedules chaos at the worker-process level and
            # double application would break the attempt-0-only guarantee.
            resilience=ResilienceConfig(),
        )
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()
        self._heartbeat_interval = 1.0
        self.leases_served = 0
        self.tasks_executed = 0

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release the socket and the inner sandbox pool (idempotent)."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._runner.close()

    def __enter__(self) -> "RemoteWorker":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- main loop ----------------------------------------------------------------

    def connect(self) -> None:
        """Dial the coordinator and complete the HELLO/REGISTER handshake.

        Raises:
            ConnectionError: If the coordinator cannot be reached after
                bounded retries, or rejects the handshake.
        """
        last_error: Exception | None = None
        for attempt in range(_CONNECT_ATTEMPTS):
            try:
                self._sock = socket.create_connection((self.host, self.port), timeout=10.0)
                break
            except OSError as exc:
                last_error = exc
                time.sleep(_CONNECT_BACKOFF_SECONDS)
        else:
            raise ConnectionError(
                f"cannot reach coordinator at {self.host}:{self.port}: {last_error}"
            )
        self._sock.settimeout(None)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_frame(self._sock, HelloFrame(worker_id=self.worker_id, capacity=self.capacity))
        frame = recv_frame(self._sock)
        if not isinstance(frame, RegisterFrame):
            raise ConnectionError(
                f"coordinator answered HELLO with {frame.kind!r}, expected 'register'"
            )
        self.worker_id = frame.worker_id
        self._heartbeat_interval = float(frame.heartbeat_interval_seconds)

    def run(self) -> int:
        """Serve leases until GOODBYE or disconnect; returns an exit code.

        Returns:
            0 after a graceful GOODBYE (either side), 1 when the connection
            was lost unexpectedly.
        """
        try:
            self.connect()
        except (ConnectionError, RequestError):
            self.close()
            raise
        code = 1
        try:
            while True:
                try:
                    frame = recv_frame(self._sock)
                except (ConnectionError, OSError):
                    break
                if isinstance(frame, LeaseFrame):
                    self._serve_lease(frame)
                elif isinstance(frame, GoodbyeFrame):
                    code = 0
                    break
                # Heartbeats from the coordinator are not part of the
                # protocol; anything else was already rejected by the codec.
        finally:
            self.close()
        return code

    # -- lease execution ----------------------------------------------------------

    def _serve_lease(self, lease: LeaseFrame) -> None:
        """Execute one lease and report a RESULT frame, heartbeating throughout."""
        stop = threading.Event()
        beater = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease.lease_id, stop),
            name=f"heartbeat-{self.worker_id}",
            daemon=True,
        )
        beater.start()
        try:
            results = self._execute_tasks(list(lease.tasks))
        finally:
            stop.set()
            beater.join(timeout=self._heartbeat_interval * 2)
        self.leases_served += 1
        self.tasks_executed += len(results)
        self._send(ResultFrame(lease_id=lease.lease_id, results=results))

    def _heartbeat_loop(self, lease_id: int, stop: threading.Event) -> None:
        while not stop.wait(self._heartbeat_interval):
            try:
                self._send(HeartbeatFrame(worker_id=self.worker_id, lease_id=lease_id))
            except OSError:  # coordinator went away; the main loop will notice
                return

    def _execute_tasks(self, tasks: list[Mapping[str, Any]]) -> dict[str, dict[str, Any]]:
        """Run a lease's tasks through the sandbox runner, acting out chaos.

        Returns:
            ``task_id -> payload`` for every task that produced a result;
            chaos-dropped tasks are omitted so the coordinator requeues them.
        """
        dropped: set[str] = set()
        for task in tasks:
            self._apply_chaos(task, dropped)
        results: dict[str, dict[str, Any]] = {}
        # Group by everything except the source so one lease becomes as few
        # sandbox batches as possible (leases are per-target in practice).
        groups: dict[tuple, list[Mapping[str, Any]]] = {}
        for task in tasks:
            key = (
                str(task.get("target")),
                int(task.get("seed", 0)),
                int(task.get("iterations", 1)),
                float(task.get("timeout_seconds") or 0.0) or None,
            )
            groups.setdefault(key, []).append(task)
        for (target, seed, iterations, timeout), members in groups.items():
            try:
                observations = self._runner.run_batch(
                    target,
                    [str(task.get("source", "")) for task in members],
                    seed=seed,
                    iterations=iterations,
                    mode="pool",
                    timeout_seconds=timeout,
                )
            except Exception as exc:  # noqa: BLE001 - a lease must never kill the worker
                observations = [
                    RunObservation(result=None, harness_error=f"{type(exc).__name__}: {exc}")
                    for _ in members
                ]
            for task, observation in zip(members, observations):
                task_id = str(task["task_id"])
                if task_id in dropped:
                    continue
                results[task_id] = observation_to_payload(observation)
        return results

    def _apply_chaos(self, task: Mapping[str, Any], dropped: set[str]) -> None:
        """Act out the chaos the coordinator scheduled for one task.

        A ``crash`` reaps the inner sandbox pool first (so no sandbox
        children outlive this process) and then SIGKILLs the worker — from
        the coordinator's side an abrupt connection loss, exactly like a
        machine death.
        """
        payload = task.get("chaos")
        if not payload:
            return
        from ..config import ChaosConfig

        config = ChaosConfig(**dict(payload))
        key = str(task.get("chaos_key", ""))
        attempt = int(task.get("attempt", 0))
        if should_inject(config, key, DELAY, attempt):
            time.sleep(config.task_delay_seconds)
        if should_inject(config, key, CRASH, attempt):
            self._runner.close()
            os.kill(os.getpid(), signal.SIGKILL)
        if should_inject(config, key, DROP, attempt):
            dropped.add(str(task["task_id"]))

    def _send(self, frame) -> None:
        with self._send_lock:
            if self._sock is None:
                raise OSError("worker socket is closed")
            send_frame(self._sock, frame)


def run_worker(
    connect: str,
    max_workers: int = 1,
    worker_id: str | None = None,
) -> int:
    """Entry point behind ``python -m repro worker`` — serve until GOODBYE.

    Args:
        connect: Coordinator address as ``HOST:PORT``.
        max_workers: Inner sandbox pool size (advertised capacity).
        worker_id: Stable identity override.

    Returns:
        The worker's exit code (0 on graceful shutdown).
    """
    from .launcher import parse_address

    host, port = parse_address(connect)
    worker = RemoteWorker(host, port, max_workers=max_workers, worker_id=worker_id)
    return worker.run()
