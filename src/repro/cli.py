"""Command-line interface over the typed service layer.

``python -m repro <command>`` builds a typed request, runs it through a
:class:`~repro.api.FaultInjectionEngine`, and prints either a human-readable
summary or — with ``--json`` — the full versioned response envelope, so the
CLI speaks exactly the same contract as library clients:

* ``python -m repro generate --target bank --description "..."``
* ``python -m repro dataset --target bank --samples 5``
* ``python -m repro campaign --target bank --scenario "..." --scenario "..."``

See docs/API.md for the request/response reference and
``examples/serving_engine.py`` for the library-level equivalent.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import Iterator, Sequence

from .api import CampaignRequest, DatasetRequest, FaultInjectionEngine, GenerateRequest, Response
from .config import PipelineConfig
from .errors import ReproError
from .targets import target_names


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Neural fault injection: generate software faults from natural language.",
    )
    shared = argparse.ArgumentParser(add_help=False)
    shared.add_argument("--seed", type=int, default=None, help="pipeline seed override")
    shared.add_argument("--json", action="store_true", help="print the full response envelope as JSON")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", parents=[shared], help="generate one faulty code snippet")
    generate.add_argument("--description", required=True, help="natural-language fault description")
    generate.add_argument("--target", choices=target_names(), default=None, help="target system")
    generate.add_argument("--code-file", default=None, help="file with explicit target code")
    generate.add_argument("--sample", action="store_true", help="sample instead of greedy decoding")
    generate.add_argument("--temperature", type=float, default=None, help="sampling temperature")
    generate.add_argument("--request-seed", type=int, default=None, help="per-request decode seed")
    generate.add_argument("--execute", action="store_true", help="integrate and test against the target")
    generate.add_argument("--mode", default=None, help="sandbox mode: inprocess|subprocess|pool")

    dataset = commands.add_parser("dataset", parents=[shared], help="generate an SFI fine-tuning dataset")
    dataset.add_argument("--target", action="append", default=None, help="target name (repeatable)")
    dataset.add_argument("--samples", type=int, default=None, help="samples per target")
    dataset.add_argument("--validate", action="store_true", help="validate candidates in the sandbox")
    dataset.add_argument("--jsonl", default=None, help="stream records to this JSONL file")

    campaign = commands.add_parser("campaign", parents=[shared], help="run the neural-vs-baselines comparison")
    campaign.add_argument("--target", required=True, help="target system the campaign runs against")
    campaign.add_argument("--scenario", action="append", required=True, help="scenario text (repeatable)")
    campaign.add_argument("--technique", action="append", default=None, help="technique (repeatable)")
    campaign.add_argument("--budget", type=int, default=None, help="baseline fault budget")
    campaign.add_argument("--mode", default=None, help="sandbox mode: inprocess|subprocess|pool")
    return parser


def _request_from_args(args: argparse.Namespace):
    if args.command == "generate":
        code = None
        if args.code_file:
            with open(args.code_file, "r", encoding="utf-8") as stream:
                code = stream.read()
        return GenerateRequest(
            description=args.description,
            target=args.target,
            code=code,
            greedy=not args.sample,
            temperature=args.temperature,
            seed=args.request_seed,
            execute=args.execute,
            mode=args.mode,
        )
    if args.command == "dataset":
        return DatasetRequest(
            targets=tuple(args.target or ()),
            samples_per_target=args.samples,
            validate_candidates=True if args.validate else None,
            jsonl_path=args.jsonl,
        )
    return CampaignRequest(
        target=args.target,
        scenarios=tuple(args.scenario),
        techniques=tuple(args.technique) if args.technique else ("neural", "predefined-model", "random"),
        budget=args.budget,
        mode=args.mode,
    )


def _summarize(response: Response) -> str:
    if not response.ok:
        return f"[{response.request_id}] ERROR {response.error.type}: {response.error.message}"
    payload = response.payload
    if response.kind == "generate":
        lines = [
            f"[{response.request_id}] fault {payload.fault.fault_id} "
            f"(template={payload.fault.actions.get('template')}, strategy={payload.strategy})",
            payload.fault.code.rstrip("\n"),
        ]
        if payload.outcome is not None:
            lines.append(
                f"outcome: {payload.outcome.failure_mode.value} "
                f"(activated={payload.outcome.activated})"
            )
        return "\n".join(lines)
    if response.kind == "dataset":
        destination = f" -> {payload.jsonl_path}" if payload.jsonl_path else ""
        return f"[{response.request_id}] {payload.records} records{destination}"
    rows = [f"[{response.request_id}] campaign on {payload.target}"]
    for name, result in payload.techniques.items():
        effectiveness = result["effectiveness"]
        rows.append(
            f"  {name}: exposure={effectiveness['failure_exposure_rate']:.3f} "
            f"effort={result['effort_minutes']:.1f}min"
        )
    return "\n".join(rows)


@contextlib.contextmanager
def _stdout_reserved_for_payload() -> Iterator[None]:
    """Route fd 1 to stderr while the engine works, so ``--json`` stays pure.

    Sandboxed workloads (in-process runs, forked pool workers) print straight
    to the inherited stdout; redirecting the file descriptor — not just
    ``sys.stdout`` — keeps those prints visible on stderr while reserving
    stdout for the single JSON envelope.
    """
    sys.stdout.flush()
    saved = os.dup(1)
    try:
        os.dup2(2, 1)
        yield
    finally:
        sys.stdout.flush()
        os.dup2(saved, 1)
        os.close(saved)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    config = PipelineConfig(seed=args.seed) if args.seed is not None else PipelineConfig()
    try:
        request = _request_from_args(args)
    except ReproError as exc:
        print(f"invalid request: {exc}", file=sys.stderr)
        return 2
    if args.json:
        with _stdout_reserved_for_payload():
            with FaultInjectionEngine(config) as engine:
                response = engine.run(request)
    else:
        with FaultInjectionEngine(config) as engine:
            response = engine.run(request)
    if args.json:
        print(json.dumps(response.to_dict(), indent=2, sort_keys=True))
    else:
        print(_summarize(response))
    return 0 if response.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
