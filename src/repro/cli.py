"""Command-line interface over the typed service layer.

``python -m repro <command>`` builds a typed request, runs it through a
:class:`~repro.api.FaultInjectionEngine`, and prints either a human-readable
summary or — with ``--json`` — the full versioned response envelope, so the
CLI speaks exactly the same contract as library clients:

* ``python -m repro generate --target bank --description "..."``
* ``python -m repro dataset --target bank --samples 5``
* ``python -m repro campaign --target bank --scenario "..." --scenario "..."``
* ``python -m repro serve --port 8080`` — the HTTP/JSON front-end
  (docs/SERVING.md) speaking the same envelopes over a socket

See docs/API.md for the request/response reference and
``examples/serving_engine.py`` for the library-level equivalent.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import Iterator, Sequence

from .api import CampaignRequest, DatasetRequest, FaultInjectionEngine, GenerateRequest, Response
from .config import PipelineConfig
from .errors import ReproError
from .targets import target_names


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Neural fault injection: generate software faults from natural language.",
    )
    shared = argparse.ArgumentParser(add_help=False)
    shared.add_argument("--seed", type=int, default=None, help="pipeline seed override")
    shared.add_argument("--json", action="store_true", help="print the full response envelope as JSON")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", parents=[shared], help="generate one faulty code snippet")
    generate.add_argument("--description", required=True, help="natural-language fault description")
    generate.add_argument("--target", choices=target_names(), default=None, help="target system")
    generate.add_argument("--code-file", default=None, help="file with explicit target code")
    generate.add_argument("--sample", action="store_true", help="sample instead of greedy decoding")
    generate.add_argument("--temperature", type=float, default=None, help="sampling temperature")
    generate.add_argument("--request-seed", type=int, default=None, help="per-request decode seed")
    generate.add_argument("--execute", action="store_true", help="integrate and test against the target")
    generate.add_argument("--mode", default=None, help="sandbox mode: inprocess|subprocess|pool|distributed")

    dataset = commands.add_parser("dataset", parents=[shared], help="generate an SFI fine-tuning dataset")
    dataset.add_argument("--target", action="append", default=None, help="target name (repeatable)")
    dataset.add_argument("--samples", type=int, default=None, help="samples per target")
    dataset.add_argument("--validate", action="store_true", help="validate candidates in the sandbox")
    dataset.add_argument("--jsonl", default=None, help="stream records to this JSONL file")

    campaign = commands.add_parser("campaign", parents=[shared], help="run the neural-vs-baselines comparison")
    campaign.add_argument("--target", required=True, help="target system the campaign runs against")
    campaign.add_argument("--scenario", action="append", required=True, help="scenario text (repeatable)")
    campaign.add_argument("--technique", action="append", default=None, help="technique (repeatable)")
    campaign.add_argument("--budget", type=int, default=None, help="baseline fault budget")
    campaign.add_argument("--mode", default=None, help="sandbox mode: inprocess|subprocess|pool|distributed")

    serve = commands.add_parser(
        "serve",
        help="serve the engine over HTTP/JSON (see docs/SERVING.md)",
        description=(
            "Serve the engine over HTTP/JSON.  The server flags are aliases "
            "for ServerConfig fields and are applied through the single "
            "validated ServerConfig.from_args entry point; prefer configuring "
            "ServerConfig directly when embedding."
        ),
    )
    serve.add_argument("--seed", type=int, default=None, help="pipeline seed override")
    serve.add_argument(
        "--host", default=None, help="bind address (alias for ServerConfig.host)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port, 0 = ephemeral (alias for ServerConfig.port)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run N engine worker processes behind a consistent-hash router "
            "(1 = classic single-engine serving; ServerConfig.shards, see "
            "docs/SHARDING.md)"
        ),
    )
    serve.add_argument(
        "--shard-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-shard admission bound: each shard sheds its own submissions "
            "with HTTP 429 at N queued tickets (default: --max-queue-depth; "
            "ServerConfig.shard_queue_depth)"
        ),
    )
    serve.add_argument("--mode", default=None, help="default sandbox mode: inprocess|subprocess|pool|distributed")
    serve.add_argument("--max-workers", type=int, default=None, help="sandbox worker pool size")
    serve.add_argument(
        "--queue-delay",
        type=float,
        default=None,
        help="scheduler coalescing window in seconds (EngineConfig.max_queue_delay_seconds)",
    )
    serve.add_argument(
        "--chaos",
        type=float,
        default=None,
        metavar="P",
        help=(
            "self-chaos: inject worker crashes, task delays, and dropped results "
            "each with probability P (supervision makes results byte-identical; "
            "see docs/RESILIENCE.md)"
        ),
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=None, help="chaos decision seed (default: 31)"
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help=(
            "admission control: shed request submissions with HTTP 429 while the "
            "scheduler already holds N queued tickets (0 disables shedding; "
            "alias for ServerConfig.max_queue_depth, surfaced on GET /healthz "
            "as queue_depth)"
        ),
    )

    worker = commands.add_parser(
        "worker", help="run one remote sandbox worker (see docs/DISTRIBUTED.md)"
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help=(
            "coordinator address to dial; the worker registers its capacity, "
            "executes leased task batches through the sandbox runner, and "
            "heartbeats while running"
        ),
    )
    worker.add_argument(
        "--max-workers",
        type=int,
        default=1,
        metavar="K",
        help="inner sandbox pool size — the capacity advertised to the coordinator",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: hostname-pid; coordinator may uniquify)",
    )

    launch = commands.add_parser(
        "launch-workers",
        help="spawn and maintain a localhost worker fleet (see docs/DISTRIBUTED.md)",
    )
    launch.add_argument(
        "-n",
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="fleet size to keep at strength (dead workers are respawned)",
    )
    launch.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address every worker dials",
    )
    launch.add_argument(
        "--max-workers",
        type=int,
        default=1,
        metavar="K",
        help="inner sandbox pool size per worker",
    )
    return parser


def _serve_command(args: argparse.Namespace) -> int:
    """Run ``python -m repro serve``: serve until interrupted, then drain."""
    from dataclasses import replace

    from .config import ServerConfig
    from .server import FaultInjectionServer

    try:
        # Shard worker processes receive their full pipeline configuration
        # through the environment (the router serializes it), so a worker is
        # an exact replica of the front-end's stack with the shard topology
        # baked into the server section.
        from .server.sharding import SHARD_CONFIG_ENV

        inherited = os.environ.get(SHARD_CONFIG_ENV)
        if inherited:
            config = PipelineConfig.from_dict(json.loads(inherited))
            if args.seed is not None:
                config = replace(config, seed=args.seed)
        else:
            config = PipelineConfig(seed=args.seed) if args.seed is not None else PipelineConfig()
        execution = config.execution
        if args.mode is not None:
            execution = replace(execution, default_mode=args.mode)
        if args.max_workers is not None:
            execution = replace(execution, max_workers=args.max_workers)
        engine_config = config.engine
        if args.queue_delay is not None:
            engine_config = replace(engine_config, max_queue_delay_seconds=args.queue_delay)
        resilience = config.resilience
        if args.chaos is not None:
            from .config import ChaosConfig

            chaos = ChaosConfig(
                enabled=True,
                seed=args.chaos_seed if args.chaos_seed is not None else 31,
                worker_crash_probability=args.chaos,
                task_delay_probability=args.chaos,
                drop_result_probability=args.chaos,
            )
            resilience = replace(resilience, chaos=chaos)
        config = replace(config, execution=execution, engine=engine_config, resilience=resilience)
        # All server flags funnel through the one validated entry point
        # (the individual flags are aliases for ServerConfig fields).
        server_config = ServerConfig.from_args(args, base=config.server)
        config = replace(config, server=server_config)
        server = FaultInjectionServer(config=config, server_config=server_config)
    except (ReproError, OSError) as exc:
        # OSError covers socket binding (port in use, privileged port).
        print(f"cannot start server: {exc}", file=sys.stderr)
        return 2
    print(f"serving on {server.url} (Ctrl-C to drain and stop)", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("draining...", file=sys.stderr)
    finally:
        server.close()
    return 0


def _worker_command(args: argparse.Namespace) -> int:
    """Run ``python -m repro worker``: serve leases until GOODBYE."""
    from .distributed import run_worker

    try:
        return run_worker(args.connect, max_workers=args.max_workers, worker_id=args.worker_id)
    except (ReproError, ConnectionError, OSError) as exc:
        print(f"worker failed: {exc}", file=sys.stderr)
        return 2


def _launch_workers_command(args: argparse.Namespace) -> int:
    """Run ``python -m repro launch-workers``: keep a fleet up until Ctrl-C."""
    import time

    from .distributed import launch_workers

    try:
        fleet = launch_workers(args.connect, workers=args.workers, capacity=args.max_workers)
    except (ReproError, OSError) as exc:
        print(f"cannot launch workers: {exc}", file=sys.stderr)
        return 2
    print(
        f"maintaining {fleet.workers} workers (capacity {fleet.capacity}) "
        f"against {fleet.connect} (Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        while True:
            time.sleep(1.0)
            fleet.maintain()
    except KeyboardInterrupt:
        print("stopping workers...", file=sys.stderr)
    finally:
        fleet.shutdown()
    return 0


def _request_from_args(args: argparse.Namespace):
    if args.command == "generate":
        code = None
        if args.code_file:
            with open(args.code_file, "r", encoding="utf-8") as stream:
                code = stream.read()
        return GenerateRequest(
            description=args.description,
            target=args.target,
            code=code,
            greedy=not args.sample,
            temperature=args.temperature,
            seed=args.request_seed,
            execute=args.execute,
            mode=args.mode,
        )
    if args.command == "dataset":
        return DatasetRequest(
            targets=tuple(args.target or ()),
            samples_per_target=args.samples,
            validate_candidates=True if args.validate else None,
            jsonl_path=args.jsonl,
        )
    return CampaignRequest(
        target=args.target,
        scenarios=tuple(args.scenario),
        techniques=tuple(args.technique) if args.technique else ("neural", "predefined-model", "random"),
        budget=args.budget,
        mode=args.mode,
    )


def _summarize(response: Response) -> str:
    if not response.ok:
        return f"[{response.request_id}] ERROR {response.error.type}: {response.error.message}"
    payload = response.payload
    if response.kind == "generate":
        lines = [
            f"[{response.request_id}] fault {payload.fault.fault_id} "
            f"(template={payload.fault.actions.get('template')}, strategy={payload.strategy})",
            payload.fault.code.rstrip("\n"),
        ]
        if payload.outcome is not None:
            lines.append(
                f"outcome: {payload.outcome.failure_mode.value} "
                f"(activated={payload.outcome.activated})"
            )
        return "\n".join(lines)
    if response.kind == "dataset":
        destination = f" -> {payload.jsonl_path}" if payload.jsonl_path else ""
        return f"[{response.request_id}] {payload.records} records{destination}"
    rows = [f"[{response.request_id}] campaign on {payload.target}"]
    for name, result in payload.techniques.items():
        effectiveness = result["effectiveness"]
        rows.append(
            f"  {name}: exposure={effectiveness['failure_exposure_rate']:.3f} "
            f"effort={result['effort_minutes']:.1f}min"
        )
    return "\n".join(rows)


@contextlib.contextmanager
def _stdout_reserved_for_payload() -> Iterator[None]:
    """Route fd 1 to stderr while the engine works, so ``--json`` stays pure.

    Sandboxed workloads (in-process runs, forked pool workers) print straight
    to the inherited stdout; redirecting the file descriptor — not just
    ``sys.stdout`` — keeps those prints visible on stderr while reserving
    stdout for the single JSON envelope.
    """
    sys.stdout.flush()
    saved = os.dup(1)
    try:
        os.dup2(2, 1)
        yield
    finally:
        sys.stdout.flush()
        os.dup2(saved, 1)
        os.close(saved)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "serve":
        return _serve_command(args)
    if args.command == "worker":
        return _worker_command(args)
    if args.command == "launch-workers":
        return _launch_workers_command(args)
    config = PipelineConfig(seed=args.seed) if args.seed is not None else PipelineConfig()
    try:
        request = _request_from_args(args)
    except ReproError as exc:
        print(f"invalid request: {exc}", file=sys.stderr)
        return 2
    if args.json:
        with _stdout_reserved_for_payload():
            with FaultInjectionEngine(config) as engine:
                response = engine.run(request)
    else:
        with FaultInjectionEngine(config) as engine:
            response = engine.run(request)
    if args.json:
        print(json.dumps(response.to_dict(), indent=2, sort_keys=True))
    else:
        print(_summarize(response))
    return 0 if response.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
