"""Deterministic random number management.

All stochastic components (decoding, RLHF sampling, dataset generation,
probabilistic fault triggers) draw from :class:`SeededRNG` so that a single
seed pins down an entire experiment, which is essential for reproducible
benchmark runs.
"""

from __future__ import annotations

import hashlib

import numpy as np


class SeededRNG:
    """A thin, forkable wrapper around :class:`numpy.random.Generator`.

    Components receive independent sub-streams via :meth:`fork`, so adding a
    new consumer of randomness does not perturb the draws seen by existing
    components — a property plain shared generators do not have.
    """

    def __init__(self, seed: int = 0, namespace: str = "root") -> None:
        self.seed = int(seed)
        self.namespace = namespace
        self._generator = np.random.default_rng(self._derive(namespace))

    def _derive(self, namespace: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{namespace}".encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big")

    def fork(self, namespace: str) -> "SeededRNG":
        """Create an independent generator for a named sub-component."""
        return SeededRNG(seed=self.seed, namespace=f"{self.namespace}/{namespace}")

    @property
    def generator(self) -> np.random.Generator:
        return self._generator

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._generator.uniform(low, high))

    def randint(self, low: int, high: int) -> int:
        """Random integer in ``[low, high)``."""
        return int(self._generator.integers(low, high))

    def choice(self, options, p=None):
        """Choose one element from a sequence, optionally with probabilities."""
        index = self._generator.choice(len(options), p=p)
        return options[int(index)]

    def shuffle(self, items: list) -> list:
        """Return a new shuffled copy of ``items``."""
        order = self._generator.permutation(len(items))
        return [items[int(i)] for i in order]

    def normal(self, size=None, scale: float = 1.0):
        return self._generator.normal(0.0, scale, size=size)

    def bernoulli(self, probability: float) -> bool:
        return bool(self._generator.uniform() < probability)
