"""Sandboxed execution of target workloads against (mutated) module sources.

Two execution modes are provided:

* ``subprocess`` (default for campaigns) — the workload runs in a separate
  Python process with a hard timeout, so injected hangs, deadlocks, and
  infinite loops are observed as timeouts rather than wedging the harness;
* ``inprocess`` — the workload runs in the current interpreter, which is much
  faster and is what unit tests and quick examples use for faults that cannot
  hang.
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

from ..config import IntegrationConfig
from ..errors import SandboxError
from ..targets import TargetRunResult, get_target

_DRIVER = """
import json
import sys

from repro.targets import get_target

target = get_target(sys.argv[1])
with open(sys.argv[2], "r") as handle:
    source = handle.read()
result = target.execute(source=source, iterations=int(sys.argv[3]), seed=int(sys.argv[4]))
sys.stdout.write(json.dumps(result.to_dict()))
"""


@dataclass
class RunObservation:
    """What the runner observed: the run result plus harness-level signals."""

    result: TargetRunResult | None
    timed_out: bool = False
    harness_error: str | None = None
    stdout: str = ""
    stderr: str = ""

    @property
    def completed(self) -> bool:
        return self.result is not None and self.result.completed


class SandboxRunner:
    """Runs target workloads against module sources with timeout protection."""

    def __init__(self, config: IntegrationConfig | None = None) -> None:
        self._config = config or IntegrationConfig()

    @property
    def config(self) -> IntegrationConfig:
        return self._config

    def run(
        self,
        target_name: str,
        module_source: str,
        seed: int = 0,
        iterations: int | None = None,
        mode: str = "subprocess",
    ) -> RunObservation:
        """Execute the target's workload against ``module_source``."""
        iterations = iterations or self._config.workload_iterations
        if mode == "inprocess":
            return self._run_inprocess(target_name, module_source, seed, iterations)
        if mode == "subprocess":
            return self._run_subprocess(target_name, module_source, seed, iterations)
        raise SandboxError(f"unknown runner mode {mode!r}; use 'subprocess' or 'inprocess'")

    # -- modes --------------------------------------------------------------------

    def _run_inprocess(
        self, target_name: str, module_source: str, seed: int, iterations: int
    ) -> RunObservation:
        target = get_target(target_name)
        result = target.execute(source=module_source, iterations=iterations, seed=seed)
        return RunObservation(result=result)

    def _run_subprocess(
        self, target_name: str, module_source: str, seed: int, iterations: int
    ) -> RunObservation:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="nfi-run-") as temp_dir:
            module_path = Path(temp_dir) / "module_under_test.py"
            module_path.write_text(module_source)
            command = [
                sys.executable,
                "-c",
                _DRIVER,
                target_name,
                str(module_path),
                str(iterations),
                str(seed),
            ]
            try:
                completed = subprocess.run(
                    command,
                    capture_output=self._config.capture_output,
                    timeout=self._config.test_timeout_seconds,
                    text=True,
                    check=False,
                )
            except subprocess.TimeoutExpired as exc:
                return RunObservation(
                    result=None,
                    timed_out=True,
                    stdout=(exc.stdout or "") if isinstance(exc.stdout, str) else "",
                    stderr=(exc.stderr or "") if isinstance(exc.stderr, str) else "",
                )
        stdout = completed.stdout or ""
        stderr = completed.stderr or ""
        if completed.returncode != 0:
            return RunObservation(
                result=None,
                harness_error=f"workload process exited with status {completed.returncode}",
                stdout=stdout,
                stderr=stderr,
            )
        try:
            payload = json.loads(stdout.strip().splitlines()[-1])
        except (ValueError, IndexError) as exc:
            return RunObservation(
                result=None,
                harness_error=f"could not parse workload output: {exc}",
                stdout=stdout,
                stderr=stderr,
            )
        result = TargetRunResult(
            target=payload["target"],
            completed=payload["completed"],
            duration_seconds=payload["duration_seconds"],
            metrics=payload.get("metrics", {}),
            violations=payload.get("violations", []),
            error_type=payload.get("error_type"),
            error_message=payload.get("error_message"),
            detected_errors=payload.get("detected_errors", 0),
        )
        return RunObservation(result=result, stdout=stdout, stderr=stderr)
