"""Sandboxed execution of target workloads against (mutated) module sources.

Three execution modes are provided:

* ``subprocess`` (default for one-off campaigns) — the workload runs in a
  separate Python process with a hard timeout, so injected hangs, deadlocks,
  and infinite loops are observed as timeouts rather than wedging the harness;
* ``pool`` — the workload runs on a persistent sandbox worker from
  :class:`repro.execution.WorkerPool`; workers import the library once and
  serve many runs, eliminating the per-fault interpreter start + import cost
  while keeping per-task timeouts;
* ``inprocess`` — the workload runs in the current interpreter, which is much
  faster and is what unit tests and quick examples use for faults that cannot
  hang;
* ``distributed`` — the workload runs on remote sandbox workers leased over
  TCP by a :class:`repro.distributed.DistributedPool`; on one box the pool
  auto-spawns a localhost fleet, and extra workers on other machines may dial
  in with ``python -m repro worker --connect HOST:PORT`` at any time.
  Results are byte-identical to ``pool`` mode (see docs/DISTRIBUTED.md).

Batches submitted through :meth:`SandboxRunner.run_batch` execute concurrently
(threads driving subprocesses, or pool workers) and always return observations
in submission order, so campaign reports stay deterministic for a given seed.
Submissions are additionally chunked by :attr:`ExecutionConfig.batch_size`, so
arbitrarily large campaigns keep at most ``batch_size`` task payloads in
flight at any moment; see ``docs/EXECUTION.md`` for how to tune the chunk size
against memory.
"""

from __future__ import annotations

import itertools
import json
import subprocess
import sys
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..config import ExecutionConfig, IntegrationConfig, ResilienceConfig
from ..errors import SandboxError
from ..execution import WorkerPool, resolve_workers
from ..targets import TargetRunResult, get_target

_DRIVER = """
import json
import sys

from repro.targets import get_target

target = get_target(sys.argv[1])
with open(sys.argv[2], "r") as handle:
    source = handle.read()
result = target.execute(source=source, iterations=int(sys.argv[3]), seed=int(sys.argv[4]))
sys.stdout.write(json.dumps(result.to_dict()))
"""

_MODES = ("subprocess", "inprocess", "pool", "distributed")

#: Counter keys shared by the local and distributed pools whose values must
#: survive a pool rebuild (``/v1/stats`` is monotonic within one engine).
_POOL_COUNTER_KEYS = ("tasks_executed", "pool_rebuilds", "retries", "quarantined")


@dataclass
class RunObservation:
    """What the runner observed: the run result plus harness-level signals."""

    result: TargetRunResult | None
    timed_out: bool = False
    harness_error: str | None = None
    stdout: str = ""
    stderr: str = ""

    @property
    def completed(self) -> bool:
        return self.result is not None and self.result.completed


class SandboxRunner:
    """Runs target workloads against module sources with timeout protection."""

    def __init__(
        self,
        config: IntegrationConfig | None = None,
        execution: ExecutionConfig | None = None,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        self._config = config or IntegrationConfig()
        self._execution = execution or ExecutionConfig()
        self._resilience = resilience or ResilienceConfig()
        self._pool: WorkerPool | None = None
        self._distributed = None  # lazily-created repro.distributed.DistributedPool
        self._retired_pool_stats = dict.fromkeys(_POOL_COUNTER_KEYS, 0)
        self._retired_distributed_stats: dict[str, int] = {}
        self._scratch: tempfile.TemporaryDirectory | None = None
        self._task_ids = itertools.count()
        self._lock = threading.Lock()

    @property
    def config(self) -> IntegrationConfig:
        return self._config

    @property
    def execution(self) -> ExecutionConfig:
        return self._execution

    @property
    def resilience(self) -> ResilienceConfig:
        return self._resilience

    def pool_stats(self) -> dict[str, int] | None:
        """Supervision counters of the lazily-created pool (``None`` before use).

        Counters accumulate across pool rebuilds (e.g. a per-call
        ``max_workers`` override replacing the pool), so they are monotonic
        for the lifetime of this runner.
        """
        with self._lock:
            pool = self._pool
            retired = dict(self._retired_pool_stats)
        if pool is None:
            return retired if any(retired.values()) else None
        stats = pool.stats()
        return {key: stats.get(key, 0) + retired.get(key, 0) for key in _POOL_COUNTER_KEYS}

    def distributed_stats(self) -> dict[str, int] | None:
        """Counters of the lazily-created distributed pool (``None`` before use).

        Like :meth:`pool_stats`, cumulative counters survive pool rebuilds;
        the ``workers`` gauge always reflects the live pool only.
        """
        with self._lock:
            pool = self._distributed
            retired = dict(self._retired_distributed_stats)
        if pool is None:
            if not retired:
                return None
            keys = ("leases", "requeues", "rebalances", *_POOL_COUNTER_KEYS)
            return {"workers": 0, **{key: retired.get(key, 0) for key in keys}}
        stats = pool.stats()
        return {
            key: (value if key == "workers" else value + retired.get(key, 0))
            for key, value in stats.items()
        }

    def close(self) -> None:
        """Release the worker pools and the scratch directory (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
            distributed, self._distributed = self._distributed, None
            scratch, self._scratch = self._scratch, None
        if pool is not None:
            pool.shutdown()
        if distributed is not None:
            distributed.shutdown()
        if scratch is not None:
            scratch.cleanup()

    def __enter__(self) -> "SandboxRunner":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def run(
        self,
        target_name: str,
        module_source: str,
        seed: int = 0,
        iterations: int | None = None,
        mode: str = "subprocess",
    ) -> RunObservation:
        """Execute the target's workload against one module source.

        Args:
            target_name: Registry name of the target system to drive.
            module_source: Python source of the (possibly mutated) module.
            seed: Workload seed; the same seed reproduces the same run.
            iterations: Workload iterations; defaults to
                ``IntegrationConfig.workload_iterations``.
            mode: One of ``"inprocess"``, ``"subprocess"``, ``"pool"``, or
                ``"distributed"``.

        Returns:
            A :class:`RunObservation` with the run result or the harness-level
            signal (timeout, crash, unparseable output) that replaced it.

        Raises:
            SandboxError: If ``mode`` is not a known execution mode.
        """
        iterations = iterations or self._config.workload_iterations
        if mode == "inprocess":
            return self._run_inprocess(target_name, module_source, seed, iterations)
        if mode == "subprocess":
            return self._run_subprocess(target_name, module_source, seed, iterations)
        if mode == "pool":
            return self._run_pool(target_name, [module_source], seed, iterations)[0]
        if mode == "distributed":
            return self._run_distributed(target_name, [module_source], seed, iterations)[0]
        raise SandboxError(f"unknown runner mode {mode!r}; use one of {_MODES}")

    def run_batch(
        self,
        target_name: str,
        module_sources: list[str],
        seed: int = 0,
        iterations: int | None = None,
        mode: str = "subprocess",
        max_workers: int | None = None,
        batch_size: int | None = None,
        timeout_seconds: float | None = None,
    ) -> list[RunObservation]:
        """Execute many module sources concurrently, preserving input order.

        Every run uses the same ``seed``, matching what a serial loop over
        :meth:`run` would do, so batched campaigns reproduce serial outcomes.
        Sources are submitted in consecutive chunks of at most ``batch_size``,
        so the number of in-flight task payloads — and therefore peak memory —
        is bounded no matter how large the campaign is.

        Args:
            target_name: Registry name of the target system to drive.
            module_sources: Module sources, one sandbox run each.
            seed: Workload seed shared by every run in the batch.
            iterations: Workload iterations; defaults to
                ``IntegrationConfig.workload_iterations``.
            mode: One of ``"inprocess"``, ``"subprocess"``, ``"pool"``, or
                ``"distributed"``.
            max_workers: Per-call worker override (capped by the CPU count).
            batch_size: Chunk size for submissions; defaults to
                ``ExecutionConfig.batch_size``.
            timeout_seconds: Per-call override of
                ``IntegrationConfig.test_timeout_seconds`` — used to clamp
                sandbox budgets to a request's remaining deadline.  Only the
                timeout-protected modes honour it (``inprocess`` has no
                timeout by design).

        Returns:
            One :class:`RunObservation` per source, in submission order.

        Raises:
            SandboxError: If ``mode`` is unknown or ``batch_size`` is not
                positive.
        """
        iterations = iterations or self._config.workload_iterations
        if not module_sources:
            return []
        if mode not in _MODES:
            raise SandboxError(f"unknown runner mode {mode!r}; use one of {_MODES}")
        chunk_size = self._execution.batch_size if batch_size is None else int(batch_size)
        if chunk_size <= 0:
            raise SandboxError("batch_size must be positive")
        observations: list[RunObservation] = []
        for start in range(0, len(module_sources), chunk_size):
            observations.extend(
                self._dispatch_chunk(
                    target_name,
                    module_sources[start : start + chunk_size],
                    seed,
                    iterations,
                    mode,
                    max_workers,
                    timeout_seconds,
                )
            )
        return observations

    def _dispatch_chunk(
        self,
        target_name: str,
        module_sources: list[str],
        seed: int,
        iterations: int,
        mode: str,
        max_workers: int | None,
        timeout_seconds: float | None = None,
    ) -> list[RunObservation]:
        """Run one submission chunk through the requested execution mode."""
        if mode == "inprocess":
            # In-interpreter runs are GIL-bound; threads would only add noise.
            return [
                self._run_inprocess(target_name, source, seed, iterations)
                for source in module_sources
            ]
        if mode == "subprocess":
            workers = self._execution.resolved_workers(max_workers)
            if workers <= 1 or len(module_sources) == 1:
                return [
                    self._run_subprocess(target_name, source, seed, iterations, timeout_seconds)
                    for source in module_sources
                ]
            with ThreadPoolExecutor(max_workers=workers) as executor:
                return list(
                    executor.map(
                        lambda source: self._run_subprocess(
                            target_name, source, seed, iterations, timeout_seconds
                        ),
                        module_sources,
                    )
                )
        if mode == "distributed":
            return self._run_distributed(
                target_name, module_sources, seed, iterations, max_workers, timeout_seconds
            )
        return self._run_pool(target_name, module_sources, seed, iterations, max_workers, timeout_seconds)

    # -- modes --------------------------------------------------------------------

    def _run_inprocess(
        self, target_name: str, module_source: str, seed: int, iterations: int
    ) -> RunObservation:
        target = get_target(target_name)
        result = target.execute(source=module_source, iterations=iterations, seed=seed)
        return RunObservation(result=result)

    def _run_subprocess(
        self,
        target_name: str,
        module_source: str,
        seed: int,
        iterations: int,
        timeout_seconds: float | None = None,
    ) -> RunObservation:
        module_path = self._scratch_file()
        module_path.write_text(module_source)
        command = [
            sys.executable,
            "-c",
            _DRIVER,
            target_name,
            str(module_path),
            str(iterations),
            str(seed),
        ]
        try:
            completed = subprocess.run(
                command,
                capture_output=self._config.capture_output,
                timeout=timeout_seconds if timeout_seconds is not None else self._config.test_timeout_seconds,
                text=True,
                check=False,
            )
        except subprocess.TimeoutExpired as exc:
            return RunObservation(
                result=None,
                timed_out=True,
                stdout=(exc.stdout or "") if isinstance(exc.stdout, str) else "",
                stderr=(exc.stderr or "") if isinstance(exc.stderr, str) else "",
            )
        finally:
            module_path.unlink(missing_ok=True)
        stdout = completed.stdout or ""
        stderr = completed.stderr or ""
        if completed.returncode != 0:
            return RunObservation(
                result=None,
                harness_error=f"workload process exited with status {completed.returncode}",
                stdout=stdout,
                stderr=stderr,
            )
        try:
            payload = json.loads(stdout.strip().splitlines()[-1])
        except (ValueError, IndexError) as exc:
            return RunObservation(
                result=None,
                harness_error=f"could not parse workload output: {exc}",
                stdout=stdout,
                stderr=stderr,
            )
        return RunObservation(result=self._result_from_payload(payload), stdout=stdout, stderr=stderr)

    def _run_pool(
        self,
        target_name: str,
        module_sources: list[str],
        seed: int,
        iterations: int,
        max_workers: int | None = None,
        timeout_seconds: float | None = None,
    ) -> list[RunObservation]:
        pool = self._ensure_pool(max_workers)
        payloads = pool.run_batch(
            target_name,
            module_sources,
            seed=seed,
            iterations=iterations,
            timeout_seconds=timeout_seconds if timeout_seconds is not None else self._config.test_timeout_seconds,
        )
        return [self._observation_from_pool(payload) for payload in payloads]

    def _run_distributed(
        self,
        target_name: str,
        module_sources: list[str],
        seed: int,
        iterations: int,
        max_workers: int | None = None,
        timeout_seconds: float | None = None,
    ) -> list[RunObservation]:
        pool = self._ensure_distributed(max_workers)
        payloads = pool.run_batch(
            target_name,
            module_sources,
            seed=seed,
            iterations=iterations,
            timeout_seconds=timeout_seconds if timeout_seconds is not None else self._config.test_timeout_seconds,
        )
        return [self._observation_from_pool(payload) for payload in payloads]

    # -- helpers ------------------------------------------------------------------

    def _ensure_pool(self, max_workers: int | None = None) -> WorkerPool:
        workers = self._execution.resolved_workers(max_workers)
        with self._lock:
            if (
                self._pool is not None
                and max_workers is not None
                and self._pool.max_workers != workers
            ):
                # An explicit per-call override takes effect even if a pool of a
                # different size already exists.  Its counters roll into the
                # retired totals so /v1/stats stays monotonic across rebuilds.
                stale, self._pool = self._pool, None
                self._accumulate_locked(self._retired_pool_stats, stale.stats())
                self._retired_pool_stats["pool_rebuilds"] += 1
            else:
                stale = None
            if self._pool is None:
                self._pool = WorkerPool(
                    max_workers=workers,
                    task_timeout_seconds=self._config.test_timeout_seconds,
                    resilience=self._resilience,
                )
            pool = self._pool
        if stale is not None:
            stale.shutdown()
        return pool

    def _ensure_distributed(self, max_workers: int | None = None):
        from ..distributed import DistributedPool

        workers = self._execution.resolved_workers(max_workers)
        with self._lock:
            if (
                self._distributed is not None
                and max_workers is not None
                and self._distributed.max_workers != workers
            ):
                stale, self._distributed = self._distributed, None
                self._accumulate_locked(self._retired_distributed_stats, stale.stats())
                self._retired_distributed_stats["pool_rebuilds"] += 1
            else:
                stale = None
            if self._distributed is None:
                self._distributed = DistributedPool(
                    max_workers=workers,
                    task_timeout_seconds=self._config.test_timeout_seconds,
                    resilience=self._resilience,
                    distributed=self._execution.distributed,
                )
            pool = self._distributed
        if stale is not None:
            stale.shutdown()
        return pool

    @staticmethod
    def _accumulate_locked(retired: dict[str, int], stats: dict[str, int]) -> None:
        """Fold a retired pool's counters into the running totals (gauges skipped)."""
        for key, value in stats.items():
            if key == "workers":
                continue
            retired[key] = retired.get(key, 0) + value

    def _scratch_file(self) -> Path:
        """A unique module path inside the runner's persistent scratch directory.

        One temporary directory is created per runner and reused across runs
        (and threads); each task gets a distinct file name so concurrent
        subprocess runs never collide.
        """
        with self._lock:
            if self._scratch is None:
                self._scratch = tempfile.TemporaryDirectory(prefix="nfi-run-")
            task_id = next(self._task_ids)
        return Path(self._scratch.name) / f"module_under_test_{task_id}.py"

    @staticmethod
    def _result_from_payload(payload: dict[str, Any]) -> TargetRunResult:
        return TargetRunResult(
            target=payload["target"],
            completed=payload["completed"],
            duration_seconds=payload["duration_seconds"],
            metrics=payload.get("metrics", {}),
            violations=payload.get("violations", []),
            error_type=payload.get("error_type"),
            error_message=payload.get("error_message"),
            detected_errors=payload.get("detected_errors", 0),
        )

    def _observation_from_pool(self, payload: dict[str, Any]) -> RunObservation:
        status = payload.get("status")
        if status == "ok":
            return RunObservation(result=self._result_from_payload(payload["result"]))
        if status == "timeout":
            return RunObservation(result=None, timed_out=True)
        return RunObservation(
            result=None,
            harness_error=str(payload.get("error") or "worker produced no result"),
        )
