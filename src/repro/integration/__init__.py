"""Automated integration and testing of generated faults (Fig. 1, last stage).

Components:

* :class:`WorkspaceManager` / :class:`Workspace` — sandbox directories;
* :class:`FaultIntegrator` — splices generated faults into target modules;
* :class:`SandboxRunner` — executes workloads with subprocess timeouts;
* :class:`FailureClassifier` — maps observations to failure modes;
* :class:`ExperimentRunner` — end-to-end experiments and batches;
* :class:`CampaignReport` — aggregation for reports and benchmarks.
"""

from .experiment import (
    ExperimentBatch,
    ExperimentRecord,
    ExperimentRunner,
    verify_target_health,
)
from .integrator import FaultIntegrator, IntegratedFault
from .monitors import Classification, ClassificationThresholds, FailureClassifier
from .report import CampaignReport, records_with_failures
from .runner import RunObservation, SandboxRunner
from .workspace import Workspace, WorkspaceManager

__all__ = [
    "CampaignReport",
    "Classification",
    "ClassificationThresholds",
    "ExperimentBatch",
    "ExperimentRecord",
    "ExperimentRunner",
    "FailureClassifier",
    "FaultIntegrator",
    "IntegratedFault",
    "RunObservation",
    "SandboxRunner",
    "Workspace",
    "WorkspaceManager",
    "records_with_failures",
    "verify_target_health",
]
