"""Automated integration of generated faults into target codebases.

The integrator takes a generated fault — either a module-level patch produced
by the grammar / injection operators, or a bare faulty function snippet — and
produces the module source that will actually run in the sandbox.  Splicing a
bare snippet into the pristine module is what the paper calls "seamlessly
incorporat[ing] the generated fault into the designated area of the
application's codebase".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import IntegrationError
from ..injection import ast_utils
from ..injection.operators import AppliedFault
from ..targets import TargetSystem
from ..types import GeneratedFault, Patch
from .workspace import Workspace, WorkspaceManager


@dataclass
class IntegratedFault:
    """A fault that has been installed into a concrete module source."""

    fault_id: str
    target_name: str
    module_source: str
    original_source: str
    patch: Patch
    workspace: Workspace | None = None

    @property
    def diff(self) -> str:
        return self.patch.diff


class FaultIntegrator:
    """Installs generated or operator-applied faults into target modules."""

    def __init__(self, workspaces: WorkspaceManager | None = None) -> None:
        self._workspaces = workspaces

    def integrate_generated(self, target: TargetSystem, fault: GeneratedFault) -> IntegratedFault:
        """Integrate an LLM-generated fault into ``target``'s module source."""
        original = target.build_source()
        if fault.patch is not None and fault.patch.original.strip() == original.strip():
            mutated = fault.patch.mutated
        else:
            mutated = self._splice_snippet(original, fault)
        patch = Patch(
            original=original,
            mutated=mutated,
            target_path=f"{target.name}.py",
            function=fault.spec.target.function,
            operator=fault.metadata.get("operator") if fault.metadata else None,
        )
        return self._finalise(fault.fault_id, target, original, mutated, patch)

    def integrate_applied(self, target: TargetSystem, applied: AppliedFault) -> IntegratedFault:
        """Integrate a fault produced directly by the injection substrate."""
        original = target.build_source()
        if applied.patch.original.strip() != original.strip():
            raise IntegrationError(
                f"applied fault was generated against different source than target {target.name!r}"
            )
        patch = Patch(
            original=original,
            mutated=applied.patch.mutated,
            target_path=f"{target.name}.py",
            function=applied.point.qualified_function,
            lineno=applied.point.lineno,
            operator=applied.operator,
        )
        fault_id = f"{applied.operator}@{applied.point.qualified_function}:{applied.point.lineno}"
        return self._finalise(fault_id, target, original, applied.patch.mutated, patch)

    # -- helpers -----------------------------------------------------------------

    def _splice_snippet(self, original: str, fault: GeneratedFault) -> str:
        """Replace the targeted function in the pristine module with the snippet."""
        function_name = fault.spec.target.function
        if not function_name:
            raise IntegrationError(
                "generated fault has no target function and no module-level patch to integrate"
            )
        try:
            return ast_utils.replace_function_source(original, function_name, fault.code)
        except Exception as exc:
            raise IntegrationError(
                f"could not splice generated code into function {function_name!r}: {exc}"
            ) from exc

    def _finalise(
        self,
        fault_id: str,
        target: TargetSystem,
        original: str,
        mutated: str,
        patch: Patch,
    ) -> IntegratedFault:
        ast_utils.parse_module(mutated, path=f"{target.name}.py", mutable=False)
        workspace = None
        if self._workspaces is not None:
            workspace = self._workspaces.create(label=f"{target.name}-{fault_id[:12]}", source=mutated)
            workspace.metadata["fault_id"] = fault_id
        return IntegratedFault(
            fault_id=fault_id,
            target_name=target.name,
            module_source=mutated,
            original_source=original,
            patch=patch,
            workspace=workspace,
        )
