"""Sandboxed workspaces for integrating generated faults.

A workspace is an isolated directory holding one version of a target module's
source (pristine or mutated).  Keeping every candidate fault in its own
workspace means experiments never contaminate each other and failed runs can be
inspected after the fact when ``keep`` is requested.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import SandboxError


@dataclass
class Workspace:
    """An isolated directory containing one module version under test."""

    root: Path
    module_path: Path
    label: str = "workspace"
    keep: bool = False
    metadata: dict = field(default_factory=dict)

    def write_module(self, source: str) -> Path:
        """(Over)write the module source in this workspace."""
        self.module_path.write_text(source)
        return self.module_path

    def read_module(self) -> str:
        if not self.module_path.exists():
            raise SandboxError(f"workspace {self.label!r} has no module file")
        return self.module_path.read_text()

    def write_file(self, name: str, content: str) -> Path:
        """Write an auxiliary file (logs, reports) into the workspace."""
        path = self.root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
        return path

    def cleanup(self) -> None:
        """Remove the workspace directory unless it is marked to be kept."""
        if self.keep:
            return
        shutil.rmtree(self.root, ignore_errors=True)

    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.cleanup()


class WorkspaceManager:
    """Creates and tracks sandbox workspaces."""

    def __init__(self, base_dir: str | Path | None = None, keep: bool = False) -> None:
        self._base_dir = Path(base_dir) if base_dir else None
        self._keep = keep
        self._created: list[Workspace] = []

    def create(self, label: str, source: str, module_filename: str = "target_module.py") -> Workspace:
        """Create a new workspace seeded with ``source``."""
        if self._base_dir is not None:
            self._base_dir.mkdir(parents=True, exist_ok=True)
            root = Path(tempfile.mkdtemp(prefix=f"{label}-", dir=self._base_dir))
        else:
            root = Path(tempfile.mkdtemp(prefix=f"nfi-{label}-"))
        workspace = Workspace(
            root=root,
            module_path=root / module_filename,
            label=label,
            keep=self._keep,
        )
        workspace.write_module(source)
        self._created.append(workspace)
        return workspace

    @property
    def workspaces(self) -> list[Workspace]:
        return list(self._created)

    def cleanup_all(self) -> None:
        """Remove every workspace created by this manager (unless kept)."""
        for workspace in self._created:
            workspace.cleanup()
        self._created = [workspace for workspace in self._created if workspace.keep]
