"""Campaign reports: aggregating experiment outcomes for testers and benchmarks."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from ..types import FailureMode, InjectionOutcome, summarise_outcomes
from .experiment import ExperimentBatch, ExperimentRecord


@dataclass
class CampaignReport:
    """Aggregated view of one or more experiment batches."""

    name: str = "campaign"
    outcomes: list[InjectionOutcome] = field(default_factory=list)
    by_target: dict[str, list[InjectionOutcome]] = field(default_factory=dict)

    # -- construction --------------------------------------------------------------

    def add_outcome(self, outcome: InjectionOutcome, target: str = "unknown") -> None:
        self.outcomes.append(outcome)
        self.by_target.setdefault(target, []).append(outcome)

    def add_batch(self, batch: ExperimentBatch) -> None:
        for record in batch.records:
            self.add_outcome(record.outcome, target=batch.target_name)

    @classmethod
    def from_batches(cls, batches: Iterable[ExperimentBatch], name: str = "campaign") -> "CampaignReport":
        report = cls(name=name)
        for batch in batches:
            report.add_batch(batch)
        return report

    # -- aggregate metrics ----------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def activation_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for outcome in self.outcomes if outcome.activated) / len(self.outcomes)

    @property
    def failure_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for outcome in self.outcomes if outcome.exposed_failure) / len(self.outcomes)

    def failure_mode_distribution(self) -> dict[str, int]:
        distribution = {mode.value: 0 for mode in FailureMode}
        for outcome in self.outcomes:
            distribution[outcome.failure_mode.value] += 1
        return distribution

    def failure_mode_distribution_by_target(self) -> dict[str, dict[str, int]]:
        return {
            target: {
                mode.value: sum(1 for outcome in outcomes if outcome.failure_mode is mode)
                for mode in FailureMode
            }
            for target, outcomes in self.by_target.items()
        }

    def summary(self) -> dict:
        summary = summarise_outcomes(self.outcomes)
        summary["name"] = self.name
        summary["targets"] = {
            target: summarise_outcomes(outcomes) for target, outcomes in self.by_target.items()
        }
        return summary

    # -- rendering ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(self.summary(), indent=2, sort_keys=True)

    def to_table(self) -> str:
        """Fixed-width text table of per-target failure-mode counts."""
        modes = [mode.value for mode in FailureMode]
        header = ["target", "faults"] + modes
        rows = [header]
        for target, outcomes in sorted(self.by_target.items()):
            counts = {mode.value: 0 for mode in FailureMode}
            for outcome in outcomes:
                counts[outcome.failure_mode.value] += 1
            rows.append([target, str(len(outcomes))] + [str(counts[mode]) for mode in modes])
        widths = [max(len(row[column]) for row in rows) for column in range(len(header))]
        lines = []
        for row in rows:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)


def records_with_failures(records: Iterable[ExperimentRecord]) -> list[ExperimentRecord]:
    """Records whose outcome exposed an externally visible failure."""
    return [record for record in records if record.outcome.exposed_failure]
