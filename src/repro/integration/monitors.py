"""Failure-mode classification of injection experiments.

The classifier compares the observation collected while running an injected
module against the golden (pristine) baseline run of the same target and maps
the difference onto the :class:`~repro.types.FailureMode` taxonomy:

* the workload process hit its timeout                        → ``HANG``
* the workload raised an unexpected exception                 → ``CRASH``
* invariant checks failed but the workload finished           → ``SILENT_DATA_CORRUPTION``
* the application reported more errors than the baseline      → ``ERROR_DETECTED``
* the run was substantially slower than the baseline          → ``DEGRADED``
* otherwise                                                   → ``NO_FAILURE``
"""

from __future__ import annotations

from dataclasses import dataclass

from ..targets import TargetRunResult
from ..types import FailureMode
from .runner import RunObservation


@dataclass
class ClassificationThresholds:
    """Tunable thresholds used by the failure classifier."""

    error_margin: int = 1
    slowdown_factor: float = 3.0
    slowdown_floor_seconds: float = 0.2

    def __post_init__(self) -> None:
        self.error_margin = max(0, int(self.error_margin))
        self.slowdown_factor = max(1.0, float(self.slowdown_factor))


@dataclass
class Classification:
    """The failure mode plus the evidence supporting it."""

    failure_mode: FailureMode
    activated: bool
    reason: str

    def to_dict(self) -> dict:
        return {
            "failure_mode": self.failure_mode.value,
            "activated": self.activated,
            "reason": self.reason,
        }


class FailureClassifier:
    """Maps run observations onto system-level failure modes."""

    def __init__(self, thresholds: ClassificationThresholds | None = None) -> None:
        self._thresholds = thresholds or ClassificationThresholds()

    def classify(self, observation: RunObservation, baseline: TargetRunResult) -> Classification:
        """Classify one faulty run against the pristine baseline."""
        if observation.timed_out:
            return Classification(
                failure_mode=FailureMode.HANG,
                activated=True,
                reason="workload exceeded its timeout",
            )
        if observation.harness_error is not None:
            return Classification(
                failure_mode=FailureMode.CRASH,
                activated=True,
                reason=f"workload process failed: {observation.harness_error}",
            )
        result = observation.result
        if result is None:
            return Classification(
                failure_mode=FailureMode.CRASH,
                activated=True,
                reason="no result was produced by the workload",
            )
        if not result.completed:
            return Classification(
                failure_mode=FailureMode.CRASH,
                activated=True,
                reason=f"unhandled {result.error_type}: {result.error_message}",
            )
        if result.violations:
            return Classification(
                failure_mode=FailureMode.SILENT_DATA_CORRUPTION,
                activated=True,
                reason="; ".join(result.violations[:3]),
            )
        extra_errors = result.detected_errors - baseline.detected_errors
        if extra_errors > self._thresholds.error_margin:
            return Classification(
                failure_mode=FailureMode.ERROR_DETECTED,
                activated=True,
                reason=f"{extra_errors} additional errors were detected and handled by the application",
            )
        slowdown_limit = max(
            baseline.duration_seconds * self._thresholds.slowdown_factor,
            baseline.duration_seconds + self._thresholds.slowdown_floor_seconds,
        )
        if result.duration_seconds > slowdown_limit:
            return Classification(
                failure_mode=FailureMode.DEGRADED,
                activated=True,
                reason=(
                    f"run took {result.duration_seconds:.3f}s versus a baseline of "
                    f"{baseline.duration_seconds:.3f}s"
                ),
            )
        activated = extra_errors > 0 or self._metrics_changed(result, baseline)
        return Classification(
            failure_mode=FailureMode.NO_FAILURE,
            activated=activated,
            reason="workload completed with baseline-equivalent behaviour"
            if not activated
            else "behaviour deviated from the baseline but no failure was observed",
        )

    @staticmethod
    def _metrics_changed(result: TargetRunResult, baseline: TargetRunResult) -> bool:
        """Coarse activation signal: any shared scalar workload metric differs."""
        for key, value in baseline.metrics.items():
            if isinstance(value, (int, float)) and key in result.metrics:
                other = result.metrics[key]
                if isinstance(other, (int, float)) and abs(other - value) > 1e-9:
                    return True
        return False
