"""Fault-injection experiments: integrate, execute, observe, classify.

An :class:`ExperimentRunner` owns a target baseline, a sandbox runner, and a
failure classifier, and turns individual faults (generated or operator-applied)
into :class:`~repro.types.InjectionOutcome` records.  This is the "Automated
Integration and Testing Tool" of Section III-B.4 as an executable component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..config import ExecutionConfig, IntegrationConfig, ResilienceConfig
from ..errors import ExperimentError, IntegrationError
from ..injection.operators import AppliedFault
from ..targets import TargetRunResult, TargetSystem, get_target
from ..types import FailureMode, GeneratedFault, InjectionOutcome
from .integrator import FaultIntegrator, IntegratedFault
from .monitors import Classification, FailureClassifier
from .runner import RunObservation, SandboxRunner
from .workspace import WorkspaceManager

#: Faults with these templates/operators can legitimately hang; they are never
#: executed in-process regardless of the requested default.  Pool and
#: distributed workers enforce per-task timeouts, so both are hang-safe as-is.
_HANG_PRONE_MARKERS = ("infinite_loop", "deadlock")

_HANG_SAFE_MODES = ("pool", "distributed")


def _effective_mode(mode: str, hint: str | None) -> str:
    if mode not in _HANG_SAFE_MODES and any(
        marker in (hint or "") for marker in _HANG_PRONE_MARKERS
    ):
        return "subprocess"
    return mode


@dataclass
class ExperimentRecord:
    """One executed experiment with every intermediate artefact retained."""

    outcome: InjectionOutcome
    integrated: IntegratedFault | None = None
    classification: Classification | None = None
    stdout: str = ""
    stderr: str = ""


@dataclass
class ExperimentBatch:
    """A collection of experiment records for one target."""

    target_name: str
    records: list[ExperimentRecord] = field(default_factory=list)

    @property
    def outcomes(self) -> list[InjectionOutcome]:
        return [record.outcome for record in self.records]

    def __len__(self) -> int:
        return len(self.records)


class ExperimentRunner:
    """Runs fault-injection experiments against one target system."""

    def __init__(
        self,
        target: TargetSystem | str,
        config: IntegrationConfig | None = None,
        runner: SandboxRunner | None = None,
        classifier: FailureClassifier | None = None,
        workspaces: WorkspaceManager | None = None,
        seed: int = 0,
        execution: ExecutionConfig | None = None,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        self.target = get_target(target) if isinstance(target, str) else target
        self.config = config or IntegrationConfig()
        self.execution = execution or ExecutionConfig()
        self.resilience = resilience or ResilienceConfig()
        self._owns_runner = runner is None
        self._runner = runner or SandboxRunner(
            self.config, execution=self.execution, resilience=self.resilience
        )
        self._classifier = classifier or FailureClassifier()
        self._integrator = FaultIntegrator(workspaces)
        self._seed = seed
        self._baseline: TargetRunResult | None = None

    def pool_stats(self) -> dict[str, int] | None:
        """Supervision counters of the sandbox runner's pool (``None`` before use)."""
        return self._runner.pool_stats()

    def distributed_stats(self) -> dict[str, int] | None:
        """Counters of the sandbox runner's distributed pool (``None`` before use)."""
        return self._runner.distributed_stats()

    def close(self) -> None:
        """Release the sandbox runner if this experiment runner created it.

        Idempotent; borrowed runners (passed into ``__init__``) are left to
        their owner.  Use the runner as a context manager for scoped cleanup.
        """
        if self._owns_runner:
            self._runner.close()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    @property
    def baseline(self) -> TargetRunResult:
        """The pristine target's golden run (computed lazily and cached)."""
        if self._baseline is None:
            self._baseline = self.target.baseline(
                iterations=self.config.workload_iterations, seed=self._seed
            )
        return self._baseline

    # -- single experiments -------------------------------------------------------

    def run_generated(self, fault: GeneratedFault, mode: str = "subprocess") -> ExperimentRecord:
        """Integrate and execute an LLM-generated fault."""
        try:
            integrated = self._integrator.integrate_generated(self.target, fault)
        except IntegrationError as exc:
            return self._integration_failure(fault.fault_id, str(exc))
        return self._execute(fault.fault_id, integrated, mode, hint=fault.actions.get("template", ""))

    def run_applied(self, applied: AppliedFault, mode: str = "subprocess") -> ExperimentRecord:
        """Integrate and execute a fault produced by the injection substrate."""
        try:
            integrated = self._integrator.integrate_applied(self.target, applied)
        except IntegrationError as exc:
            identifier = f"{applied.operator}@{applied.point.qualified_function}"
            return self._integration_failure(identifier, str(exc))
        return self._execute(integrated.fault_id, integrated, mode, hint=applied.operator)

    # -- batches -------------------------------------------------------------------

    def run_many(
        self,
        faults: Sequence[GeneratedFault | AppliedFault],
        mode: str = "subprocess",
        max_workers: int | None = None,
        batch_size: int | None = None,
        timeout_seconds: float | None = None,
    ) -> ExperimentBatch:
        """Integrate and execute many faults, running independent experiments concurrently.

        Faults may mix LLM-generated and operator-applied kinds.  The campaign
        is processed in consecutive chunks of at most ``batch_size`` faults
        (default: ``ExecutionConfig.batch_size``): each chunk is integrated,
        grouped by effective execution mode, and submitted as one sandbox
        batch before the next chunk is touched, so arbitrarily large
        campaigns hold at most one chunk of integrated module sources and
        in-flight results in memory.  Records come back in input order and,
        run for run, match what a serial loop over :meth:`run_generated` /
        :meth:`run_applied` produces for the same seed.

        Args:
            faults: Generated and/or operator-applied faults to execute.
            mode: Requested execution mode; hang-prone faults are promoted
                from ``inprocess`` to ``subprocess`` automatically.
            max_workers: Per-call worker override (capped by the CPU count).
            batch_size: Chunk size for the integrate-and-execute pipeline;
                defaults to ``ExecutionConfig.batch_size``.
            timeout_seconds: Per-call sandbox timeout override, used to clamp
                execution budgets to a request's remaining deadline.

        Returns:
            An :class:`ExperimentBatch` with one record per input fault.

        Raises:
            ExperimentError: If ``batch_size`` is not positive.
        """
        faults = list(faults)
        chunk_size = self.execution.batch_size if batch_size is None else int(batch_size)
        if chunk_size <= 0:
            raise ExperimentError("batch_size must be positive")
        batch = ExperimentBatch(target_name=self.target.name)
        for start in range(0, len(faults), chunk_size):
            batch.records.extend(
                self._run_chunk(
                    faults[start : start + chunk_size], mode, max_workers, chunk_size, timeout_seconds
                )
            )
        return batch

    def _run_chunk(
        self,
        faults: list[GeneratedFault | AppliedFault],
        mode: str,
        max_workers: int | None,
        chunk_size: int,
        timeout_seconds: float | None = None,
    ) -> list[ExperimentRecord]:
        """Integrate and execute one chunk of faults, preserving input order."""
        records: list[ExperimentRecord | None] = [None] * len(faults)
        pending: list[tuple[int, str, IntegratedFault, str]] = []
        for index, fault in enumerate(faults):
            if isinstance(fault, AppliedFault):
                hint = fault.operator
                try:
                    integrated = self._integrator.integrate_applied(self.target, fault)
                except IntegrationError as exc:
                    identifier = f"{fault.operator}@{fault.point.qualified_function}"
                    records[index] = self._integration_failure(identifier, str(exc))
                    continue
                fault_id = integrated.fault_id
            else:
                hint = fault.actions.get("template", "")
                try:
                    integrated = self._integrator.integrate_generated(self.target, fault)
                except IntegrationError as exc:
                    records[index] = self._integration_failure(fault.fault_id, str(exc))
                    continue
                fault_id = fault.fault_id
            pending.append((index, fault_id, integrated, _effective_mode(mode, hint)))

        baseline = self.baseline if pending else None
        by_mode: dict[str, list[tuple[int, str, IntegratedFault]]] = {}
        for index, fault_id, integrated, effective_mode in pending:
            by_mode.setdefault(effective_mode, []).append((index, fault_id, integrated))
        for effective_mode, group in by_mode.items():
            observations = self._runner.run_batch(
                self.target.name,
                [integrated.module_source for _, _, integrated in group],
                seed=self._seed,
                iterations=self.config.workload_iterations,
                mode=effective_mode,
                max_workers=max_workers,
                batch_size=chunk_size,
                timeout_seconds=timeout_seconds,
            )
            for (index, fault_id, integrated), observation in zip(group, observations):
                records[index] = self._record_from_observation(
                    fault_id, integrated, observation, effective_mode, baseline
                )

        return [record for record in records if record is not None]

    def run_batch_generated(
        self, faults: Iterable[GeneratedFault], mode: str = "subprocess"
    ) -> ExperimentBatch:
        return self.run_many(list(faults), mode=mode)

    def run_batch_applied(
        self, faults: Iterable[AppliedFault], mode: str = "subprocess"
    ) -> ExperimentBatch:
        return self.run_many(list(faults), mode=mode)

    # -- internals ----------------------------------------------------------------

    def _execute(
        self, fault_id: str, integrated: IntegratedFault, mode: str, hint: str = ""
    ) -> ExperimentRecord:
        effective_mode = _effective_mode(mode, hint)
        observation = self._runner.run(
            self.target.name,
            integrated.module_source,
            seed=self._seed,
            iterations=self.config.workload_iterations,
            mode=effective_mode,
        )
        return self._record_from_observation(fault_id, integrated, observation, effective_mode, self.baseline)

    def _record_from_observation(
        self,
        fault_id: str,
        integrated: IntegratedFault,
        observation: RunObservation,
        effective_mode: str,
        baseline: TargetRunResult | None = None,
    ) -> ExperimentRecord:
        baseline = baseline if baseline is not None else self.baseline
        classification = self._classifier.classify(observation, baseline)
        result = observation.result
        outcome = InjectionOutcome(
            fault_id=fault_id,
            activated=classification.activated,
            failure_mode=classification.failure_mode,
            tests_run=self.config.workload_iterations,
            tests_failed=(result.detected_errors - baseline.detected_errors) if result else 0,
            duration_seconds=result.duration_seconds if result else self.config.test_timeout_seconds,
            error_message=result.error_message if result else classification.reason,
            details={
                "reason": classification.reason,
                "target": self.target.name,
                "changed_lines": integrated.patch.changed_line_count,
                "mode": effective_mode,
            },
        )
        return ExperimentRecord(
            outcome=outcome,
            integrated=integrated,
            classification=classification,
            stdout=observation.stdout,
            stderr=observation.stderr,
        )

    def _integration_failure(self, fault_id: str, message: str) -> ExperimentRecord:
        """Record a fault that could not even be integrated (counts as no failure)."""
        outcome = InjectionOutcome(
            fault_id=fault_id,
            activated=False,
            failure_mode=FailureMode.NO_FAILURE,
            error_message=f"integration failed: {message}",
            details={"integration_failed": True, "target": self.target.name},
        )
        return ExperimentRecord(outcome=outcome)


def verify_target_health(target: TargetSystem | str, iterations: int = 25, seed: int = 0) -> TargetRunResult:
    """Convenience health check used by examples before launching campaigns."""
    target = get_target(target) if isinstance(target, str) else target
    result = target.baseline(iterations=iterations, seed=seed)
    if not result.completed:
        raise ExperimentError(f"target {target.name!r} failed its health check")
    return result
