"""Fault-injection experiments: integrate, execute, observe, classify.

An :class:`ExperimentRunner` owns a target baseline, a sandbox runner, and a
failure classifier, and turns individual faults (generated or operator-applied)
into :class:`~repro.types.InjectionOutcome` records.  This is the "Automated
Integration and Testing Tool" of Section III-B.4 as an executable component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..config import IntegrationConfig
from ..errors import ExperimentError, IntegrationError
from ..injection.operators import AppliedFault
from ..targets import TargetRunResult, TargetSystem, get_target
from ..types import FailureMode, GeneratedFault, InjectionOutcome
from .integrator import FaultIntegrator, IntegratedFault
from .monitors import Classification, FailureClassifier
from .runner import SandboxRunner
from .workspace import WorkspaceManager

#: Faults with these templates/operators can legitimately hang; they are always
#: executed in subprocess mode regardless of the requested default.
_HANG_PRONE_MARKERS = ("infinite_loop", "deadlock")


@dataclass
class ExperimentRecord:
    """One executed experiment with every intermediate artefact retained."""

    outcome: InjectionOutcome
    integrated: IntegratedFault | None = None
    classification: Classification | None = None
    stdout: str = ""
    stderr: str = ""


@dataclass
class ExperimentBatch:
    """A collection of experiment records for one target."""

    target_name: str
    records: list[ExperimentRecord] = field(default_factory=list)

    @property
    def outcomes(self) -> list[InjectionOutcome]:
        return [record.outcome for record in self.records]

    def __len__(self) -> int:
        return len(self.records)


class ExperimentRunner:
    """Runs fault-injection experiments against one target system."""

    def __init__(
        self,
        target: TargetSystem | str,
        config: IntegrationConfig | None = None,
        runner: SandboxRunner | None = None,
        classifier: FailureClassifier | None = None,
        workspaces: WorkspaceManager | None = None,
        seed: int = 0,
    ) -> None:
        self.target = get_target(target) if isinstance(target, str) else target
        self.config = config or IntegrationConfig()
        self._runner = runner or SandboxRunner(self.config)
        self._classifier = classifier or FailureClassifier()
        self._integrator = FaultIntegrator(workspaces)
        self._seed = seed
        self._baseline: TargetRunResult | None = None

    @property
    def baseline(self) -> TargetRunResult:
        """The pristine target's golden run (computed lazily and cached)."""
        if self._baseline is None:
            self._baseline = self.target.baseline(
                iterations=self.config.workload_iterations, seed=self._seed
            )
        return self._baseline

    # -- single experiments -------------------------------------------------------

    def run_generated(self, fault: GeneratedFault, mode: str = "subprocess") -> ExperimentRecord:
        """Integrate and execute an LLM-generated fault."""
        try:
            integrated = self._integrator.integrate_generated(self.target, fault)
        except IntegrationError as exc:
            return self._integration_failure(fault.fault_id, str(exc))
        return self._execute(fault.fault_id, integrated, mode, hint=fault.actions.get("template", ""))

    def run_applied(self, applied: AppliedFault, mode: str = "subprocess") -> ExperimentRecord:
        """Integrate and execute a fault produced by the injection substrate."""
        try:
            integrated = self._integrator.integrate_applied(self.target, applied)
        except IntegrationError as exc:
            identifier = f"{applied.operator}@{applied.point.qualified_function}"
            return self._integration_failure(identifier, str(exc))
        return self._execute(integrated.fault_id, integrated, mode, hint=applied.operator)

    # -- batches -------------------------------------------------------------------

    def run_batch_generated(
        self, faults: Iterable[GeneratedFault], mode: str = "subprocess"
    ) -> ExperimentBatch:
        batch = ExperimentBatch(target_name=self.target.name)
        for fault in faults:
            batch.records.append(self.run_generated(fault, mode=mode))
        return batch

    def run_batch_applied(
        self, faults: Iterable[AppliedFault], mode: str = "subprocess"
    ) -> ExperimentBatch:
        batch = ExperimentBatch(target_name=self.target.name)
        for applied in faults:
            batch.records.append(self.run_applied(applied, mode=mode))
        return batch

    # -- internals ----------------------------------------------------------------

    def _execute(
        self, fault_id: str, integrated: IntegratedFault, mode: str, hint: str = ""
    ) -> ExperimentRecord:
        baseline = self.baseline
        effective_mode = mode
        if any(marker in (hint or "") for marker in _HANG_PRONE_MARKERS):
            effective_mode = "subprocess"
        observation = self._runner.run(
            self.target.name,
            integrated.module_source,
            seed=self._seed,
            iterations=self.config.workload_iterations,
            mode=effective_mode,
        )
        classification = self._classifier.classify(observation, baseline)
        result = observation.result
        outcome = InjectionOutcome(
            fault_id=fault_id,
            activated=classification.activated,
            failure_mode=classification.failure_mode,
            tests_run=self.config.workload_iterations,
            tests_failed=(result.detected_errors - baseline.detected_errors) if result else 0,
            duration_seconds=result.duration_seconds if result else self.config.test_timeout_seconds,
            error_message=result.error_message if result else classification.reason,
            details={
                "reason": classification.reason,
                "target": self.target.name,
                "changed_lines": integrated.patch.changed_line_count,
                "mode": effective_mode,
            },
        )
        return ExperimentRecord(
            outcome=outcome,
            integrated=integrated,
            classification=classification,
            stdout=observation.stdout,
            stderr=observation.stderr,
        )

    def _integration_failure(self, fault_id: str, message: str) -> ExperimentRecord:
        """Record a fault that could not even be integrated (counts as no failure)."""
        outcome = InjectionOutcome(
            fault_id=fault_id,
            activated=False,
            failure_mode=FailureMode.NO_FAILURE,
            error_message=f"integration failed: {message}",
            details={"integration_failed": True, "target": self.target.name},
        )
        return ExperimentRecord(outcome=outcome)


def verify_target_health(target: TargetSystem | str, iterations: int = 25, seed: int = 0) -> TargetRunResult:
    """Convenience health check used by examples before launching campaigns."""
    target = get_target(target) if isinstance(target, str) else target
    result = target.baseline(iterations=iterations, seed=seed)
    if not result.completed:
        raise ExperimentError(f"target {target.name!r} failed its health check")
    return result
