"""Hash-keyed memoization caches shared by the analysis and execution layers.

Campaigns evaluate N fault scenarios against one target, so the same module
source is parsed, analysed, and rebuilt over and over.  The caches here key
expensive derivations on a SHA-256 of their inputs so each distinct source is
processed once per process.  Cached values are shared objects: callers that
mutate what they receive must opt out of the cache (see
:func:`repro.injection.ast_utils.parse_module`'s ``mutable`` flag).

Caches are bounded LRU maps and thread-safe, because batched subprocess
execution drives them from worker threads.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

T = TypeVar("T")

_REGISTRY: dict[str, "HashKeyedCache"] = {}
_REGISTRY_LOCK = threading.Lock()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly snapshot of the counters (used by benchmark reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class HashKeyedCache:
    """A bounded, thread-safe memoization cache keyed by hashed input material.

    ``misses`` counts actual computations, so a test can assert "this source
    was parsed exactly once" by reading the stats.
    """

    def __init__(self, name: str, max_entries: int = 256) -> None:
        """Create the cache and register it under ``name`` for stats reporting.

        Args:
            name: Process-wide registry key (see :func:`cache_stats`).
            max_entries: LRU bound; the least recently used entry is evicted
                once the cache grows past it.

        Raises:
            ValueError: If ``max_entries`` is not positive.
        """
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.name = name
        self._max_entries = max_entries
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()
        with _REGISTRY_LOCK:
            _REGISTRY[name] = self

    @staticmethod
    def key_for(*parts: str | None) -> str:
        """Stable digest of the input material identifying one cache entry.

        Args:
            *parts: Ordered strings (or ``None``) that together determine the
                cached derivation — typically a source text plus option flags.

        Returns:
            A hex SHA-256 digest; unambiguous because parts are length-framed.
        """
        digest = hashlib.sha256()
        for part in parts:
            digest.update(b"\x00" if part is None else part.encode("utf-8", "replace"))
            digest.update(b"\x1f")
        return digest.hexdigest()

    def get_or_compute(self, key: str, compute: Callable[[], T]) -> T:
        """Return the cached value for ``key``, computing and storing on miss.

        ``compute`` runs outside the lock so a slow parse never blocks
        unrelated lookups; concurrent misses on the same key may compute
        twice, which is wasteful but correct for pure derivations.

        Args:
            key: Entry key, usually built with :meth:`key_for`.
            compute: Zero-argument callable producing the value on a miss.

        Returns:
            The cached (shared!) value; callers that mutate what they receive
            must opt out of caching instead.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
        value = compute()
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return value

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def get_cache(name: str, max_entries: int = 256) -> HashKeyedCache:
    """Return the process-wide cache registered under ``name``, creating it if needed.

    Args:
        name: Registry key shared by all consumers of the cache.
        max_entries: LRU bound applied only when the cache is first created.

    Returns:
        The shared :class:`HashKeyedCache` instance for ``name``.
    """
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(name)
    if existing is not None:
        return existing
    return HashKeyedCache(name, max_entries=max_entries)


def cache_stats() -> dict[str, dict[str, Any]]:
    """Stats snapshot for every registered cache (for benchmarks and reports)."""
    with _REGISTRY_LOCK:
        caches = list(_REGISTRY.values())
    return {cache.name: cache.stats.to_dict() for cache in caches}


def clear_all_caches() -> None:
    """Reset every registered cache (used by tests to isolate hit counting)."""
    with _REGISTRY_LOCK:
        caches = list(_REGISTRY.values())
    for cache in caches:
        cache.clear()
