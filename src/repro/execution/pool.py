"""Persistent sandbox worker pool for fault-injection campaigns.

The per-fault ``subprocess.run`` hot path pays an interpreter start plus a full
``repro`` import for every experiment — two orders of magnitude more than the
workload itself.  :class:`WorkerPool` keeps a small set of forked worker
processes alive across a whole campaign: each worker inherits (or imports) the
library once and then serves many fault executions.

Isolation properties match subprocess mode where it matters:

* every task runs with a hard per-task timeout, enforced *inside* the worker
  with ``SIGALRM`` so pure-Python hangs (infinite loops, deadlocks, sleeps)
  are aborted without killing the worker;
* a parent-side backstop catches workers wedged in ways the alarm cannot
  reach, terminating and transparently rebuilding the pool;
* results are returned in submission order regardless of completion order, so
  campaign reports are deterministic for a given seed.

Tasks and results cross the process boundary as plain dicts; the integration
layer converts them to :class:`~repro.integration.runner.RunObservation`.
"""

from __future__ import annotations

import os
import signal
import threading
from concurrent.futures import CancelledError, ProcessPoolExecutor, TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from ..errors import SandboxError

#: Extra parent-side grace on top of the in-worker alarm before a worker is
#: declared wedged and the pool is rebuilt.
_BACKSTOP_GRACE_SECONDS = 5.0


def worker_cap() -> int:
    """Upper bound on pool sizes derived from the machine's CPU count.

    The cap grows with the core count (2x headroom), but never drops below
    four workers: injected faults are frequently sleep-bound (delays, timeouts
    held under locks), and sleeping workers overlap perfectly even on a single
    core.

    Returns:
        ``max(4, cpu_count * 2)``.
    """
    return max(4, (os.cpu_count() or 1) * 2)


def resolve_workers(requested: int | None, default: int = 4) -> int:
    """Clamp a requested worker count to ``[1, worker_cap()]``.

    Args:
        requested: The caller's worker request, or ``None`` for the default.
        default: Fallback when nothing was requested.

    Returns:
        A worker count that is at least 1 and at most :func:`worker_cap`.
    """
    workers = requested if requested is not None else default
    return max(1, min(int(workers), worker_cap()))


class _TaskTimeout(BaseException):
    """Raised inside a worker when a task exceeds its time budget.

    Derives from :class:`BaseException` so the ``except Exception`` harnesses
    inside :meth:`repro.targets.TargetSystem.execute` (whose whole job is
    catching workload failures) cannot swallow the timeout signal.
    """


def _alarm_handler(_signum, _frame):  # pragma: no cover - runs in worker processes
    raise _TaskTimeout()


def _pool_initializer() -> None:  # pragma: no cover - runs in worker processes
    """Warm the library import once per worker (a no-op under fork)."""
    import repro.targets  # noqa: F401


def _execute_task(task: dict[str, Any]) -> dict[str, Any]:
    """Run one target workload inside a pool worker and report a plain dict.

    Must stay importable at module top level so the executor can pickle it.
    """
    from ..targets import get_target

    timeout = float(task.get("timeout_seconds") or 0.0)
    use_alarm = timeout > 0 and hasattr(signal, "SIGALRM") and threading.current_thread() is threading.main_thread()
    previous_handler = None
    if use_alarm:
        previous_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        target = get_target(task["target"])
        try:
            result = target.execute(
                source=task["source"],
                iterations=int(task["iterations"]),
                seed=int(task["seed"]),
            )
        finally:
            # Disarm immediately so a task finishing just under the deadline is
            # not misreported as a timeout while its payload is being built.
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
        return {"status": "ok", "result": result.to_dict()}
    except _TaskTimeout:
        return {"status": "timeout"}
    except BaseException as exc:  # noqa: BLE001 - workers must never die on a task
        return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)


class WorkerPool:
    """A persistent pool of sandbox worker processes serving fault runs.

    The executor is created lazily and rebuilt automatically if a task wedges
    or kills a worker, so one pathological fault cannot poison a campaign.
    """

    def __init__(self, max_workers: int | None = None, task_timeout_seconds: float = 10.0) -> None:
        """Size the pool; no worker processes are spawned until the first batch.

        Args:
            max_workers: Requested worker count, clamped by
                :func:`resolve_workers`.
            task_timeout_seconds: Default per-task time budget, enforced
                inside each worker with ``SIGALRM``.

        Raises:
            SandboxError: If ``task_timeout_seconds`` is not positive.
        """
        if task_timeout_seconds <= 0:
            raise SandboxError("task_timeout_seconds must be positive")
        self.max_workers = resolve_workers(max_workers)
        self.task_timeout_seconds = float(task_timeout_seconds)
        self._executor: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self.tasks_executed = 0
        self.pool_rebuilds = 0

    # -- lifecycle ----------------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_pool_initializer,
                )
            return self._executor

    def _recycle(self) -> None:
        """Terminate every worker and force the next submission to rebuild."""
        with self._lock:
            executor = self._executor
            self._executor = None
        if executor is None:
            return
        self.pool_rebuilds += 1
        processes = list(getattr(executor, "_processes", {}).values())
        for process in processes:
            process.terminate()
        executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Dispose of the worker processes (idempotent)."""
        with self._lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - GC timing dependent
        self.shutdown()

    # -- execution ----------------------------------------------------------------

    def run_batch(
        self,
        target_name: str,
        module_sources: list[str],
        seed: int = 0,
        iterations: int = 25,
        timeout_seconds: float | None = None,
    ) -> list[dict[str, Any]]:
        """Execute every source against ``target_name``, preserving input order.

        Args:
            target_name: Registry name of the target system to drive.
            module_sources: Module sources, one task each; every payload in
                this list is in flight at once, so callers bound batch sizes
                (see ``ExecutionConfig.batch_size``).
            seed: Workload seed shared by every task.
            iterations: Workload iterations per task.
            timeout_seconds: Per-task override of the pool's default budget.

        Returns:
            One payload dict per source, in submission order:
            ``{"status": "ok", "result": ...}``, ``{"status": "timeout"}``,
            or ``{"status": "error", "error": ...}``.  A task that wedges or
            kills its worker only fails itself; siblings are retried on a
            rebuilt pool.
        """
        timeout = float(timeout_seconds if timeout_seconds is not None else self.task_timeout_seconds)
        tasks = [
            {
                "target": target_name,
                "source": source,
                "seed": seed,
                "iterations": iterations,
                "timeout_seconds": timeout,
            }
            for source in module_sources
        ]
        backstop = timeout + _BACKSTOP_GRACE_SECONDS
        results: list[dict[str, Any] | None] = [None] * len(tasks)
        executor = self._ensure_executor()
        futures = [executor.submit(_execute_task, task) for task in tasks]
        needs_retry: list[int] = []
        for index, future in enumerate(futures):
            try:
                results[index] = future.result(timeout=backstop)
            except FutureTimeoutError:
                results[index] = {"status": "timeout"}
                self._recycle()  # outstanding futures fail over to the retry pass
            except (BrokenProcessPool, CancelledError):
                # A sibling wedged or killed its worker: running futures break,
                # queued ones are cancelled by the recycle.  Both rerun below.
                self._recycle()
                needs_retry.append(index)
            except Exception as exc:  # noqa: BLE001 - submission/pickling failures
                results[index] = {"status": "error", "error": f"{type(exc).__name__}: {exc}"}

        # Retry pass: tasks whose sibling broke the pool rerun one at a time on
        # a fresh executor, so a task that itself kills workers only fails itself.
        for index in needs_retry:
            results[index] = self._run_single(tasks[index], backstop)

        self.tasks_executed += len(tasks)
        return [payload if payload is not None else {"status": "error", "error": "task produced no result"} for payload in results]

    def _run_single(self, task: dict[str, Any], backstop: float) -> dict[str, Any]:
        try:
            future = self._ensure_executor().submit(_execute_task, task)
            return future.result(timeout=backstop)
        except FutureTimeoutError:
            self._recycle()
            return {"status": "timeout"}
        except (BrokenProcessPool, CancelledError):
            self._recycle()
            return {"status": "error", "error": "worker process died while executing the task"}
        except Exception as exc:  # noqa: BLE001
            return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}
