"""Persistent sandbox worker pool for fault-injection campaigns.

The per-fault ``subprocess.run`` hot path pays an interpreter start plus a full
``repro`` import for every experiment — two orders of magnitude more than the
workload itself.  :class:`WorkerPool` keeps a small set of forked worker
processes alive across a whole campaign: each worker inherits (or imports) the
library once and then serves many fault executions.

Isolation properties match subprocess mode where it matters:

* every task runs with a hard per-task timeout, enforced *inside* the worker
  with ``SIGALRM`` so pure-Python hangs (infinite loops, deadlocks, sleeps)
  are aborted without killing the worker;
* a parent-side backstop catches workers wedged in ways the alarm cannot
  reach, terminating and transparently rebuilding the pool;
* results are returned in submission order regardless of completion order, so
  campaign reports are deterministic for a given seed.

On top of that sits a supervision loop (on by default, see
:class:`~repro.config.ResilienceConfig`): worker liveness is checked
proactively before each batch, tasks whose worker died are requeued under a
bounded retry budget, and a poison task that repeatedly kills workers is
quarantined — failed individually — instead of recycling the pool forever.
Supervision is also the layer that absorbs self-chaos
(:mod:`repro.resilience.chaos`): injected worker crashes, stalls, and dropped
results perturb scheduling only, so chaotic campaigns terminate with results
byte-identical to fault-free runs.

Tasks and results cross the process boundary as plain dicts; the integration
layer converts them to :class:`~repro.integration.runner.RunObservation`.
"""

from __future__ import annotations

import os
import signal
import threading
from concurrent.futures import CancelledError, ProcessPoolExecutor, TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from ..config import ResilienceConfig
from ..errors import SandboxError

#: Extra parent-side grace on top of the in-worker alarm before a worker is
#: declared wedged and the pool is rebuilt.
_BACKSTOP_GRACE_SECONDS = 5.0


def worker_cap() -> int:
    """Upper bound on pool sizes derived from the machine's CPU count.

    The cap grows with the core count (2x headroom), but never drops below
    four workers: injected faults are frequently sleep-bound (delays, timeouts
    held under locks), and sleeping workers overlap perfectly even on a single
    core.

    Returns:
        ``max(4, cpu_count * 2)``.
    """
    return max(4, (os.cpu_count() or 1) * 2)


def resolve_workers(requested: int | None, default: int = 4) -> int:
    """Clamp a requested worker count to ``[1, worker_cap()]``.

    Args:
        requested: The caller's worker request, or ``None`` for the default.
        default: Fallback when nothing was requested.

    Returns:
        A worker count that is at least 1 and at most :func:`worker_cap`.
    """
    workers = requested if requested is not None else default
    return max(1, min(int(workers), worker_cap()))


class _TaskTimeout(BaseException):
    """Raised inside a worker when a task exceeds its time budget.

    Derives from :class:`BaseException` so the ``except Exception`` harnesses
    inside :meth:`repro.targets.TargetSystem.execute` (whose whole job is
    catching workload failures) cannot swallow the timeout signal.
    """


def _alarm_handler(_signum, _frame):  # pragma: no cover - runs in worker processes
    raise _TaskTimeout()


def _pool_initializer() -> None:  # pragma: no cover - runs in worker processes
    """Warm the library import once per worker (a no-op under fork)."""
    import repro.targets  # noqa: F401


def _execute_task(task: dict[str, Any]) -> dict[str, Any]:
    """Run one target workload inside a pool worker and report a plain dict.

    Must stay importable at module top level so the executor can pickle it.
    """
    from ..targets import get_target

    chaos_drop = False
    chaos = task.get("chaos")
    if chaos is not None:
        from ..resilience.chaos import DROP, apply_worker_chaos

        # May sleep or SIGKILL this worker; "drop" defers until after the
        # workload ran, so a dropped result is genuinely computed then lost.
        chaos_drop = apply_worker_chaos(chaos, str(task.get("chaos_key", "")), int(task.get("attempt", 0))) == DROP

    timeout = float(task.get("timeout_seconds") or 0.0)
    use_alarm = timeout > 0 and hasattr(signal, "SIGALRM") and threading.current_thread() is threading.main_thread()
    previous_handler = None
    if use_alarm:
        previous_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        target = get_target(task["target"])
        try:
            result = target.execute(
                source=task["source"],
                iterations=int(task["iterations"]),
                seed=int(task["seed"]),
            )
        finally:
            # Disarm immediately so a task finishing just under the deadline is
            # not misreported as a timeout while its payload is being built.
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
        if chaos_drop:
            return {"status": "chaos-dropped"}
        return {"status": "ok", "result": result.to_dict()}
    except _TaskTimeout:
        return {"status": "timeout"}
    except BaseException as exc:  # noqa: BLE001 - workers must never die on a task
        return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)


class WorkerPool:
    """A persistent pool of sandbox worker processes serving fault runs.

    The executor is created lazily and rebuilt automatically if a task wedges
    or kills a worker, so one pathological fault cannot poison a campaign.
    With supervision enabled (the default), victims of a worker death are
    requeued under a bounded retry budget and repeat offenders are
    quarantined; with ``resilience.supervise`` off the pool falls back to the
    original single-retry-pass behaviour.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        task_timeout_seconds: float = 10.0,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        """Size the pool; no worker processes are spawned until the first batch.

        Args:
            max_workers: Requested worker count, clamped by
                :func:`resolve_workers`.
            task_timeout_seconds: Default per-task time budget, enforced
                inside each worker with ``SIGALRM``.
            resilience: Supervision / chaos behaviour; defaults to
                :class:`~repro.config.ResilienceConfig` (supervision on,
                chaos off).

        Raises:
            SandboxError: If ``task_timeout_seconds`` is not positive.
        """
        if task_timeout_seconds <= 0:
            raise SandboxError("task_timeout_seconds must be positive")
        self.max_workers = resolve_workers(max_workers)
        self.task_timeout_seconds = float(task_timeout_seconds)
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self._executor: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self.tasks_executed = 0
        self.pool_rebuilds = 0
        self.retries = 0
        self.quarantined = 0

    # -- lifecycle ----------------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_pool_initializer,
                )
            return self._executor

    def _recycle(self) -> None:
        """Terminate every worker and force the next submission to rebuild."""
        with self._lock:
            executor = self._executor
            self._executor = None
        if executor is None:
            return
        self.pool_rebuilds += 1
        processes = list(getattr(executor, "_processes", {}).values())
        for process in processes:
            process.terminate()
        executor.shutdown(wait=False, cancel_futures=True)

    def check_liveness(self) -> bool:
        """Proactively verify the pool's workers are alive.

        Called at the start of every supervised batch so a worker that died
        between batches (OOM kill, external signal) is noticed *before* work
        is submitted into a broken executor, not after the first
        :class:`BrokenProcessPool` surfaces.

        Returns:
            ``True`` when the pool is healthy (or not yet started); ``False``
            when dead workers were found and the pool was recycled.
        """
        with self._lock:
            executor = self._executor
        if executor is None:
            return True
        processes = list(getattr(executor, "_processes", {}).values())
        if processes and not all(process.is_alive() for process in processes):
            self._recycle()
            return False
        return True

    def stats(self) -> dict[str, int]:
        """Supervision counters for ``/v1/stats``."""
        return {
            "tasks_executed": self.tasks_executed,
            "pool_rebuilds": self.pool_rebuilds,
            "retries": self.retries,
            "quarantined": self.quarantined,
        }

    def shutdown(self) -> None:
        """Dispose of the worker processes (idempotent)."""
        with self._lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - GC timing dependent
        self.shutdown()

    # -- execution ----------------------------------------------------------------

    def run_batch(
        self,
        target_name: str,
        module_sources: list[str],
        seed: int = 0,
        iterations: int = 25,
        timeout_seconds: float | None = None,
    ) -> list[dict[str, Any]]:
        """Execute every source against ``target_name``, preserving input order.

        Args:
            target_name: Registry name of the target system to drive.
            module_sources: Module sources, one task each; every payload in
                this list is in flight at once, so callers bound batch sizes
                (see ``ExecutionConfig.batch_size``).
            seed: Workload seed shared by every task.
            iterations: Workload iterations per task.
            timeout_seconds: Per-task override of the pool's default budget.

        Returns:
            One payload dict per source, in submission order:
            ``{"status": "ok", "result": ...}``, ``{"status": "timeout"}``,
            or ``{"status": "error", "error": ...}``.  A task that wedges or
            kills its worker only fails itself; siblings are requeued on a
            rebuilt pool.
        """
        timeout = float(timeout_seconds if timeout_seconds is not None else self.task_timeout_seconds)
        supervised = self.resilience.supervise
        # Chaos needs the supervision loop to requeue its victims, so it is
        # inert on the legacy path.
        chaos = None
        if supervised and self.resilience.chaos.any_faults():
            from ..resilience.chaos import chaos_payload

            chaos = chaos_payload(self.resilience.chaos)
        tasks = [
            {
                "target": target_name,
                "source": source,
                "seed": seed,
                "iterations": iterations,
                "timeout_seconds": timeout,
                "chaos": chaos,
                "chaos_key": f"{target_name}:{seed}:{index}",
                "attempt": 0,
            }
            for index, source in enumerate(module_sources)
        ]
        backstop = timeout + _BACKSTOP_GRACE_SECONDS
        if supervised:
            results = self._run_batch_supervised(tasks, backstop)
        else:
            results = self._run_batch_legacy(tasks, backstop)
        self.tasks_executed += len(tasks)
        return results

    # -- supervised path ----------------------------------------------------------

    def _run_batch_supervised(self, tasks: list[dict[str, Any]], backstop: float) -> list[dict[str, Any]]:
        """Round-based supervision: requeue on death, quarantine repeat killers.

        Round 0 submits every task in parallel.  Tasks whose worker died (or
        whose result was chaos-dropped) are requeued; suspected pool killers
        rerun **one at a time** on a fresh executor so a subsequent death is
        unambiguously attributable to them.  A task attributed
        ``quarantine_threshold`` worker deaths is quarantined — failed
        individually — and a task requeued more than ``task_retry_budget``
        times is failed as retry-exhausted, so the loop always terminates.
        """
        results: list[dict[str, Any] | None] = [None] * len(tasks)
        deaths = [0] * len(tasks)  # worker deaths *attributed* (solo runs only)
        attempts = [0] * len(tasks)
        suspect = [False] * len(tasks)
        pending = list(range(len(tasks)))

        self.check_liveness()
        while pending:
            requeued: list[int] = []
            solo = [index for index in pending if suspect[index]]
            grouped = [index for index in pending if not suspect[index]]

            if grouped:
                executor = self._ensure_executor()
                futures = [
                    (index, executor.submit(_execute_task, {**tasks[index], "attempt": attempts[index]}))
                    for index in grouped
                ]
                for index, future in futures:
                    payload = self._collect(future, backstop)
                    if payload["status"] == "worker-died":
                        # Cannot tell killer from victim in a parallel round;
                        # everyone requeues as a suspect and reruns solo.
                        suspect[index] = True
                        self._requeue(index, tasks, attempts, deaths, results, requeued, attributed_death=False)
                    elif payload["status"] == "chaos-dropped":
                        self._requeue(index, tasks, attempts, deaths, results, requeued, attributed_death=False)
                    else:
                        results[index] = payload

            for index in solo:
                payload = self._collect_solo(tasks[index], attempts[index], backstop)
                if payload["status"] == "worker-died":
                    # Solo run: this task alone held the executor, so the
                    # death is attributable to it.
                    self._requeue(index, tasks, attempts, deaths, results, requeued, attributed_death=True)
                elif payload["status"] == "chaos-dropped":
                    self._requeue(index, tasks, attempts, deaths, results, requeued, attributed_death=False)
                else:
                    results[index] = payload
                    suspect[index] = False

            pending = requeued

        return [
            payload if payload is not None else {"status": "error", "error": "task produced no result"}
            for payload in results
        ]

    def _requeue(
        self,
        index: int,
        tasks: list[dict[str, Any]],
        attempts: list[int],
        deaths: list[int],
        results: list[dict[str, Any] | None],
        requeued: list[int],
        attributed_death: bool,
    ) -> None:
        """Requeue a task whose result vanished, or fail it at its bounds."""
        config = self.resilience
        if attributed_death:
            deaths[index] += 1
            if deaths[index] >= config.quarantine_threshold:
                self.quarantined += 1
                results[index] = {
                    "status": "error",
                    "error": (
                        f"task quarantined after killing {deaths[index]} pool workers "
                        f"(threshold {config.quarantine_threshold})"
                    ),
                    "quarantined": True,
                }
                return
        attempts[index] += 1
        if attempts[index] > config.task_retry_budget:
            results[index] = {
                "status": "error",
                "error": f"worker died and the task's retry budget ({config.task_retry_budget}) is exhausted",
            }
            return
        self.retries += 1
        requeued.append(index)

    def _collect(self, future, backstop: float) -> dict[str, Any]:
        """Resolve one parallel-round future into a status payload."""
        try:
            return future.result(timeout=backstop)
        except FutureTimeoutError:
            self._recycle()  # outstanding futures fail over to requeue rounds
            return {"status": "timeout"}
        except (BrokenProcessPool, CancelledError):
            self._recycle()
            return {"status": "worker-died"}
        except Exception as exc:  # noqa: BLE001 - submission/pickling failures
            return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}

    def _collect_solo(self, task: dict[str, Any], attempt: int, backstop: float) -> dict[str, Any]:
        """Run one suspected pool killer alone on a (possibly fresh) executor."""
        try:
            future = self._ensure_executor().submit(_execute_task, {**task, "attempt": attempt})
        except Exception as exc:  # noqa: BLE001 - executor died between rounds
            self._recycle()
            return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}
        return self._collect(future, backstop)

    # -- legacy single-retry-pass path (resilience.supervise = False) --------------

    def _run_batch_legacy(self, tasks: list[dict[str, Any]], backstop: float) -> list[dict[str, Any]]:
        results: list[dict[str, Any] | None] = [None] * len(tasks)
        executor = self._ensure_executor()
        futures = [executor.submit(_execute_task, task) for task in tasks]
        needs_retry: list[int] = []
        for index, future in enumerate(futures):
            try:
                results[index] = future.result(timeout=backstop)
            except FutureTimeoutError:
                results[index] = {"status": "timeout"}
                self._recycle()  # outstanding futures fail over to the retry pass
            except (BrokenProcessPool, CancelledError):
                # A sibling wedged or killed its worker: running futures break,
                # queued ones are cancelled by the recycle.  Both rerun below.
                self._recycle()
                needs_retry.append(index)
            except Exception as exc:  # noqa: BLE001 - submission/pickling failures
                results[index] = {"status": "error", "error": f"{type(exc).__name__}: {exc}"}

        # Retry pass: tasks whose sibling broke the pool rerun one at a time on
        # a fresh executor, so a task that itself kills workers only fails itself.
        for index in needs_retry:
            results[index] = self._run_single(tasks[index], backstop)

        return [payload if payload is not None else {"status": "error", "error": "task produced no result"} for payload in results]

    def _run_single(self, task: dict[str, Any], backstop: float) -> dict[str, Any]:
        try:
            future = self._ensure_executor().submit(_execute_task, task)
            return future.result(timeout=backstop)
        except FutureTimeoutError:
            self._recycle()
            return {"status": "timeout"}
        except (BrokenProcessPool, CancelledError):
            # A second broken pool must fail this task alone, never raise out
            # of the batch: recycle so the *next* retry gets a fresh executor.
            self._recycle()
            return {"status": "error", "error": "worker process died while executing the task"}
        except Exception as exc:  # noqa: BLE001
            return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}
