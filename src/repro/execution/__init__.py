"""Campaign execution engine: persistent worker pools and analysis caches.

Components:

* :class:`WorkerPool` — persistent sandbox worker processes with per-task
  timeouts and deterministic, submission-ordered results;
* :class:`HashKeyedCache` / :func:`cache_stats` — hash-keyed memoization used
  by AST parsing, code analysis, and target source construction;
* :func:`resolve_workers` / :func:`worker_cap` — CPU-derived pool sizing.
"""

from .cache import CacheStats, HashKeyedCache, cache_stats, clear_all_caches, get_cache
from .pool import WorkerPool, resolve_workers, worker_cap

__all__ = [
    "CacheStats",
    "HashKeyedCache",
    "WorkerPool",
    "cache_stats",
    "clear_all_caches",
    "get_cache",
    "resolve_workers",
    "worker_cap",
]
