"""Result records of end-to-end pipeline runs (the Fig. 1 workflow trace)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..types import FaultSpec, GeneratedFault, InjectionOutcome

#: Canonical names of the Fig. 1 workflow stages, in order.
WORKFLOW_STAGES: tuple[str, ...] = (
    "fault_definition",
    "nlp_processing",
    "code_generation",
    "rlhf_refinement",
    "integration",
    "testing",
)


@dataclass
class StageResult:
    """One executed workflow stage: its duration and a compact summary."""

    stage: str
    seconds: float
    summary: dict[str, Any] = field(default_factory=dict)
    succeeded: bool = True

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "seconds": round(self.seconds, 6),
            "summary": dict(self.summary),
            "succeeded": self.succeeded,
        }


@dataclass
class WorkflowTrace:
    """Everything produced by one end-to-end run of the Fig. 1 workflow."""

    description: str
    target: str | None = None
    stages: list[StageResult] = field(default_factory=list)
    spec: FaultSpec | None = None
    fault: GeneratedFault | None = None
    outcome: InjectionOutcome | None = None
    feedback_rounds: int = 0

    def add_stage(self, stage: str, seconds: float, summary: dict[str, Any] | None = None, succeeded: bool = True) -> None:
        self.stages.append(StageResult(stage=stage, seconds=seconds, summary=dict(summary or {}), succeeded=succeeded))

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    @property
    def completed_stages(self) -> list[str]:
        return [stage.stage for stage in self.stages if stage.succeeded]

    @property
    def succeeded(self) -> bool:
        """Whether every executed stage succeeded and a fault was produced."""
        return bool(self.stages) and all(stage.succeeded for stage in self.stages) and self.fault is not None

    def stage_seconds(self) -> dict[str, float]:
        aggregated: dict[str, float] = {}
        for stage in self.stages:
            aggregated[stage.stage] = aggregated.get(stage.stage, 0.0) + stage.seconds
        return aggregated

    def to_dict(self) -> dict[str, Any]:
        return {
            "description": self.description,
            "target": self.target,
            "stages": [stage.to_dict() for stage in self.stages],
            "spec": self.spec.to_dict() if self.spec else None,
            "fault": self.fault.to_dict() if self.fault else None,
            "outcome": self.outcome.to_dict() if self.outcome else None,
            "feedback_rounds": self.feedback_rounds,
            "total_seconds": round(self.total_seconds, 6),
            "succeeded": self.succeeded,
        }
