"""The end-to-end neural fault injection pipeline (Fig. 1 of the paper).

:class:`NeuralFaultInjector` is the library's main entry point.  It wires the
NLP engine, the generation model, the RLHF mechanism, and the automated
integration and testing tool into the workflow the paper describes:

1. *fault definition* — the tester supplies natural language plus target code;
2. *data processing* — the NLP engine builds a structured fault specification;
3. *code generation* — the model produces a faulty code snippet;
4. *RLHF* — tester feedback refines the snippet over one or more iterations;
5. *automated integration* — the snippet is spliced into the codebase;
6. *testing* — the workload runs and the failure mode is observed.
"""

from __future__ import annotations

import time
from typing import Callable

from ..config import PipelineConfig
from ..dataset import DatasetGenerator, FaultDataset
from ..errors import ReproError
from ..integration import ExperimentRecord, ExperimentRunner
from ..llm import FaultGenerator, GenerationCandidate, SFTReport, SFTTrainer
from ..nlp import CodeAnalyzer, FaultSpecExtractor, GenerationPrompt, PromptBuilder
from ..rlhf import FeedbackParser, RLHFReport, RLHFTrainer, SimulatedTester, spec_with_feedback, tester_pool
from ..rng import SeededRNG
from ..targets import TargetSystem, all_targets, get_target
from ..types import CodeContext, FaultDescription, FaultSpec, GeneratedFault
from .results import WorkflowTrace

FeedbackProvider = Callable[[FaultSpec, GenerationCandidate], str | None]


class NeuralFaultInjector:
    """End-to-end pipeline from natural-language fault descriptions to test outcomes."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()
        self._rng = SeededRNG(self.config.seed, namespace="pipeline")
        self.extractor = FaultSpecExtractor()
        self.analyzer = CodeAnalyzer()
        self.prompts = PromptBuilder()
        self.generator = FaultGenerator(self.config.model, rng=self._rng.fork("generator"))
        self.feedback_parser = FeedbackParser()
        self.dataset_generator = DatasetGenerator(
            self.config.dataset, execution=self.config.execution
        )
        self.sft_trainer = SFTTrainer(self.generator, self.config.sft)
        self.dataset: FaultDataset | None = None
        self.sft_report: SFTReport | None = None
        self.rlhf_report: RLHFReport | None = None
        self._experiment_runners: dict[str, ExperimentRunner] = {}

    def close(self) -> None:
        """Release sandbox resources: worker pools, scratch dirs (idempotent).

        Covers the dataset generator's validation runner and every cached
        per-target experiment runner.  Long-lived processes that build many
        injectors should close each one (or use it as a context manager);
        one-shot scripts can rely on process exit.
        """
        self.dataset_generator.close()
        runners, self._experiment_runners = self._experiment_runners, {}
        for runner in runners.values():
            runner.close()

    def __enter__(self) -> "NeuralFaultInjector":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- preparation (dataset generation + fine-tuning) ----------------------------

    def prepare(
        self,
        targets: list[TargetSystem] | None = None,
        run_sft: bool = True,
    ) -> FaultDataset:
        """Generate the SFI dataset and (optionally) fine-tune the generator."""
        targets = targets if targets is not None else all_targets()
        self.dataset = self.dataset_generator.generate(targets)
        if run_sft and len(self.dataset) > 0:
            examples = self.dataset_generator.to_sft_examples(self.dataset)
            self.sft_report = self.sft_trainer.train(examples)
        return self.dataset

    def run_rlhf(
        self,
        prompts: list[GenerationPrompt],
        testers: list[SimulatedTester] | None = None,
        target: TargetSystem | str | None = None,
        mode: str | None = None,
    ) -> RLHFReport:
        """Run the RLHF loop over a set of prompts with (simulated) testers.

        Args:
            prompts: Generation prompts to refine the policy on.
            testers: Simulated testers; defaults to the standard pool.
            target: When given, every round of candidates is integrated and
                executed against this target as one sandbox batch (scheduled
                per ``config.execution``) and the execution evidence flows
                into the testers' ratings.
            mode: Execution mode for those batches; defaults to
                ``config.execution.default_mode``, except that an
                ``inprocess`` default is promoted to ``subprocess`` — the
                candidates are untrusted generated faults (a delay fault can
                sleep for minutes) and in-process execution has no timeout.
                Pass ``mode="inprocess"`` explicitly to accept that risk.

        Returns:
            The :class:`RLHFReport` history (also stored on ``rlhf_report``).
        """
        runner = self._runner_for(target) if target is not None else None
        if mode is None:
            mode = self.config.execution.default_mode
            if mode == "inprocess":
                mode = "subprocess"
        trainer = RLHFTrainer(
            self.generator,
            testers or tester_pool(seed=self.config.rlhf.seed),
            config=self.config.rlhf,
            runner=runner,
            execution_mode=mode,
        )
        self.rlhf_report = trainer.run(prompts)
        return self.rlhf_report

    # -- individual workflow stages -------------------------------------------------

    def define_fault(
        self, text: str, code: str | None = None, path: str | None = None
    ) -> tuple[FaultSpec, CodeContext | None]:
        """Stages 1–2: fault definition and NLP processing."""
        description = FaultDescription(text=text, code=code, source_path=path)
        context = None
        if code and self.config.use_code_context:
            context = self.analyzer.analyze(code, path=path)
        spec = self.extractor.extract(description, context=context)
        if context is not None:
            self.analyzer.select_function(context, text, hint=spec.target.function)
        return spec, context

    def build_prompt(
        self,
        spec: FaultSpec,
        context: CodeContext | None,
        feedback_directives: dict | None = None,
    ) -> GenerationPrompt:
        """Package a spec and code context for the generation model."""
        return self.prompts.build(spec, context, feedback_directives)

    def generate_fault(
        self, prompt: GenerationPrompt, greedy: bool = True, iteration: int = 0
    ) -> GenerationCandidate:
        """Stage 3: code generation."""
        return self.generator.generate(prompt, greedy=greedy, iteration=iteration)

    def generate_faults(
        self, prompts: list[GenerationPrompt], greedy: bool = True, iteration: int = 0
    ) -> list[GenerationCandidate]:
        """Stage 3, batched: one fault per prompt via one batched forward pass.

        Campaign-scale code generation should come through here rather than a
        ``generate_fault`` loop — prompt encodings and rendered snippets are
        cached across repeats and the policy runs one matmul per head for the
        whole prompt set.
        """
        return self.generator.generate_batch(prompts, greedy=greedy, iteration=iteration)

    def refine(
        self,
        spec: FaultSpec,
        context: CodeContext | None,
        critique: str,
        iteration: int,
    ) -> tuple[FaultSpec, GenerationCandidate]:
        """Stage 4: fold one round of tester feedback into a new generation."""
        directives = self.feedback_parser.directives_from_text(critique)
        refined_spec = spec_with_feedback(spec, directives)
        prompt = self.build_prompt(refined_spec, context, feedback_directives=directives)
        candidate = self.generate_fault(prompt, greedy=True, iteration=iteration)
        return refined_spec, candidate

    def integrate_and_test(
        self, fault: GeneratedFault, target: TargetSystem | str, mode: str = "subprocess"
    ) -> ExperimentRecord:
        """Stages 5–6: automated integration and testing."""
        runner = self._runner_for(target)
        return runner.run_generated(fault, mode=mode)

    # -- convenience entry points -----------------------------------------------------

    def inject(self, text: str, code: str | None = None, greedy: bool = True) -> GeneratedFault:
        """One-shot generation: description (+ code) → faulty code snippet."""
        spec, context = self.define_fault(text, code=code)
        prompt = self.build_prompt(spec, context)
        return self.generate_fault(prompt, greedy=greedy).fault

    def inject_many(
        self, texts: list[str], code: str | None = None, greedy: bool = True
    ) -> list[GeneratedFault]:
        """Batched :meth:`inject`: NLP per description, then one model batch.

        The NLP stage runs per description (it is pure Python and cached at
        the analyzer level), and the model stage — encoding, forward pass,
        decoding — executes as a single batch.
        """
        prompts = []
        for text in texts:
            spec, context = self.define_fault(text, code=code)
            prompts.append(self.build_prompt(spec, context))
        return [candidate.fault for candidate in self.generate_faults(prompts, greedy=greedy)]

    def run_workflow(
        self,
        text: str,
        target: TargetSystem | str | None = None,
        code: str | None = None,
        feedback: FeedbackProvider | SimulatedTester | None = None,
        mode: str = "subprocess",
    ) -> WorkflowTrace:
        """Execute the full Fig. 1 workflow for one fault description.

        ``feedback`` may be a callable returning a critique (or ``None`` to
        accept) or a :class:`SimulatedTester`; at most
        ``config.max_refinement_iterations`` refinement rounds are run.
        """
        target_system = get_target(target) if isinstance(target, str) else target
        if code is None and target_system is not None:
            code = target_system.build_source()
        trace = WorkflowTrace(description=text, target=target_system.name if target_system else None)

        started = time.perf_counter()
        description = FaultDescription(text=text, code=code)
        trace.add_stage("fault_definition", time.perf_counter() - started, {"has_code": code is not None})

        started = time.perf_counter()
        try:
            spec, context = self.define_fault(text, code=code)
        except ReproError as exc:
            trace.add_stage("nlp_processing", time.perf_counter() - started, {"error": str(exc)}, succeeded=False)
            return trace
        trace.spec = spec
        trace.add_stage(
            "nlp_processing",
            time.perf_counter() - started,
            {
                "fault_type": spec.fault_type.value,
                "target_function": spec.target.function,
                "confidence": spec.confidence,
                "entities": len(spec.entities),
            },
        )

        started = time.perf_counter()
        prompt = self.build_prompt(spec, context)
        candidate = self.generate_fault(prompt)
        trace.add_stage(
            "code_generation",
            time.perf_counter() - started,
            {"template": candidate.decisions.template, "logprob": round(candidate.logprob, 3)},
        )

        started = time.perf_counter()
        rounds = 0
        current_spec = spec
        while rounds < self.config.max_refinement_iterations:
            critique = self._critique(feedback, current_spec, candidate)
            if not critique:
                break
            rounds += 1
            current_spec, candidate = self.refine(current_spec, context, critique, iteration=rounds)
        trace.feedback_rounds = rounds
        trace.fault = candidate.fault
        trace.add_stage("rlhf_refinement", time.perf_counter() - started, {"rounds": rounds})

        if target_system is None:
            return trace

        started = time.perf_counter()
        record = self.integrate_and_test(candidate.fault, target_system, mode=mode)
        integration_failed = bool(record.outcome.details.get("integration_failed"))
        trace.add_stage(
            "integration",
            time.perf_counter() - started,
            {"changed_lines": record.outcome.details.get("changed_lines", 0)},
            succeeded=not integration_failed,
        )
        trace.add_stage(
            "testing",
            record.outcome.duration_seconds,
            {
                "failure_mode": record.outcome.failure_mode.value,
                "activated": record.outcome.activated,
            },
            succeeded=not integration_failed,
        )
        trace.outcome = record.outcome
        return trace

    # -- internals ----------------------------------------------------------------------

    def _runner_for(self, target: TargetSystem | str) -> ExperimentRunner:
        target_system = get_target(target) if isinstance(target, str) else target
        if target_system.name not in self._experiment_runners:
            self._experiment_runners[target_system.name] = ExperimentRunner(
                target_system,
                config=self.config.integration,
                seed=self.config.seed,
                execution=self.config.execution,
            )
        return self._experiment_runners[target_system.name]

    @staticmethod
    def _critique(
        feedback: FeedbackProvider | SimulatedTester | None,
        spec: FaultSpec,
        candidate: GenerationCandidate,
    ) -> str | None:
        if feedback is None:
            return None
        if isinstance(feedback, SimulatedTester):
            review = feedback.review(spec, candidate)
            return None if review.accept else review.critique
        return feedback(spec, candidate)
