"""The end-to-end neural fault injection pipeline (Fig. 1 of the paper).

:class:`NeuralFaultInjector` is the library's original, blocking entry point.
As of the service-layer redesign it is a **thin adapter** over
:class:`~repro.api.FaultInjectionEngine`: the engine owns the shared component
stack (NLP extractor and its caches, generation model, dataset generator,
sandbox runners), and every method here simply delegates.  The class is kept —
fully tested — for backwards compatibility and for scripts that want the
imperative stage-by-stage workflow:

1. *fault definition* — the tester supplies natural language plus target code;
2. *data processing* — the NLP engine builds a structured fault specification;
3. *code generation* — the model produces a faulty code snippet;
4. *RLHF* — tester feedback refines the snippet over one or more iterations;
5. *automated integration* — the snippet is spliced into the codebase;
6. *testing* — the workload runs and the failure mode is observed.

Deprecated for serving: concurrent clients should use the engine's typed
request API (``submit``/``run``/``run_many``/``stream``), which batches
concurrent work through the continuous-batching scheduler — see docs/API.md
for the migration guide.  Both façades can be mixed freely on one engine::

    engine = FaultInjectionEngine(config)
    legacy = NeuralFaultInjector(engine=engine)   # same stack, old surface
"""

from __future__ import annotations

from ..api.engine import FaultInjectionEngine, FeedbackProvider
from ..config import PipelineConfig
from ..dataset import DatasetGenerator, FaultDataset
from ..integration import ExperimentRecord, ExperimentRunner
from ..llm import FaultGenerator, GenerationCandidate, SFTReport, SFTTrainer
from ..nlp import CodeAnalyzer, FaultSpecExtractor, GenerationPrompt, PromptBuilder
from ..rlhf import FeedbackParser, RLHFReport, SimulatedTester
from ..targets import TargetSystem
from ..types import CodeContext, FaultSpec, GeneratedFault
from .results import WorkflowTrace

__all__ = ["FeedbackProvider", "NeuralFaultInjector"]


class NeuralFaultInjector:
    """End-to-end pipeline from natural-language fault descriptions to test outcomes.

    A deprecated-but-supported façade over :class:`FaultInjectionEngine`;
    every call operates on the engine's shared stack.  Prefer the engine's
    typed request API for new code (docs/API.md).
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        engine: FaultInjectionEngine | None = None,
    ) -> None:
        """Wrap an engine (building one from ``config`` when not supplied)."""
        self.engine = engine if engine is not None else FaultInjectionEngine(config)
        self.config = self.engine.config

    # -- shared component stack (owned by the engine) ------------------------------

    @property
    def extractor(self) -> FaultSpecExtractor:
        """The engine's shared NLP spec extractor."""
        return self.engine.extractor

    @property
    def analyzer(self) -> CodeAnalyzer:
        """The engine's shared code analyzer."""
        return self.engine.analyzer

    @property
    def prompts(self) -> PromptBuilder:
        """The engine's shared prompt builder."""
        return self.engine.prompts

    @property
    def generator(self) -> FaultGenerator:
        """The engine's shared generation model."""
        return self.engine.generator

    @property
    def feedback_parser(self) -> FeedbackParser:
        """The engine's shared feedback parser."""
        return self.engine.feedback_parser

    @property
    def dataset_generator(self) -> DatasetGenerator:
        """The engine's shared dataset generator."""
        return self.engine.dataset_generator

    @property
    def sft_trainer(self) -> SFTTrainer:
        """The engine's shared SFT trainer."""
        return self.engine.sft_trainer

    @property
    def dataset(self) -> FaultDataset | None:
        """The last dataset generated through :meth:`prepare`."""
        return self.engine.dataset

    @dataset.setter
    def dataset(self, value: FaultDataset | None) -> None:
        self.engine.dataset = value

    @property
    def sft_report(self) -> SFTReport | None:
        """The last supervised fine-tuning report."""
        return self.engine.sft_report

    @sft_report.setter
    def sft_report(self, value: SFTReport | None) -> None:
        self.engine.sft_report = value

    @property
    def rlhf_report(self) -> RLHFReport | None:
        """The last RLHF run's history."""
        return self.engine.rlhf_report

    @rlhf_report.setter
    def rlhf_report(self, value: RLHFReport | None) -> None:
        self.engine.rlhf_report = value

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Release sandbox resources: worker pools, scratch dirs (idempotent).

        Closes the underlying engine (including the request scheduler).
        Long-lived processes that build many injectors should close each one
        (or use it as a context manager); one-shot scripts can rely on
        process exit.
        """
        self.engine.close()

    def __enter__(self) -> "NeuralFaultInjector":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- preparation (dataset generation + fine-tuning) ----------------------------

    def prepare(
        self,
        targets: list[TargetSystem] | None = None,
        run_sft: bool = True,
    ) -> FaultDataset:
        """Generate the SFI dataset and (optionally) fine-tune the generator."""
        return self.engine.prepare(targets=targets, run_sft=run_sft)

    def run_rlhf(
        self,
        prompts: list[GenerationPrompt],
        testers: list[SimulatedTester] | None = None,
        target: TargetSystem | str | None = None,
        mode: str | None = None,
    ) -> RLHFReport:
        """Run the RLHF loop over a set of prompts with (simulated) testers.

        Args:
            prompts: Generation prompts to refine the policy on.
            testers: Simulated testers; defaults to the standard pool.
            target: When given, every round of candidates is integrated and
                executed against this target as one sandbox batch (scheduled
                per ``config.execution``) and the execution evidence flows
                into the testers' ratings.
            mode: Execution mode for those batches; defaults to
                ``config.execution.default_mode``, except that an
                ``inprocess`` default is promoted to ``subprocess`` — the
                candidates are untrusted generated faults (a delay fault can
                sleep for minutes) and in-process execution has no timeout.
                Pass ``mode="inprocess"`` explicitly to accept that risk.

        Returns:
            The :class:`RLHFReport` history (also stored on ``rlhf_report``).
        """
        return self.engine.run_rlhf(prompts, testers=testers, target=target, mode=mode)

    # -- individual workflow stages -------------------------------------------------

    def define_fault(
        self, text: str, code: str | None = None, path: str | None = None
    ) -> tuple[FaultSpec, CodeContext | None]:
        """Stages 1–2: fault definition and NLP processing."""
        return self.engine.define_fault(text, code=code, path=path)

    def build_prompt(
        self,
        spec: FaultSpec,
        context: CodeContext | None,
        feedback_directives: dict | None = None,
    ) -> GenerationPrompt:
        """Package a spec and code context for the generation model."""
        return self.engine.build_prompt(spec, context, feedback_directives)

    def generate_fault(
        self, prompt: GenerationPrompt, greedy: bool = True, iteration: int = 0
    ) -> GenerationCandidate:
        """Stage 3: code generation."""
        return self.engine.generate_fault(prompt, greedy=greedy, iteration=iteration)

    def generate_faults(
        self, prompts: list[GenerationPrompt], greedy: bool = True, iteration: int = 0
    ) -> list[GenerationCandidate]:
        """Stage 3, batched: one fault per prompt via one batched forward pass.

        Campaign-scale code generation should come through here rather than a
        ``generate_fault`` loop — prompt encodings and rendered snippets are
        cached across repeats and the policy runs one matmul per head for the
        whole prompt set.
        """
        return self.engine.generate_faults(prompts, greedy=greedy, iteration=iteration)

    def refine(
        self,
        spec: FaultSpec,
        context: CodeContext | None,
        critique: str,
        iteration: int,
    ) -> tuple[FaultSpec, GenerationCandidate]:
        """Stage 4: fold one round of tester feedback into a new generation."""
        return self.engine.refine(spec, context, critique, iteration)

    def integrate_and_test(
        self, fault: GeneratedFault, target: TargetSystem | str, mode: str = "subprocess"
    ) -> ExperimentRecord:
        """Stages 5–6: automated integration and testing."""
        return self.engine.integrate_and_test(fault, target, mode=mode)

    # -- convenience entry points -----------------------------------------------------

    def inject(self, text: str, code: str | None = None, greedy: bool = True) -> GeneratedFault:
        """One-shot generation: description (+ code) → faulty code snippet."""
        return self.engine.inject(text, code=code, greedy=greedy)

    def inject_many(
        self, texts: list[str], code: str | None = None, greedy: bool = True
    ) -> list[GeneratedFault]:
        """Batched :meth:`inject`: NLP per description, then one model batch.

        The NLP stage runs per description (cache-assisted at the extractor
        and analyzer level), and the model stage — encoding, forward pass,
        decoding — executes as a single batch.
        """
        return self.engine.inject_many(texts, code=code, greedy=greedy)

    def run_workflow(
        self,
        text: str,
        target: TargetSystem | str | None = None,
        code: str | None = None,
        feedback: FeedbackProvider | SimulatedTester | None = None,
        mode: str = "subprocess",
    ) -> WorkflowTrace:
        """Execute the full Fig. 1 workflow for one fault description.

        ``feedback`` may be a callable returning a critique (or ``None`` to
        accept) or a :class:`SimulatedTester`; at most
        ``config.max_refinement_iterations`` refinement rounds are run.
        """
        return self.engine.run_workflow(text, target=target, code=code, feedback=feedback, mode=mode)

    # -- internals ----------------------------------------------------------------------

    def _runner_for(self, target: TargetSystem | str) -> ExperimentRunner:
        return self.engine._runner_for(target)
