"""Interactive refinement sessions (the running example of Section III-A).

A :class:`RefinementSession` tracks the conversation between a tester and the
generator about *one* fault scenario: the initial proposal, each round of
feedback, and the resulting refined candidates.  The paper's running example
is exactly a two-step session: an unhandled database-timeout fault, followed by
the critique "introduce a retry mechanism instead of just logging the error".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FeedbackError
from ..llm import GenerationCandidate
from ..rlhf import FeedbackParser, SimulatedTester, spec_with_feedback
from ..types import CodeContext, FaultSpec, Feedback
from .pipeline import NeuralFaultInjector


@dataclass
class SessionTurn:
    """One proposal/feedback exchange within a session."""

    iteration: int
    candidate: GenerationCandidate
    feedback: Feedback | None = None

    @property
    def accepted(self) -> bool:
        return self.feedback is not None and self.feedback.accept


@dataclass
class RefinementSession:
    """Stateful iterative refinement of a single fault scenario."""

    pipeline: NeuralFaultInjector
    description: str
    code: str | None = None
    turns: list[SessionTurn] = field(default_factory=list)
    spec: FaultSpec | None = None
    context: CodeContext | None = None
    _parser: FeedbackParser = field(default_factory=FeedbackParser)

    # -- lifecycle ---------------------------------------------------------------

    def propose(self) -> GenerationCandidate:
        """Produce the initial candidate for the session's description."""
        if self.turns:
            return self.turns[-1].candidate
        self.spec, self.context = self.pipeline.define_fault(self.description, code=self.code)
        prompt = self.pipeline.build_prompt(self.spec, self.context)
        candidate = self.pipeline.generate_fault(prompt, greedy=True, iteration=0)
        self.turns.append(SessionTurn(iteration=0, candidate=candidate))
        return candidate

    def give_feedback(self, critique: str, rating: float | None = None, accept: bool = False) -> GenerationCandidate:
        """Record tester feedback and produce the next refined candidate."""
        if not self.turns:
            raise FeedbackError("no candidate has been proposed yet; call propose() first")
        current = self.turns[-1]
        feedback = self._parser.parse(
            current.candidate.fault.fault_id, critique, rating=rating, accept=accept
        )
        current.feedback = feedback
        if accept:
            return current.candidate
        assert self.spec is not None
        self.spec = spec_with_feedback(self.spec, feedback.directives)
        prompt = self.pipeline.build_prompt(self.spec, self.context, feedback_directives=feedback.directives)
        candidate = self.pipeline.generate_fault(prompt, greedy=True, iteration=len(self.turns))
        self.turns.append(SessionTurn(iteration=len(self.turns), candidate=candidate))
        return candidate

    def accept(self, rating: float = 5.0) -> GenerationCandidate:
        """Mark the current candidate as accepted and return it."""
        return self.give_feedback("", rating=rating, accept=True)

    # -- automated driving ----------------------------------------------------------

    def auto_refine(self, tester: SimulatedTester, max_iterations: int = 5) -> GenerationCandidate:
        """Drive the session with a simulated tester until acceptance or budget."""
        candidate = self.propose()
        for _round in range(max_iterations):
            assert self.spec is not None
            review = tester.review(self.spec, candidate)
            if review.accept:
                self.give_feedback("", rating=review.rating, accept=True)
                return candidate
            candidate = self.give_feedback(review.critique, rating=review.rating)
        return candidate

    # -- inspection -------------------------------------------------------------------

    @property
    def current(self) -> GenerationCandidate | None:
        return self.turns[-1].candidate if self.turns else None

    @property
    def iterations(self) -> int:
        return len(self.turns)

    @property
    def accepted(self) -> bool:
        return bool(self.turns) and self.turns[-1].accepted

    def history(self) -> list[dict]:
        """Compact per-turn history for reports and examples."""
        entries = []
        for turn in self.turns:
            entries.append(
                {
                    "iteration": turn.iteration,
                    "template": turn.candidate.decisions.template,
                    "handling": turn.candidate.decisions.handling,
                    "critique": turn.feedback.critique if turn.feedback else None,
                    "rating": turn.feedback.rating if turn.feedback else None,
                    "accepted": turn.accepted,
                }
            )
        return entries
