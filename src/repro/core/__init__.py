"""The paper's primary contribution: the neural fault injection pipeline.

* :class:`NeuralFaultInjector` — the end-to-end Fig. 1 workflow;
* :class:`RefinementSession` — iterative tester-in-the-loop refinement;
* :class:`CampaignOrchestrator` — campaigns and the comparative analysis;
* :class:`WorkflowTrace` — per-stage trace records of workflow runs.
"""

from .campaign import CampaignOrchestrator, ComparisonResult, TechniqueResult
from .pipeline import NeuralFaultInjector
from .results import WORKFLOW_STAGES, StageResult, WorkflowTrace
from .session import RefinementSession, SessionTurn

__all__ = [
    "CampaignOrchestrator",
    "ComparisonResult",
    "NeuralFaultInjector",
    "RefinementSession",
    "SessionTurn",
    "StageResult",
    "TechniqueResult",
    "WORKFLOW_STAGES",
    "WorkflowTrace",
]
