"""Injection campaigns and the neural-vs-conventional comparison.

:class:`CampaignOrchestrator` drives a whole list of tester scenarios against a
target system with the neural pipeline, and runs the conventional baselines
against the same target, producing the coverage / effectiveness / efficiency
comparison the paper promises as future validation (Section V).

Fault *generation* runs as one batched forward pass per technique
(:meth:`~repro.api.FaultInjectionEngine.generate_faults`); fault *execution* —
the expensive sandbox runs — is submitted as one batch per technique through
:meth:`~repro.integration.ExperimentRunner.run_many`, so independent
experiments run concurrently while reports keep the deterministic,
seed-stable ordering of the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..api.engine import FaultInjectionEngine
from ..baselines import ManualEffortModel, PredefinedModelInjector, RandomInjector
from ..baselines.predefined import PREDEFINED_FAULT_TYPES
from ..eval import (
    CoverageReport,
    EffectivenessReport,
    baseline_coverage,
    compare_effort,
    effectiveness,
    neural_coverage,
)
from ..integration import CampaignReport, ExperimentRunner
from ..targets import TargetSystem, get_target
from ..types import CodeContext, FaultSpec
from .pipeline import NeuralFaultInjector

#: One scenario processed by the NLP engine: (spec, code context).
DefinedScenario = tuple[FaultSpec, CodeContext | None]


@dataclass
class TechniqueResult:
    """Everything measured for one technique on one target."""

    technique: str
    coverage: CoverageReport
    effectiveness: EffectivenessReport
    campaign: CampaignReport
    effort_minutes: float
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "technique": self.technique,
            "coverage": self.coverage.to_dict(),
            "effectiveness": self.effectiveness.to_dict(),
            "campaign": self.campaign.summary(),
            "effort_minutes": round(self.effort_minutes, 2),
            "extra": dict(self.extra),
        }


@dataclass
class ComparisonResult:
    """Side-by-side comparison of the neural technique and the baselines."""

    target: str
    techniques: dict[str, TechniqueResult] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"target": self.target, "techniques": {name: result.to_dict() for name, result in self.techniques.items()}}

    def summary_rows(self) -> list[dict[str, Any]]:
        """Flat rows (one per technique) for table rendering in benchmarks."""
        rows = []
        for name, result in self.techniques.items():
            rows.append(
                {
                    "technique": name,
                    "scenario_coverage": round(result.coverage.scenario_coverage, 3),
                    "fault_type_coverage": round(result.coverage.fault_type_coverage, 3),
                    "failure_exposure_rate": round(result.effectiveness.failure_exposure_rate, 3),
                    "distinct_failure_modes": result.effectiveness.distinct_failure_modes,
                    "effort_minutes": round(result.effort_minutes, 1),
                    "faults_executed": result.effectiveness.total,
                }
            )
        return rows


class CampaignOrchestrator:
    """Runs neural and baseline campaigns over one target system.

    A thin adapter over :class:`~repro.api.FaultInjectionEngine`: it accepts
    either an engine or the legacy :class:`NeuralFaultInjector` façade (whose
    engine it unwraps), and drives campaigns through the engine's shared
    stack — NLP caches, batched generation, and pooled per-target runners.
    :class:`~repro.api.CampaignRequest` submitted to an engine routes here.
    """

    def __init__(
        self,
        pipeline: NeuralFaultInjector | FaultInjectionEngine,
        target: TargetSystem | str,
        mode: str | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.target = get_target(target) if isinstance(target, str) else target
        self.mode = mode if mode is not None else pipeline.config.execution.default_mode
        self._effort_model = ManualEffortModel()
        self._baseline_runner_cache: ExperimentRunner | None = None

    @property
    def engine(self) -> FaultInjectionEngine:
        """The engine whose shared stack the campaign drives."""
        if isinstance(self.pipeline, NeuralFaultInjector):
            return self.pipeline.engine
        return self.pipeline

    # -- scenario definition ------------------------------------------------------------

    def define_scenarios(self, scenarios: Sequence[str]) -> list[DefinedScenario]:
        """Run every scenario through fault definition + NLP processing once.

        :meth:`compare` extracts the specs a single time and shares them with
        all three techniques instead of re-processing the scenario list per
        technique.
        """
        source = self.target.build_source()
        return [self.pipeline.define_fault(scenario, code=source) for scenario in scenarios]

    # -- neural -----------------------------------------------------------------------

    def run_neural(
        self,
        scenarios: list[str],
        feedback_rounds: float = 1.0,
        defined: list[DefinedScenario] | None = None,
    ) -> TechniqueResult:
        """Run every scenario through the neural pipeline and test the results."""
        runner = self.pipeline._runner_for(self.target)
        defined = defined if defined is not None else self.define_scenarios(scenarios)
        prompts = [self.pipeline.build_prompt(spec, context) for spec, context in defined]
        candidates = self.pipeline.generate_faults(prompts)
        specs: list[FaultSpec] = [spec for spec, _context in defined]
        templates = [candidate.decisions.template for candidate in candidates]
        faults = [candidate.fault for candidate in candidates]
        batch = runner.run_many(faults, mode=self.mode)
        campaign = CampaignReport(name=f"neural-{self.target.name}")
        campaign.add_batch(batch)
        coverage = neural_coverage(specs, templates)
        effect = effectiveness(campaign.outcomes, technique="neural")
        effort = self._effort_model.neural(len(scenarios), feedback_rounds_per_scenario=feedback_rounds)
        return TechniqueResult(
            technique="neural",
            coverage=coverage,
            effectiveness=effect,
            campaign=campaign,
            effort_minutes=effort.minutes,
            extra={"specs": [spec.fault_type.value for spec in specs]},
        )

    # -- baselines ----------------------------------------------------------------------

    def run_predefined(
        self,
        scenarios: list[str],
        budget: int | None = None,
        defined: list[DefinedScenario] | None = None,
    ) -> TechniqueResult:
        """Run the conventional predefined-fault-model baseline."""
        injector = PredefinedModelInjector()
        source = self.target.build_source()
        defined = defined if defined is not None else self.define_scenarios(scenarios)
        specs = [spec for spec, _context in defined]
        plan = injector.plan(source, budget=budget or len(scenarios) * 2)
        batch = self._baseline_runner().run_many(plan.faults, mode=self.mode)
        campaign = CampaignReport(name=f"predefined-{self.target.name}")
        campaign.add_batch(batch)
        coverage = baseline_coverage(specs, injector.can_express, PREDEFINED_FAULT_TYPES, technique="predefined-model")
        effect = effectiveness(campaign.outcomes, technique="predefined-model")
        expressible = coverage.scenario_coverage
        effort = self._effort_model.conventional(len(scenarios), expressible_fraction=expressible)
        return TechniqueResult(
            technique="predefined-model",
            coverage=coverage,
            effectiveness=effect,
            campaign=campaign,
            effort_minutes=effort.minutes,
            extra={"planned_faults": len(plan.faults)},
        )

    def run_random(
        self,
        scenarios: list[str],
        budget: int | None = None,
        defined: list[DefinedScenario] | None = None,
    ) -> TechniqueResult:
        """Run the uninformed random-mutation baseline."""
        injector = RandomInjector()
        source = self.target.build_source()
        defined = defined if defined is not None else self.define_scenarios(scenarios)
        specs = [spec for spec, _context in defined]
        plan = injector.plan(source, budget=budget or len(scenarios) * 2)
        batch = self._baseline_runner().run_many(plan.faults, mode=self.mode)
        campaign = CampaignReport(name=f"random-{self.target.name}")
        campaign.add_batch(batch)
        coverage = baseline_coverage(specs, injector.can_express, set(), technique="random")
        coverage.covered_fault_types = {fault.fault_type for fault in plan.faults}
        effect = effectiveness(campaign.outcomes, technique="random")
        effort = self._effort_model.conventional(len(scenarios), expressible_fraction=0.0)
        return TechniqueResult(
            technique="random",
            coverage=coverage,
            effectiveness=effect,
            campaign=campaign,
            effort_minutes=effort.minutes,
            extra={"planned_faults": len(plan.faults)},
        )

    # -- comparison ---------------------------------------------------------------------

    def compare(self, scenarios: list[str], budget: int | None = None) -> ComparisonResult:
        """Run all three techniques on the same scenarios and target.

        The scenario list is processed by the NLP engine exactly once and the
        resulting specs are shared across the techniques.
        """
        defined = self.define_scenarios(scenarios)
        result = ComparisonResult(target=self.target.name)
        result.techniques["neural"] = self.run_neural(scenarios, defined=defined)
        result.techniques["predefined-model"] = self.run_predefined(scenarios, budget=budget, defined=defined)
        result.techniques["random"] = self.run_random(scenarios, budget=budget, defined=defined)
        return result

    def efficiency_comparison(self, scenarios: list[str], defined: list[DefinedScenario] | None = None) -> dict[str, Any]:
        """Manual-effort comparison matching the paper's efficiency claim."""
        injector = PredefinedModelInjector()
        defined = defined if defined is not None else self.define_scenarios(scenarios)
        specs = [spec for spec, _context in defined]
        expressible = sum(1 for spec in specs if injector.can_express(spec)) / len(specs) if specs else 0.0
        return compare_effort(len(scenarios), expressible_fraction=expressible).to_dict()

    # -- internals ----------------------------------------------------------------------

    def _baseline_runner(self) -> ExperimentRunner:
        """One shared runner for the baseline techniques, so pool-mode campaigns
        reuse a single worker pool and scratch directory across techniques."""
        if self._baseline_runner_cache is None:
            self._baseline_runner_cache = ExperimentRunner(
                self.target,
                config=self.pipeline.config.integration,
                seed=self.pipeline.config.seed,
                execution=self.pipeline.config.execution,
            )
        return self._baseline_runner_cache
