"""Injection campaigns and the neural-vs-conventional comparison.

:class:`CampaignOrchestrator` drives a whole list of tester scenarios against a
target system with the neural pipeline, and runs the conventional baselines
against the same target, producing the coverage / effectiveness / efficiency
comparison the paper promises as future validation (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..baselines import ManualEffortModel, PredefinedModelInjector, RandomInjector
from ..baselines.predefined import PREDEFINED_FAULT_TYPES
from ..eval import (
    CoverageReport,
    EffectivenessReport,
    baseline_coverage,
    compare_effort,
    effectiveness,
    neural_coverage,
)
from ..integration import CampaignReport, ExperimentRunner
from ..targets import TargetSystem, get_target
from ..types import FaultSpec
from .pipeline import NeuralFaultInjector


@dataclass
class TechniqueResult:
    """Everything measured for one technique on one target."""

    technique: str
    coverage: CoverageReport
    effectiveness: EffectivenessReport
    campaign: CampaignReport
    effort_minutes: float
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "technique": self.technique,
            "coverage": self.coverage.to_dict(),
            "effectiveness": self.effectiveness.to_dict(),
            "campaign": self.campaign.summary(),
            "effort_minutes": round(self.effort_minutes, 2),
            "extra": dict(self.extra),
        }


@dataclass
class ComparisonResult:
    """Side-by-side comparison of the neural technique and the baselines."""

    target: str
    techniques: dict[str, TechniqueResult] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"target": self.target, "techniques": {name: result.to_dict() for name, result in self.techniques.items()}}

    def summary_rows(self) -> list[dict[str, Any]]:
        """Flat rows (one per technique) for table rendering in benchmarks."""
        rows = []
        for name, result in self.techniques.items():
            rows.append(
                {
                    "technique": name,
                    "scenario_coverage": round(result.coverage.scenario_coverage, 3),
                    "fault_type_coverage": round(result.coverage.fault_type_coverage, 3),
                    "failure_exposure_rate": round(result.effectiveness.failure_exposure_rate, 3),
                    "distinct_failure_modes": result.effectiveness.distinct_failure_modes,
                    "effort_minutes": round(result.effort_minutes, 1),
                    "faults_executed": result.effectiveness.total,
                }
            )
        return rows


class CampaignOrchestrator:
    """Runs neural and baseline campaigns over one target system."""

    def __init__(
        self,
        pipeline: NeuralFaultInjector,
        target: TargetSystem | str,
        mode: str = "inprocess",
    ) -> None:
        self.pipeline = pipeline
        self.target = get_target(target) if isinstance(target, str) else target
        self.mode = mode
        self._effort_model = ManualEffortModel()

    # -- neural -----------------------------------------------------------------------

    def run_neural(self, scenarios: list[str], feedback_rounds: float = 1.0) -> TechniqueResult:
        """Run every scenario through the neural pipeline and test the results."""
        runner = self.pipeline._runner_for(self.target)
        specs: list[FaultSpec] = []
        templates: list[str] = []
        campaign = CampaignReport(name=f"neural-{self.target.name}")
        source = self.target.build_source()
        for scenario in scenarios:
            spec, context = self.pipeline.define_fault(scenario, code=source)
            prompt = self.pipeline.build_prompt(spec, context)
            candidate = self.pipeline.generate_fault(prompt)
            specs.append(spec)
            templates.append(candidate.decisions.template)
            record = runner.run_generated(candidate.fault, mode=self._mode_for(candidate.decisions.template))
            campaign.add_outcome(record.outcome, target=self.target.name)
        coverage = neural_coverage(specs, templates)
        effect = effectiveness(campaign.outcomes, technique="neural")
        effort = self._effort_model.neural(len(scenarios), feedback_rounds_per_scenario=feedback_rounds)
        return TechniqueResult(
            technique="neural",
            coverage=coverage,
            effectiveness=effect,
            campaign=campaign,
            effort_minutes=effort.minutes,
            extra={"specs": [spec.fault_type.value for spec in specs]},
        )

    # -- baselines ----------------------------------------------------------------------

    def run_predefined(self, scenarios: list[str], budget: int | None = None) -> TechniqueResult:
        """Run the conventional predefined-fault-model baseline."""
        injector = PredefinedModelInjector()
        source = self.target.build_source()
        specs = [self.pipeline.define_fault(scenario, code=source)[0] for scenario in scenarios]
        plan = injector.plan(source, budget=budget or len(scenarios) * 2)
        runner = ExperimentRunner(self.target, config=self.pipeline.config.integration, seed=self.pipeline.config.seed)
        campaign = CampaignReport(name=f"predefined-{self.target.name}")
        for applied in plan.faults:
            record = runner.run_applied(applied, mode=self._mode_for(applied.operator))
            campaign.add_outcome(record.outcome, target=self.target.name)
        coverage = baseline_coverage(specs, injector.can_express, PREDEFINED_FAULT_TYPES, technique="predefined-model")
        effect = effectiveness(campaign.outcomes, technique="predefined-model")
        expressible = coverage.scenario_coverage
        effort = self._effort_model.conventional(len(scenarios), expressible_fraction=expressible)
        return TechniqueResult(
            technique="predefined-model",
            coverage=coverage,
            effectiveness=effect,
            campaign=campaign,
            effort_minutes=effort.minutes,
            extra={"planned_faults": len(plan.faults)},
        )

    def run_random(self, scenarios: list[str], budget: int | None = None) -> TechniqueResult:
        """Run the uninformed random-mutation baseline."""
        injector = RandomInjector()
        source = self.target.build_source()
        specs = [self.pipeline.define_fault(scenario, code=source)[0] for scenario in scenarios]
        plan = injector.plan(source, budget=budget or len(scenarios) * 2)
        runner = ExperimentRunner(self.target, config=self.pipeline.config.integration, seed=self.pipeline.config.seed)
        campaign = CampaignReport(name=f"random-{self.target.name}")
        for applied in plan.faults:
            record = runner.run_applied(applied, mode=self._mode_for(applied.operator))
            campaign.add_outcome(record.outcome, target=self.target.name)
        coverage = baseline_coverage(specs, injector.can_express, set(), technique="random")
        coverage.covered_fault_types = {fault.fault_type for fault in plan.faults}
        effect = effectiveness(campaign.outcomes, technique="random")
        effort = self._effort_model.conventional(len(scenarios), expressible_fraction=0.0)
        return TechniqueResult(
            technique="random",
            coverage=coverage,
            effectiveness=effect,
            campaign=campaign,
            effort_minutes=effort.minutes,
            extra={"planned_faults": len(plan.faults)},
        )

    # -- comparison ---------------------------------------------------------------------

    def compare(self, scenarios: list[str], budget: int | None = None) -> ComparisonResult:
        """Run all three techniques on the same scenarios and target."""
        result = ComparisonResult(target=self.target.name)
        result.techniques["neural"] = self.run_neural(scenarios)
        result.techniques["predefined-model"] = self.run_predefined(scenarios, budget=budget)
        result.techniques["random"] = self.run_random(scenarios, budget=budget)
        return result

    def efficiency_comparison(self, scenarios: list[str]) -> dict[str, Any]:
        """Manual-effort comparison matching the paper's efficiency claim."""
        injector = PredefinedModelInjector()
        source = self.target.build_source()
        specs = [self.pipeline.define_fault(scenario, code=source)[0] for scenario in scenarios]
        expressible = sum(1 for spec in specs if injector.can_express(spec)) / len(specs) if specs else 0.0
        return compare_effort(len(scenarios), expressible_fraction=expressible).to_dict()

    def _mode_for(self, hint: str) -> str:
        """Hang-prone faults always run in a subprocess; others use the default mode."""
        if any(marker in hint for marker in ("infinite_loop", "deadlock")):
            return "subprocess"
        return self.mode
