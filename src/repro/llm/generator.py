"""The fault code generator: the library's stand-in for the paper's LLM.

:class:`FaultGenerator` composes the feature encoder, the policy network, the
decoder, and the code grammar into one object with an LLM-like interface:

* :meth:`generate` — produce one faulty code snippet for a prompt;
* :meth:`candidates` — produce several diverse candidates (for RLHF ranking);
* :meth:`logprob` — score a decision assignment under the current policy;
* :meth:`fine_tune_step` — apply one supervised update (used by the SFT
  trainer);

so the rest of the pipeline is agnostic to whether generations come from this
offline policy or a hosted model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelConfig
from ..rng import SeededRNG
from ..types import CodeContext, GeneratedFault, Patch, stable_fault_id
from ..nlp.prompt_builder import GenerationPrompt
from .decisions import DECISION_SLOTS, DecisionVector
from .decoder import Decoder, DecodingResult
from .features import FeatureEncoder
from .grammar import CodeGrammar, RenderedFault
from .network import PolicyNetwork


@dataclass
class GenerationCandidate:
    """A generated fault together with its decoding metadata."""

    fault: GeneratedFault
    decisions: DecisionVector
    rendered: RenderedFault
    logprob: float


class FaultGenerator:
    """Generates faulty code snippets from structured fault specifications."""

    def __init__(
        self,
        config: ModelConfig | None = None,
        policy: PolicyNetwork | None = None,
        encoder: FeatureEncoder | None = None,
        grammar: CodeGrammar | None = None,
        decoder: Decoder | None = None,
        rng: SeededRNG | None = None,
    ) -> None:
        self.config = config or ModelConfig()
        self._rng = rng or SeededRNG(self.config.seed, namespace="generator")
        self.encoder = encoder or FeatureEncoder(self.config)
        self.policy = policy or PolicyNetwork(self.config, rng=self._rng.fork("policy"))
        self.grammar = grammar or CodeGrammar(
            rng=self._rng.fork("grammar"), cache_size=self.config.render_cache_size
        )
        self.decoder = decoder or Decoder(self.config, rng=self._rng.fork("decoder"))

    @property
    def model_version(self) -> str:
        """Human-readable version string recorded on every generated fault."""
        return f"policy-v{self.policy.version}"

    # -- generation ---------------------------------------------------------------

    def generate(
        self,
        prompt: GenerationPrompt,
        greedy: bool = True,
        iteration: int = 0,
        temperature: float | None = None,
    ) -> GenerationCandidate:
        """Generate a single faulty code snippet for ``prompt``."""
        features = self.encoder.encode(prompt)
        distributions = self._constrained_distributions(prompt, features)
        if greedy:
            decoding = self.decoder.greedy(distributions)
        else:
            decoding = self.decoder.sample(distributions, temperature=temperature)
        return self._materialise(prompt, decoding, iteration)

    def candidates(
        self,
        prompt: GenerationPrompt,
        count: int,
        iteration: int = 0,
        temperature: float | None = None,
    ) -> list[GenerationCandidate]:
        """Generate ``count`` diverse candidates for tester review / ranking."""
        features = self.encoder.encode(prompt)
        distributions = self._constrained_distributions(prompt, features)
        decodings = self.decoder.diverse_candidates(distributions, count, temperature=temperature)
        return [self._materialise(prompt, decoding, iteration, salt=str(i)) for i, decoding in enumerate(decodings)]

    # -- batched generation -------------------------------------------------------

    def generate_batch(
        self,
        prompts: list[GenerationPrompt],
        greedy: bool = True,
        iteration: int = 0,
        temperature: float | None = None,
    ) -> list[GenerationCandidate]:
        """Generate one fault per prompt through a single batched forward pass.

        All prompts are encoded into one feature matrix (cache-assisted), the
        policy computes every per-slot distribution with one matmul per head,
        and decoding runs batched.  Greedy batched generation produces exactly
        the candidates the per-sample :meth:`generate` loop would; sampled
        batched generation draws from the same distributions with a
        batch-ordered RNG stream.
        """
        if not prompts:
            return []
        distributions = self._constrained_distributions_batch(prompts)
        if greedy:
            decodings = self.decoder.greedy_batch(distributions)
        else:
            decodings = self.decoder.sample_batch(distributions, temperature=temperature)
        return [
            self._materialise(prompt, decoding, iteration)
            for prompt, decoding in zip(prompts, decodings)
        ]

    def candidates_batch(
        self,
        prompts: list[GenerationPrompt],
        count: int,
        iteration: int = 0,
        temperature: float | None = None,
    ) -> list[list[GenerationCandidate]]:
        """Diverse candidate sets for many prompts per forward batch.

        The forward pass is batched; candidate decoding then proceeds prompt
        by prompt in input order, consuming the decoder RNG exactly as the
        per-prompt :meth:`candidates` loop does — so for a given seed both
        paths emit identical candidate sets.
        """
        if not prompts:
            return []
        distributions = self._constrained_distributions_batch(prompts)
        decoding_sets = self.decoder.diverse_candidates_batch(distributions, count, temperature=temperature)
        return [
            [
                self._materialise(prompt, decoding, iteration, salt=str(i))
                for i, decoding in enumerate(decodings)
            ]
            for prompt, decodings in zip(prompts, decoding_sets)
        ]

    # -- serving hooks ------------------------------------------------------------

    def prompt_distributions(self, prompts: list[GenerationPrompt]) -> dict:
        """Constrained per-slot ``(B, |slot|)`` distributions for a prompt batch.

        The continuous-batching scheduler uses this to run one batched forward
        pass for every queued request, then decodes each row independently with
        :meth:`decode_prompt` (per-request decode parameters and seeds).
        """
        return self._constrained_distributions_batch(prompts)

    def decode_prompt(
        self,
        prompt: GenerationPrompt,
        distributions: dict,
        greedy: bool = True,
        decoder: Decoder | None = None,
        temperature: float | None = None,
        top_k: int | None = None,
        top_p: float | None = None,
        iteration: int = 0,
    ) -> GenerationCandidate:
        """Decode one prompt from precomputed per-slot distribution vectors.

        Args:
            prompt: The prompt the distributions were computed for.
            distributions: Per-slot probability *vectors* (one row sliced out
                of :meth:`prompt_distributions`).
            greedy: Argmax decoding when true, sampling otherwise.
            decoder: Decoder to draw from; defaults to the generator's shared
                decoder.  Serving passes a per-request decoder seeded from the
                request so grouping never changes a request's sample stream.
            temperature: Sampling temperature override.
            top_k: Top-k truncation override.
            top_p: Nucleus truncation override.
            iteration: Refinement iteration recorded on the fault.

        Returns:
            The rendered :class:`GenerationCandidate`.
        """
        active = decoder or self.decoder
        if greedy:
            decoding = active.greedy(distributions)
        else:
            decoding = active.sample(
                distributions, temperature=temperature, top_k=top_k, top_p=top_p
            )
        return self._materialise(prompt, decoding, iteration)

    def logprob_batch(self, prompts: list[GenerationPrompt], decisions: list[DecisionVector]):
        """Per-prompt joint log-probabilities through one batched forward pass."""
        features = self.encoder.encode_batch(prompts)
        return self.policy.log_probabilities_batch(features, decisions)

    def forced_slots(self, prompt: GenerationPrompt) -> dict[str, str]:
        """Decision slots pinned by explicit tester feedback.

        The initial generation is left entirely to the learned policy, but once
        a tester states a requirement in a refinement round ("introduce a retry
        mechanism", "make it intermittent"), decoding is constrained so the
        requirement is honoured deterministically — the decision-level analogue
        of instruction-constrained decoding.
        """
        directives = prompt.feedback_directives
        forced: dict[str, str] = {}
        if not directives:
            return forced
        handling = directives.get("handling")
        if handling in DECISION_SLOTS["handling"]:
            forced["handling"] = handling
        fault_type = directives.get("fault_type")
        if fault_type in DECISION_SLOTS["template"]:
            forced["template"] = fault_type
        trigger = directives.get("trigger")
        if trigger in DECISION_SLOTS["trigger"]:
            forced["trigger"] = trigger
        severity = directives.get("severity")
        if severity in DECISION_SLOTS["severity"]:
            forced["severity"] = severity
        if directives.get("wants_retry") and "handling" not in forced:
            forced["handling"] = "retry"
        if directives.get("wants_fallback") and "handling" not in forced:
            forced["handling"] = "fallback"
        if directives.get("wants_unhandled") and "handling" not in forced:
            forced["handling"] = "unhandled"
        return forced

    def _spec_constraint(self, prompt: GenerationPrompt) -> dict[str, str]:
        """Pin the fault template to the spec's fault type when extraction is confident.

        The structured specification *is* the contract between the tester and
        the generator: when the NLP engine is confident about the requested
        fault type, the model's freedom lies in how to realise it (handling,
        trigger, placement, severity), not in which fault to produce.  Disabled
        via ``ModelConfig.constrain_to_spec`` for the ablation benchmark.
        """
        if not self.config.constrain_to_spec:
            return {}
        spec = prompt.spec
        if spec.fault_type.value not in DECISION_SLOTS["template"]:
            return {}
        if spec.confidence < self.config.spec_constraint_threshold:
            return {}
        return {"template": spec.fault_type.value}

    def _constrained_distributions(self, prompt: GenerationPrompt, features) -> dict:
        distributions = self.policy.distributions(features)
        constraints = self._spec_constraint(prompt)
        constraints.update(self.forced_slots(prompt))
        for slot, value in constraints.items():
            index = DECISION_SLOTS[slot].index(value)
            distributions[slot][:] = 0.0
            distributions[slot][index] = 1.0
        return distributions

    def _constrained_distributions_batch(self, prompts: list[GenerationPrompt]) -> dict:
        """Batched per-slot ``(B, |slot|)`` distributions with per-prompt constraints."""
        features = self.encoder.encode_batch(prompts)
        forward = self.policy.forward_batch(features)
        distributions = {slot: probs.copy() for slot, probs in forward.probabilities.items()}
        for row, prompt in enumerate(prompts):
            constraints = self._spec_constraint(prompt)
            constraints.update(self.forced_slots(prompt))
            for slot, value in constraints.items():
                index = DECISION_SLOTS[slot].index(value)
                distributions[slot][row, :] = 0.0
                distributions[slot][row, index] = 1.0
        return distributions

    def render_decisions(
        self, prompt: GenerationPrompt, decisions: DecisionVector, iteration: int = 0
    ) -> GenerationCandidate:
        """Render an explicit decision assignment (used by tests and ablations)."""
        features = self.encoder.encode(prompt)
        logprob = self.policy.log_probability(features, decisions)
        decoding = DecodingResult(
            decisions=decisions, logprob=logprob, slot_probabilities={}, strategy="forced"
        )
        return self._materialise(prompt, decoding, iteration)

    def logprob(self, prompt: GenerationPrompt, decisions: DecisionVector) -> float:
        """Joint log-probability of ``decisions`` for ``prompt`` under the policy."""
        return self.policy.log_probability(self.encoder.encode(prompt), decisions)

    # -- training hooks -----------------------------------------------------------

    def fine_tune_step(self, prompt: GenerationPrompt, target: DecisionVector, learning_rate: float | None = None) -> float:
        """One supervised update towards ``target``; returns the example NLL."""
        features = self.encoder.encode(prompt)
        forward = self.policy.forward(features)
        loss = -forward.log_probability(target)
        gradients = self.policy.backward(forward, target)
        self.policy.apply_gradients(gradients, learning_rate=learning_rate)
        return loss

    # -- internals ----------------------------------------------------------------

    def _materialise(
        self,
        prompt: GenerationPrompt,
        decoding: DecodingResult,
        iteration: int,
        salt: str = "",
    ) -> GenerationCandidate:
        rendered = self.grammar.render(prompt, decoding.decisions)
        patch = self._patch(prompt.context, rendered)
        fault_id = stable_fault_id(
            prompt.spec.description,
            rendered.function_source,
            salt=f"{iteration}:{salt}:{decoding.strategy}",
        )
        fault = GeneratedFault(
            fault_id=fault_id,
            spec=prompt.spec,
            code=rendered.function_source,
            patch=patch,
            actions=decoding.decisions.to_dict(),
            logprob=decoding.logprob,
            iteration=iteration,
            model_version=self.model_version,
            metadata={
                "strategy": decoding.strategy,
                "operator": rendered.operator,
                "notes": list(rendered.notes),
                "feedback_directives": dict(prompt.feedback_directives),
            },
        )
        return GenerationCandidate(
            fault=fault, decisions=decoding.decisions, rendered=rendered, logprob=decoding.logprob
        )

    @staticmethod
    def _patch(context: CodeContext | None, rendered: RenderedFault) -> Patch | None:
        if context is None or rendered.module_source is None:
            return None
        return Patch(
            original=context.source,
            mutated=rendered.module_source,
            target_path=context.path,
            function=rendered.function_name,
            operator=rendered.operator,
        )
