"""The fault code generator: the library's stand-in for the paper's LLM.

:class:`FaultGenerator` composes the feature encoder, the policy network, the
decoder, and the code grammar into one object with an LLM-like interface:

* :meth:`generate` — produce one faulty code snippet for a prompt;
* :meth:`candidates` — produce several diverse candidates (for RLHF ranking);
* :meth:`logprob` — score a decision assignment under the current policy;
* :meth:`fine_tune_step` — apply one supervised update (used by the SFT
  trainer);

so the rest of the pipeline is agnostic to whether generations come from this
offline policy or a hosted model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ModelConfig
from ..rng import SeededRNG
from ..types import CodeContext, GeneratedFault, Patch, stable_fault_id
from ..nlp.prompt_builder import GenerationPrompt
from .compiled_grammar import (
    DecisionAutomaton,
    DecodePlan,
    GrammarCompiler,
    feedback_forced_slots,
    spec_constraint,
)
from .decisions import DECISION_SLOTS, DecisionVector
from .decoder import Decoder, DecodingResult
from .features import FeatureEncoder
from .grammar import CodeGrammar, RenderedFault
from .network import PolicyNetwork


@dataclass
class GenerationCandidate:
    """A generated fault together with its decoding metadata."""

    fault: GeneratedFault
    decisions: DecisionVector
    rendered: RenderedFault
    logprob: float


class FaultGenerator:
    """Generates faulty code snippets from structured fault specifications."""

    def __init__(
        self,
        config: ModelConfig | None = None,
        policy: PolicyNetwork | None = None,
        encoder: FeatureEncoder | None = None,
        grammar: CodeGrammar | None = None,
        decoder: Decoder | None = None,
        rng: SeededRNG | None = None,
    ) -> None:
        self.config = config or ModelConfig()
        self._rng = rng or SeededRNG(self.config.seed, namespace="generator")
        self.encoder = encoder or FeatureEncoder(self.config)
        self.policy = policy or PolicyNetwork(self.config, rng=self._rng.fork("policy"))
        self.grammar = grammar or CodeGrammar(
            rng=self._rng.fork("grammar"), cache_size=self.config.render_cache_size
        )
        self.decoder = decoder or Decoder(self.config, rng=self._rng.fork("decoder"))
        self.compiler = GrammarCompiler(self.config)

    @property
    def model_version(self) -> str:
        """Human-readable version string recorded on every generated fault."""
        return f"policy-v{self.policy.version}"

    # -- generation ---------------------------------------------------------------

    def generate(
        self,
        prompt: GenerationPrompt,
        greedy: bool = True,
        iteration: int = 0,
        temperature: float | None = None,
    ) -> GenerationCandidate:
        """Generate a single faulty code snippet for ``prompt``.

        With ``config.compiled_decode`` the decoder works on the raw policy
        distributions through the prompt's cached
        :class:`~repro.llm.compiled_grammar.DecisionAutomaton`; the fault and
        RNG stream are identical to the interpreted constrained path.
        """
        features = self.encoder.encode(prompt)
        if self.config.compiled_decode:
            distributions = self.policy.forward(features).probabilities
            automaton = self.compiler.compile(prompt)
            if greedy:
                decoding = self.decoder.greedy(distributions, automaton=automaton)
            else:
                decoding = self.decoder.sample(
                    distributions, temperature=temperature, automaton=automaton
                )
            return self._materialise(prompt, decoding, iteration)
        distributions = self._constrained_distributions(prompt, features)
        if greedy:
            decoding = self.decoder.greedy(distributions)
        else:
            decoding = self.decoder.sample(distributions, temperature=temperature)
        return self._materialise(prompt, decoding, iteration)

    def candidates(
        self,
        prompt: GenerationPrompt,
        count: int,
        iteration: int = 0,
        temperature: float | None = None,
    ) -> list[GenerationCandidate]:
        """Generate ``count`` diverse candidates for tester review / ranking."""
        features = self.encoder.encode(prompt)
        if self.config.compiled_decode:
            distributions = self.policy.forward(features).probabilities
            effective = temperature or max(self.config.temperature, 1.2)
            decodings = self.decoder.diverse_candidates(
                distributions, count, temperature=temperature,
                automaton=self.compiler.compile(prompt),
                plan=self.compiler.plan_for(
                    prompt, distributions, effective, self.config.top_k, self.config.top_p
                ),
            )
        else:
            constrained = self._constrained_distributions(prompt, features)
            decodings = self.decoder.diverse_candidates(constrained, count, temperature=temperature)
        return [self._materialise(prompt, decoding, iteration, salt=str(i)) for i, decoding in enumerate(decodings)]

    # -- batched generation -------------------------------------------------------

    def generate_batch(
        self,
        prompts: list[GenerationPrompt],
        greedy: bool = True,
        iteration: int = 0,
        temperature: float | None = None,
    ) -> list[GenerationCandidate]:
        """Generate one fault per prompt through a single batched forward pass.

        All prompts are encoded into one feature matrix (cache-assisted), the
        policy computes every per-slot distribution with one matmul per head,
        and decoding runs batched.  Greedy batched generation produces exactly
        the candidates the per-sample :meth:`generate` loop would; sampled
        batched generation draws from the same distributions with a
        batch-ordered RNG stream.
        """
        if not prompts:
            return []
        if self.config.compiled_decode:
            distributions = self._raw_distributions_batch(prompts)
            automatons = [self.compiler.compile(prompt) for prompt in prompts]
            if greedy:
                decodings = self.decoder.greedy_batch(distributions, automatons=automatons)
            else:
                decodings = self.decoder.sample_batch(
                    distributions, temperature=temperature, automatons=automatons
                )
        else:
            distributions = self._constrained_distributions_batch(prompts)
            if greedy:
                decodings = self.decoder.greedy_batch(distributions)
            else:
                decodings = self.decoder.sample_batch(distributions, temperature=temperature)
        return [
            self._materialise(prompt, decoding, iteration)
            for prompt, decoding in zip(prompts, decodings)
        ]

    def candidates_batch(
        self,
        prompts: list[GenerationPrompt],
        count: int,
        iteration: int = 0,
        temperature: float | None = None,
    ) -> list[list[GenerationCandidate]]:
        """Diverse candidate sets for many prompts per forward batch.

        The forward pass is batched; candidate decoding then proceeds prompt
        by prompt in input order, consuming the decoder RNG exactly as the
        per-prompt :meth:`candidates` loop does — so for a given seed both
        paths emit identical candidate sets.

        With ``config.compiled_decode`` the decode is additionally
        *dedup-aware*: rows that repeat a prompt (same cache key and
        bit-identical distribution rows) share one compiled automaton, one
        sampling :class:`~repro.llm.compiled_grammar.DecodePlan`, and one
        RNG-free greedy head instead of recompiling and re-truncating per
        row.  Sampled attempts still run per row in input order, so the RNG
        stream — and therefore every candidate — stays identical to the
        per-prompt loop.
        """
        if not prompts:
            return []
        if not self.config.compiled_decode:
            distributions = self._constrained_distributions_batch(prompts)
            decoding_sets = self.decoder.diverse_candidates_batch(
                distributions, count, temperature=temperature
            )
            return [
                [
                    self._materialise(prompt, decoding, iteration, salt=str(i))
                    for i, decoding in enumerate(decodings)
                ]
                for prompt, decodings in zip(prompts, decoding_sets)
            ]
        distributions = self._raw_distributions_batch(prompts)
        effective = temperature or max(self.config.temperature, 1.2)
        shared: dict[str, tuple[dict, DecisionAutomaton, DecodePlan, DecodingResult]] = {}
        results: list[list[GenerationCandidate]] = []
        for row, prompt in enumerate(prompts):
            row_distributions = {slot: matrix[row] for slot, matrix in distributions.items()}
            key = prompt.cache_key()
            entry = shared.get(key)
            if entry is not None and all(
                np.array_equal(entry[0][slot], row_distributions[slot])
                for slot in row_distributions
            ):
                _, automaton, plan, first = entry
            else:
                automaton = self.compiler.compile(prompt)
                plan = self.compiler.plan_for(
                    prompt, row_distributions, effective, self.config.top_k, self.config.top_p
                )
                first = self.decoder.greedy(row_distributions, automaton=automaton)
                shared[key] = (row_distributions, automaton, plan, first)
            decodings = self.decoder.diverse_candidates(
                row_distributions,
                count,
                temperature=temperature,
                automaton=automaton,
                plan=plan,
                first=first,
            )
            results.append(
                [
                    self._materialise(prompt, decoding, iteration, salt=str(i))
                    for i, decoding in enumerate(decodings)
                ]
            )
        return results

    # -- serving hooks ------------------------------------------------------------

    def prompt_distributions(self, prompts: list[GenerationPrompt], constrained: bool = True) -> dict:
        """Per-slot ``(B, |slot|)`` distributions for a prompt batch.

        The continuous-batching scheduler uses this to run one batched forward
        pass for every queued request, then decodes each row independently with
        :meth:`decode_prompt` (per-request decode parameters and seeds).

        Args:
            prompts: The prompt batch.
            constrained: When true (default), constraints are applied by
                copying the matrices and one-hotting pinned rows — the
                interpreted path.  Compiled serving passes ``False`` to get
                the raw policy outputs and applies constraints through each
                prompt's automaton at decode time instead (do not mutate the
                returned matrices in that case).

        Returns:
            Slot name → ``(B, |slot|)`` probability matrix.
        """
        if constrained:
            return self._constrained_distributions_batch(prompts)
        return self._raw_distributions_batch(prompts)

    def decode_prompt(
        self,
        prompt: GenerationPrompt,
        distributions: dict,
        greedy: bool = True,
        decoder: Decoder | None = None,
        temperature: float | None = None,
        top_k: int | None = None,
        top_p: float | None = None,
        iteration: int = 0,
        automaton: DecisionAutomaton | None = None,
    ) -> GenerationCandidate:
        """Decode one prompt from precomputed per-slot distribution vectors.

        Args:
            prompt: The prompt the distributions were computed for.
            distributions: Per-slot probability *vectors* (one row sliced out
                of :meth:`prompt_distributions`) — constrained vectors for
                the interpreted path, raw vectors when ``automaton`` drives a
                compiled decode.
            greedy: Argmax decoding when true, sampling otherwise.
            decoder: Decoder to draw from; defaults to the generator's shared
                decoder.  Serving passes a per-request decoder seeded from the
                request so grouping never changes a request's sample stream.
            temperature: Sampling temperature override.
            top_k: Top-k truncation override.
            top_p: Nucleus truncation override.
            iteration: Refinement iteration recorded on the fault.
            automaton: Compiled decision automaton for ``prompt``; when given
                the decoder jump-forwards through force-determined slots
                instead of re-applying constraints per request.

        Returns:
            The rendered :class:`GenerationCandidate`.
        """
        active = decoder or self.decoder
        if greedy:
            decoding = active.greedy(distributions, automaton=automaton)
        else:
            plan = None
            if automaton is not None:
                plan = self.compiler.plan_for(
                    prompt,
                    distributions,
                    temperature if temperature is not None else self.config.temperature,
                    top_k if top_k is not None else self.config.top_k,
                    top_p if top_p is not None else self.config.top_p,
                )
            decoding = active.sample(
                distributions,
                temperature=temperature,
                top_k=top_k,
                top_p=top_p,
                automaton=automaton,
                plan=plan,
            )
        return self._materialise(prompt, decoding, iteration)

    def logprob_batch(self, prompts: list[GenerationPrompt], decisions: list[DecisionVector]):
        """Per-prompt joint log-probabilities through one batched forward pass."""
        features = self.encoder.encode_batch(prompts)
        return self.policy.log_probabilities_batch(features, decisions)

    def forced_slots(self, prompt: GenerationPrompt) -> dict[str, str]:
        """Decision slots pinned by explicit tester feedback.

        The initial generation is left entirely to the learned policy, but once
        a tester states a requirement in a refinement round ("introduce a retry
        mechanism", "make it intermittent"), decoding is constrained so the
        requirement is honoured deterministically — the decision-level analogue
        of instruction-constrained decoding.
        """
        return feedback_forced_slots(prompt)

    def _spec_constraint(self, prompt: GenerationPrompt) -> dict[str, str]:
        """Pin the fault template to the spec's fault type when extraction is confident.

        Delegates to :func:`repro.llm.compiled_grammar.spec_constraint` — the
        single source of truth shared with the grammar compiler, so the
        interpreted and compiled paths can never disagree about constraints.
        """
        return spec_constraint(prompt, self.config)

    def _constrained_distributions(self, prompt: GenerationPrompt, features) -> dict:
        distributions = self.policy.distributions(features)
        constraints = self._spec_constraint(prompt)
        constraints.update(self.forced_slots(prompt))
        for slot, value in constraints.items():
            index = DECISION_SLOTS[slot].index(value)
            distributions[slot][:] = 0.0
            distributions[slot][index] = 1.0
        return distributions

    def _raw_distributions_batch(self, prompts: list[GenerationPrompt]) -> dict:
        """Batched raw per-slot ``(B, |slot|)`` distributions (no constraint copies).

        The compiled decode path reads these through each prompt's automaton
        instead of materialising constrained copies; callers must treat the
        matrices as read-only (they belong to the forward result).
        """
        features = self.encoder.encode_batch(prompts)
        return self.policy.forward_batch(features).probabilities

    def _constrained_distributions_batch(self, prompts: list[GenerationPrompt]) -> dict:
        """Batched per-slot ``(B, |slot|)`` distributions with per-prompt constraints."""
        features = self.encoder.encode_batch(prompts)
        forward = self.policy.forward_batch(features)
        distributions = {slot: probs.copy() for slot, probs in forward.probabilities.items()}
        for row, prompt in enumerate(prompts):
            constraints = self._spec_constraint(prompt)
            constraints.update(self.forced_slots(prompt))
            for slot, value in constraints.items():
                index = DECISION_SLOTS[slot].index(value)
                distributions[slot][row, :] = 0.0
                distributions[slot][row, index] = 1.0
        return distributions

    def render_decisions(
        self, prompt: GenerationPrompt, decisions: DecisionVector, iteration: int = 0
    ) -> GenerationCandidate:
        """Render an explicit decision assignment (used by tests and ablations)."""
        features = self.encoder.encode(prompt)
        logprob = self.policy.log_probability(features, decisions)
        decoding = DecodingResult(
            decisions=decisions, logprob=logprob, slot_probabilities={}, strategy="forced"
        )
        return self._materialise(prompt, decoding, iteration)

    def logprob(self, prompt: GenerationPrompt, decisions: DecisionVector) -> float:
        """Joint log-probability of ``decisions`` for ``prompt`` under the policy."""
        return self.policy.log_probability(self.encoder.encode(prompt), decisions)

    # -- training hooks -----------------------------------------------------------

    def fine_tune_step(self, prompt: GenerationPrompt, target: DecisionVector, learning_rate: float | None = None) -> float:
        """One supervised update towards ``target``; returns the example NLL."""
        features = self.encoder.encode(prompt)
        forward = self.policy.forward(features)
        loss = -forward.log_probability(target)
        gradients = self.policy.backward(forward, target)
        self.policy.apply_gradients(gradients, learning_rate=learning_rate)
        return loss

    # -- internals ----------------------------------------------------------------

    def _materialise(
        self,
        prompt: GenerationPrompt,
        decoding: DecodingResult,
        iteration: int,
        salt: str = "",
    ) -> GenerationCandidate:
        rendered = self.grammar.render(prompt, decoding.decisions)
        patch = self._patch(prompt.context, rendered)
        fault_id = stable_fault_id(
            prompt.spec.description,
            rendered.function_source,
            salt=f"{iteration}:{salt}:{decoding.strategy}",
        )
        fault = GeneratedFault(
            fault_id=fault_id,
            spec=prompt.spec,
            code=rendered.function_source,
            patch=patch,
            actions=decoding.decisions.to_dict(),
            logprob=decoding.logprob,
            iteration=iteration,
            model_version=self.model_version,
            metadata={
                "strategy": decoding.strategy,
                "operator": rendered.operator,
                "notes": list(rendered.notes),
                "feedback_directives": dict(prompt.feedback_directives),
            },
        )
        return GenerationCandidate(
            fault=fault, decisions=decoding.decisions, rendered=rendered, logprob=decoding.logprob
        )

    @staticmethod
    def _patch(context: CodeContext | None, rendered: RenderedFault) -> Patch | None:
        if context is None or rendered.module_source is None:
            return None
        return Patch(
            original=context.source,
            mutated=rendered.module_source,
            target_path=context.path,
            function=rendered.function_name,
            operator=rendered.operator,
        )
