"""Feature encoding of generation prompts.

The encoder flattens a :class:`~repro.nlp.prompt_builder.GenerationPrompt`
into a fixed-size numpy vector: one-hot encodings of the categorical spec
fields, boolean directive and code-context flags, and a hashed bag-of-words of
the description.  Hashing keeps the vector size independent of vocabulary
growth, which is the property a real tokenizer/embedding stack provides.

Encoding is the per-prompt analogue of tokenization, and campaigns re-encode
the same prompts thousands of times (every RLHF iteration re-submits the same
prompt set; every alignment probe re-encodes it again).  The encoder therefore
memoizes encoded vectors under :meth:`GenerationPrompt.cache_key` — the same
prefix-reuse idea serving stacks apply to repeated prompts — with an LRU bound
from ``ModelConfig.encoder_cache_size``.  Cached vectors are returned
read-only so a cache hit can never be corrupted by a caller mutating its
view; :meth:`encode_batch` stacks them into the ``(B, feature_dim)`` matrices
the batched policy network consumes.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..config import ModelConfig
from ..errors import ConfigurationError
from ..types import FaultType, HandlingStyle, TriggerKind
from ..nlp.prompt_builder import GenerationPrompt

_FAULT_TYPES = [fault_type.value for fault_type in FaultType]
_TRIGGERS = [kind.value for kind in TriggerKind]
_HANDLINGS = [style.value for style in HandlingStyle]
_DIRECTIVE_FLAGS = (
    "wants_retry",
    "wants_logging",
    "wants_unhandled",
    "wants_fallback",
    "replaces_previous_behaviour",
)
_CODE_FLAGS = ("has_code", "selected_has_try", "selected_has_loop", "selected_has_return")


def _stable_bucket(token: str, buckets: int) -> int:
    digest = hashlib.md5(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % buckets


class FeatureEncoder:
    """Maps generation prompts to fixed-size feature vectors."""

    def __init__(self, config: ModelConfig | None = None) -> None:
        self._config = config or ModelConfig()
        self._fixed_size = (
            len(_FAULT_TYPES)
            + len(_TRIGGERS)
            + len(_HANDLINGS)
            + len(_DIRECTIVE_FLAGS)
            + len(_CODE_FLAGS)
            + 3  # confidence, has_condition, has_probability
        )
        if self._config.feature_dim <= self._fixed_size + 8:
            raise ConfigurationError(
                f"feature_dim must exceed {self._fixed_size + 8} to leave room for hashed text features"
            )
        self._hash_size = self._config.feature_dim - self._fixed_size
        self._cache: OrderedDict[str, np.ndarray] = OrderedDict()
        self._cache_lock = threading.Lock()
        self._cache_hits = 0
        self._cache_misses = 0

    @property
    def dimension(self) -> int:
        """Total length of encoded feature vectors."""
        return self._config.feature_dim

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters of the prompt-hash encoding cache."""
        with self._cache_lock:
            return {
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "size": len(self._cache),
                "max_size": self._config.encoder_cache_size,
            }

    def clear_cache(self) -> None:
        """Drop all memoized encodings (counters included)."""
        with self._cache_lock:
            self._cache.clear()
            self._cache_hits = 0
            self._cache_misses = 0

    def export_cache(self) -> dict[str, np.ndarray]:
        """A snapshot of the encoding cache for cross-process persistence."""
        with self._cache_lock:
            return dict(self._cache)

    def import_cache(self, entries: dict[str, np.ndarray]) -> int:
        """Merge previously exported encodings, respecting the LRU bound.

        Vectors whose length does not match this encoder's ``feature_dim``
        are skipped (the cache may have been saved under a different model
        configuration).

        Returns:
            The number of entries actually installed.
        """
        if self._config.encoder_cache_size <= 0:
            return 0
        installed = 0
        with self._cache_lock:
            for key, vector in entries.items():
                if key in self._cache or vector.shape != (self.dimension,):
                    continue
                vector = np.asarray(vector, dtype=np.float64)
                vector.flags.writeable = False
                self._cache[key] = vector
                installed += 1
            while len(self._cache) > self._config.encoder_cache_size:
                self._cache.popitem(last=False)
        return installed

    def encode(self, prompt: GenerationPrompt) -> np.ndarray:
        """Encode a prompt into a float vector of length :attr:`dimension`.

        Results are memoized by prompt hash; cache hits return the stored
        vector directly (marked read-only) instead of re-hashing the
        description bag-of-words.
        """
        if self._config.encoder_cache_size <= 0:
            return self._encode_uncached(prompt)
        key = prompt.cache_key()
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache_hits += 1
                self._cache.move_to_end(key)
                return cached
            self._cache_misses += 1
        encoded = self._encode_uncached(prompt)
        encoded.flags.writeable = False
        with self._cache_lock:
            self._cache[key] = encoded
            while len(self._cache) > self._config.encoder_cache_size:
                self._cache.popitem(last=False)
        return encoded

    def encode_batch(self, prompts: list[GenerationPrompt]) -> np.ndarray:
        """Encode many prompts into one ``(B, feature_dim)`` matrix."""
        if not prompts:
            return np.zeros((0, self.dimension), dtype=np.float64)
        return np.stack([self.encode(prompt) for prompt in prompts])

    def _encode_uncached(self, prompt: GenerationPrompt) -> np.ndarray:
        features = prompt.to_features()
        fixed = np.zeros(self._fixed_size, dtype=np.float64)
        offset = 0

        offset = self._one_hot(fixed, offset, _FAULT_TYPES, features["fault_type"])
        offset = self._one_hot(fixed, offset, _TRIGGERS, features["trigger_kind"])
        offset = self._one_hot(fixed, offset, _HANDLINGS, features["handling"])

        directives = features.get("directives", {})
        for flag in _DIRECTIVE_FLAGS:
            fixed[offset] = 1.0 if directives.get(flag) else 0.0
            offset += 1

        code = features.get("code", {})
        for flag in _CODE_FLAGS:
            fixed[offset] = 1.0 if code.get(flag) else 0.0
            offset += 1

        fixed[offset] = float(features.get("confidence", 0.0))
        fixed[offset + 1] = 1.0 if features.get("has_condition") else 0.0
        fixed[offset + 2] = 1.0 if features.get("has_probability") else 0.0

        hashed = np.zeros(self._hash_size, dtype=np.float64)
        tokens = list(features.get("description_words", []))
        tokens.extend(f"entity:{label}" for label in features.get("entity_labels", []))
        tokens.extend(f"call:{name}" for name in code.get("selected_calls", []))
        tokens.extend(f"arg:{name}" for name in code.get("selected_args", []))
        for token in tokens:
            hashed[_stable_bucket(token, self._hash_size)] += 1.0
        norm = np.linalg.norm(hashed)
        if norm > 0:
            hashed /= norm

        return np.concatenate([fixed, hashed])

    @staticmethod
    def _one_hot(vector: np.ndarray, offset: int, vocabulary: list[str], value: str) -> int:
        try:
            vector[offset + vocabulary.index(value)] = 1.0
        except ValueError:
            pass
        return offset + len(vocabulary)
