"""Grammar-constrained rendering of decision vectors into faulty Python code.

The grammar is the bridge between the neural policy and the injection
substrate: given a fault specification, the (optional) target code, and a
:class:`~repro.llm.decisions.DecisionVector`, it produces the faulty function
source the tester reviews and — when target code was supplied — the mutated
module source the integration tool installs.

Two rendering paths exist:

* *scenario templates* (exceptions, timeouts, network/disk failures, delays,
  leaks, deadlocks) are rendered textually, so the generated snippet carries
  the explanatory comments testers expect (mirroring the paper's running
  example), wrapped in the trigger guard and handling style the decisions ask
  for;
* *mutation templates* (off-by-one, wrong condition, missing call, swallowed
  exception, ...) are realised by applying the corresponding AST fault
  operators from :mod:`repro.injection` to the target function, falling back
  to a textual approximation when no operator applies.

Every rendered snippet is re-parsed before being returned, so the grammar can
guarantee syntactic validity — the property motivating grammar-constrained
decoding in DESIGN.md.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..errors import GrammarError, InjectionError, ReproError
from ..injection import ProgrammableInjector, ast_utils, get_operator
from ..nlp.prompt_builder import GenerationPrompt
from ..rng import SeededRNG
from ..types import FaultSpec, FaultType, HandlingStyle, PlacementStyle, TriggerKind
from .cache import KeyedLruCache
from .decisions import DecisionVector

_INDENT = "    "

#: Templates rendered textually as failure scenarios.
SCENARIO_TEMPLATES: dict[FaultType, tuple[str, str]] = {
    FaultType.EXCEPTION: ("RuntimeError", "injected failure"),
    FaultType.TIMEOUT: ("TimeoutError", "Database transaction timeout"),
    FaultType.NETWORK_FAILURE: ("ConnectionError", "upstream service unreachable"),
    FaultType.DISK_FAILURE: ("OSError", "storage write failed"),
}

#: Preferred injection operators per mutation template, in order.
MUTATION_OPERATORS: dict[FaultType, tuple[str, ...]] = {
    FaultType.OFF_BY_ONE: ("off_by_one", "relax_comparison", "early_loop_exit"),
    FaultType.WRONG_VALUE: ("wrong_value_assignment", "wrong_argument", "swap_arguments"),
    FaultType.WRONG_CONDITION: ("negate_condition", "relax_comparison"),
    FaultType.MISSING_CHECK: ("remove_if_guard",),
    FaultType.MISSING_CALL: ("remove_call",),
    FaultType.MISSING_RETURN: ("remove_return",),
    FaultType.WRONG_RETURN: ("wrong_return_value", "return_corruption"),
    FaultType.SWALLOWED_EXCEPTION: ("swallow_exception", "remove_raise", "broad_except"),
    FaultType.INFINITE_LOOP: ("infinite_loop",),
    FaultType.DATA_CORRUPTION: ("arithmetic_corruption", "return_corruption"),
    FaultType.RACE_CONDITION: ("remove_lock", "split_atomic_update"),
    FaultType.MEMORY_LEAK: ("memory_leak",),
    FaultType.RESOURCE_LEAK: ("resource_leak", "skip_cleanup_on_error"),
}


@dataclass
class RenderedFault:
    """The concrete faulty code produced by the grammar."""

    function_name: str
    function_source: str
    module_source: str | None = None
    original_module_source: str | None = None
    operator: str | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def is_module_level(self) -> bool:
        return self.module_source is not None


class CodeGrammar:
    """Renders decision vectors into syntactically valid faulty Python.

    Rendering is deterministic for a given (prompt, decisions) pair — all
    randomness comes from keyed RNG forks that depend only on the seed and the
    operator name — so results are memoized under
    ``(prompt.cache_key(), decisions)`` with an LRU bound of ``cache_size``
    entries (``0`` disables caching).  Campaign and RLHF workloads render the
    same greedy decision assignment for the same prompt on every iteration;
    the cache turns those repeats into dictionary lookups.  Cached
    :class:`RenderedFault` objects are shared and must be treated as
    immutable (callers already copy ``notes`` before attaching them to
    generated faults).
    """

    def __init__(
        self,
        injector: ProgrammableInjector | None = None,
        rng: SeededRNG | None = None,
        cache_size: int = 1024,
    ) -> None:
        self._rng = rng or SeededRNG(0, namespace="grammar")
        self._injector = injector or ProgrammableInjector(rng=self._rng.fork("injector"))
        self._cache = KeyedLruCache(cache_size)

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters of the render memoization cache."""
        return self._cache.cache_info()

    def export_cache(self) -> dict[tuple, RenderedFault]:
        """A snapshot of the render cache for cross-process persistence."""
        return self._cache.export()

    def import_cache(self, entries: dict[tuple, RenderedFault]) -> int:
        """Merge previously exported rendered faults, respecting the LRU bound.

        Returns:
            The number of entries actually installed.
        """
        return self._cache.import_entries(entries)

    # -- public API --------------------------------------------------------------

    def render(self, prompt: GenerationPrompt, decisions: DecisionVector) -> RenderedFault:
        """Render ``decisions`` for ``prompt`` into faulty code."""
        if not self._cache.enabled:
            return self._render(prompt, decisions)
        key = (prompt.cache_key(), tuple(sorted(decisions.to_dict().items())))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        rendered = self._render(prompt, decisions)
        self._cache.put(key, rendered)
        return rendered

    def accepts(self, prompt: GenerationPrompt, decisions: DecisionVector) -> bool:
        """Whether the interpreted grammar can render ``decisions`` for ``prompt``.

        The grammar *is* the validity oracle of the decision space: a
        decision assignment is acceptable exactly when rendering it produces
        syntactically valid faulty code.  The compiled-decode property tests
        use this to pin that every automaton-guided decision stays inside
        the interpreted grammar's language.
        """
        try:
            decisions.validate()
            self.render(prompt, decisions)
        except ReproError:
            return False
        return True

    def _render(self, prompt: GenerationPrompt, decisions: DecisionVector) -> RenderedFault:
        decisions.validate()
        spec = prompt.spec
        fault_type = decisions.fault_type
        function_name = self._target_function_name(prompt)
        module_source = prompt.context.source if prompt.context is not None else None

        rendered: RenderedFault | None = None
        if fault_type in MUTATION_OPERATORS and module_source is not None:
            rendered = self._render_with_operators(
                module_source, function_name, fault_type, spec, decisions
            )
        if rendered is None:
            rendered = self._render_scenario(prompt, decisions, function_name, module_source)
        self._validate(rendered)
        return rendered

    # -- operator-backed rendering -----------------------------------------------

    def _render_with_operators(
        self,
        module_source: str,
        function_name: str,
        fault_type: FaultType,
        spec: FaultSpec,
        decisions: DecisionVector,
    ) -> RenderedFault | None:
        bare_name = function_name.split(".")[-1]
        parameters = self._operator_parameters(spec, decisions)
        for operator_name in MUTATION_OPERATORS[fault_type]:
            operator = get_operator(operator_name)
            points = [
                point
                for point in operator.find_points(module_source)
                if point.function == bare_name or point.qualified_function == function_name
            ]
            if not points:
                continue
            try:
                applied = operator.apply(
                    module_source,
                    points[0],
                    rng=self._rng.fork(f"render:{operator_name}"),
                    parameters=parameters,
                )
            except InjectionError:
                continue
            function_source = ast_utils.function_source(applied.patch.mutated, bare_name)
            return RenderedFault(
                function_name=function_name,
                function_source=function_source,
                module_source=applied.patch.mutated,
                original_module_source=module_source,
                operator=operator_name,
                notes=[applied.description],
            )
        return None

    @staticmethod
    def _operator_parameters(spec: FaultSpec, decisions: DecisionVector) -> dict:
        parameters = dict(spec.parameters)
        factor = decisions.severity_factor
        parameters.setdefault("seconds", 0.01 * factor)
        parameters["seconds"] = float(parameters["seconds"])
        parameters.setdefault("magnitude", max(1, int(factor * 2)))
        parameters.setdefault("payload_size", int(1024 * factor))
        if spec.trigger.kind is TriggerKind.ON_NTH_CALL and spec.trigger.nth_call:
            parameters.setdefault("nth_call", spec.trigger.nth_call)
        return parameters

    # -- scenario rendering --------------------------------------------------------

    def _render_scenario(
        self,
        prompt: GenerationPrompt,
        decisions: DecisionVector,
        function_name: str,
        module_source: str | None,
    ) -> RenderedFault:
        spec = prompt.spec
        bare_name = function_name.split(".")[-1]
        signature, docstring, original_body = self._original_parts(prompt, bare_name)

        fault_lines, imports, notes = self._fault_block(spec, decisions, bare_name)
        guarded = self._apply_trigger(fault_lines, spec, decisions, bare_name)
        body = self._place(guarded, original_body, decisions.placement_style, spec, decisions, bare_name)

        lines = [signature]
        if docstring:
            lines.append(_INDENT + docstring)
        for import_line in imports:
            lines.append(_INDENT + import_line)
        for line in body:
            lines.append(_INDENT + line if line else "")
        function_source = "\n".join(lines) + "\n"

        new_module_source = None
        if module_source is not None:
            try:
                new_module_source = ast_utils.replace_function_source(
                    module_source, bare_name, function_source
                )
            except Exception as exc:  # pragma: no cover - defensive, validated below
                raise GrammarError(f"failed to splice generated function into module: {exc}") from exc

        return RenderedFault(
            function_name=function_name,
            function_source=function_source,
            module_source=new_module_source,
            original_module_source=module_source,
            operator=None,
            notes=notes,
        )

    def _original_parts(self, prompt: GenerationPrompt, bare_name: str) -> tuple[str, str | None, list[str]]:
        """Signature line, docstring literal, and unparsed body lines of the target."""
        context = prompt.context
        if context is not None:
            tree = ast_utils.parse_module(context.source, mutable=False)
            node = ast_utils.find_function(tree, bare_name)
        else:
            node = None
        if node is None:
            arguments = self._guess_arguments(prompt.spec)
            signature = f"def {bare_name}({arguments}):"
            return signature, None, ["pass"]
        signature = f"def {node.name}({ast.unparse(node.args)}):"
        docstring_literal = None
        body = list(node.body)
        if body and ast_utils.is_docstring(body[0]):
            docstring_literal = repr(ast.get_docstring(node))
            body = body[1:]
        body_lines: list[str] = []
        for statement in body:
            body_lines.extend(ast.unparse(statement).splitlines())
        if not body_lines:
            body_lines = ["pass"]
        return signature, docstring_literal, body_lines

    @staticmethod
    def _guess_arguments(spec: FaultSpec) -> str:
        components = spec.parameters.get("components", [])
        if components:
            primary = str(components[0]).replace(" ", "_")
            return f"{primary}_details"
        return "*args, **kwargs"

    def _fault_block(
        self, spec: FaultSpec, decisions: DecisionVector, function_name: str
    ) -> tuple[list[str], list[str], list[str]]:
        """The core fault statements, needed imports, and human-readable notes."""
        fault_type = decisions.fault_type
        handling = decisions.handling_style
        factor = decisions.severity_factor
        imports: list[str] = []
        notes: list[str] = []

        if fault_type in SCENARIO_TEMPLATES:
            default_exception, default_message = SCENARIO_TEMPLATES[fault_type]
            exception = spec.parameters.get("exception", default_exception)
            message = spec.parameters.get("message", default_message)
            lines = self._exception_block(exception, message, handling, spec, function_name)
            notes.append(
                f"Simulated {fault_type.value.replace('_', ' ')} raising {exception} "
                f"with {handling.value} handling."
            )
            return lines, imports, notes

        if fault_type is FaultType.DELAY:
            seconds = float(spec.parameters.get("seconds", 0.05)) * factor
            imports.append("import time")
            lines = [
                "# Injected fault: simulate a slow dependency",
                f"time.sleep({seconds!r})",
            ]
            notes.append(f"Injected delay of {seconds} seconds.")
            return lines, imports, notes

        if fault_type is FaultType.MEMORY_LEAK:
            payload = int(1024 * factor)
            lines = [
                "# Injected fault: memory grows on every call and is never reclaimed",
                f"globals().setdefault('_injected_leak', []).append(bytearray({payload}))",
            ]
            notes.append("Injected unbounded memory growth.")
            return lines, imports, notes

        if fault_type is FaultType.RESOURCE_LEAK:
            imports.append("import os")
            lines = [
                "# Injected fault: the file handle below is never closed",
                "globals().setdefault('_injected_open_handles', []).append(open(os.devnull, 'w'))",
            ]
            notes.append("Injected resource leak (file handle never closed).")
            return lines, imports, notes

        if fault_type is FaultType.DEADLOCK:
            imports.append("import threading")
            lines = [
                "# Injected fault: re-acquiring a non-reentrant lock blocks forever",
                "_injected_lock = threading.Lock()",
                "_injected_lock.acquire()",
                "_injected_lock.acquire()",
            ]
            notes.append("Injected deadlock through double lock acquisition.")
            return lines, imports, notes

        if fault_type is FaultType.RACE_CONDITION:
            imports.append("import time")
            seconds = 0.002 * factor
            lines = [
                "# Injected fault: widen the race window inside the critical section",
                f"time.sleep({seconds!r})",
            ]
            notes.append("Widened race window (no lock protects the following update).")
            return lines, imports, notes

        if fault_type is FaultType.INFINITE_LOOP:
            lines = [
                "# Injected fault: the loop below never terminates",
                "while True:",
                _INDENT + "pass",
            ]
            notes.append("Injected non-terminating loop.")
            return lines, imports, notes

        if fault_type is FaultType.DATA_CORRUPTION:
            lines = [
                "# Injected fault: silently corrupt intermediate state",
                "_injected_corruption = globals().setdefault('_injected_corruption_count', 0) + 1",
                "globals()['_injected_corruption_count'] = _injected_corruption",
            ]
            notes.append("Injected silent state corruption marker.")
            return lines, imports, notes

        # Mutation templates that could not be realised by an operator are
        # approximated with an explicit failure so the fault still activates.
        exception = spec.parameters.get("exception", "RuntimeError")
        message = f"injected {fault_type.value.replace('_', ' ')} in {function_name}"
        lines = self._exception_block(exception, message, handling, spec, function_name)
        notes.append(
            f"Approximated {fault_type.value.replace('_', ' ')} with an explicit {exception} "
            "because no structural injection point was available."
        )
        return lines, imports, notes

    def _exception_block(
        self,
        exception: str,
        message: str,
        handling: HandlingStyle,
        spec: FaultSpec,
        function_name: str,
    ) -> list[str]:
        """Raise + handling skeleton mirroring the paper's running example."""
        raise_line = f"raise {exception}({message!r})"
        if handling is HandlingStyle.UNHANDLED:
            return [
                "# Injected fault: the failure below is not handled anywhere",
                raise_line,
            ]
        lines = [
            "try:",
            _INDENT + "# Simulated failing operation",
            _INDENT + raise_line,
            f"except {exception} as e:",
        ]
        if handling is HandlingStyle.LOGGED_ONLY:
            lines += [
                _INDENT + f"print('{function_name} failed:', e)",
                _INDENT + "# Missing exception handling logic",
            ]
        elif handling is HandlingStyle.RETRY:
            retries = int(spec.parameters.get("retries", 3))
            lines += [
                _INDENT + f"print('Attempting to retry {function_name}')",
                _INDENT + f"for _attempt in range({retries}):",
                _INDENT * 2 + "# Logic for retrying the operation upon failure",
                _INDENT * 2 + "break",
            ]
        elif handling is HandlingStyle.RERAISE:
            lines += [
                _INDENT + f"print('{function_name} failed:', e)",
                _INDENT + "raise",
            ]
        elif handling is HandlingStyle.FALLBACK:
            lines += [
                _INDENT + f"print('{function_name} falling back to a default result:', e)",
                _INDENT + "return None",
            ]
        return lines

    def _apply_trigger(
        self, fault_lines: list[str], spec: FaultSpec, decisions: DecisionVector, function_name: str
    ) -> list[str]:
        """Wrap the fault block in the activation guard the decisions request."""
        kind = decisions.trigger_kind
        if kind is TriggerKind.ALWAYS:
            return fault_lines
        if kind is TriggerKind.PROBABILISTIC:
            probability = spec.trigger.probability if spec.trigger.probability is not None else 0.5
            guard = [
                "import random",
                f"if random.random() < {probability!r}:",
            ]
            return guard + [_INDENT + line if line else "" for line in fault_lines]
        if kind is TriggerKind.ON_NTH_CALL:
            nth = spec.trigger.nth_call or 3
            guard = [
                "_injected_calls = globals().setdefault('_injected_call_counts', {})",
                f"_injected_calls['{function_name}'] = _injected_calls.get('{function_name}', 0) + 1",
                f"if _injected_calls['{function_name}'] % {nth} == 0:",
            ]
            return guard + [_INDENT + line if line else "" for line in fault_lines]
        # CONDITIONAL: try to bind the condition to a function argument.
        condition = spec.trigger.condition or "the trigger condition holds"
        predicate = self._condition_predicate(condition, spec)
        guard = [f"if {predicate}:  # when {condition}"]
        return guard + [_INDENT + line if line else "" for line in fault_lines]

    @staticmethod
    def _condition_predicate(condition: str, spec: FaultSpec) -> str:
        words = {word.strip(",.!?").lower() for word in condition.split()}
        negative_markers = {"empty", "missing", "none", "no", "not", "without", "unavailable"}
        arguments: list[str] = []
        for entity in spec.entities:
            if entity.label.value == "function":
                continue
        components = spec.parameters.get("components", [])
        candidates = list(words & set(components)) if components else []
        if candidates:
            name = candidates[0].replace(" ", "_")
            if words & negative_markers:
                return f"not locals().get({name!r}, True)"
            return f"bool(locals().get({name!r}, True))"
        return "True"

    def _place(
        self,
        fault_lines: list[str],
        original_body: list[str],
        placement: PlacementStyle,
        spec: FaultSpec,
        decisions: DecisionVector,
        function_name: str,
    ) -> list[str]:
        """Compose the fault block and the original body per the placement decision."""
        original = list(original_body)
        if placement is PlacementStyle.BEFORE_RETURN:
            for index in range(len(original) - 1, -1, -1):
                if original[index].lstrip().startswith("return"):
                    return original[:index] + fault_lines + original[index:]
            return original + fault_lines
        if placement is PlacementStyle.WRAP_BODY:
            if decisions.fault_type in SCENARIO_TEMPLATES and decisions.handling_style is not HandlingStyle.UNHANDLED:
                # The try/except produced by the fault block already represents
                # the wrapped operation; the original body runs after recovery.
                return fault_lines + original
            return fault_lines + original
        # BODY_START and INSIDE_LOOP (the latter is meaningful only for the
        # operator-backed path; textual rendering treats it as body start).
        return fault_lines + original

    # -- validation ----------------------------------------------------------------

    @staticmethod
    def _validate(rendered: RenderedFault) -> None:
        try:
            ast.parse(rendered.function_source)
        except SyntaxError as exc:
            raise GrammarError(f"generated function is not valid Python: {exc}") from exc
        if rendered.module_source is not None:
            try:
                ast.parse(rendered.module_source)
            except SyntaxError as exc:
                raise GrammarError(f"generated module is not valid Python: {exc}") from exc

    @staticmethod
    def _target_function_name(prompt: GenerationPrompt) -> str:
        if prompt.target_function:
            return prompt.target_function
        if prompt.context is not None and prompt.context.functions:
            selected = prompt.context.selected or prompt.context.functions[0]
            return selected.qualified_name
        return "target_function"
