"""Compiled fault-grammar automatons for constrained decoding.

The interpreted constrained-decoding path re-derives every prompt's decoding
constraints on each call and applies them by copying the policy's probability
matrices and overwriting constrained rows with one-hots
(:meth:`~repro.llm.generator.FaultGenerator._constrained_distributions`).
That work is pure per-prompt: the constraint set depends only on the prompt's
spec and feedback directives, never on the sampled path.  This module borrows
the compiled-grammar idiom of constrained-decoding inference stacks (compile
once per grammar, mask invalid tokens per step, *jump forward* through
force-determined runs):

* :func:`constraint_slots` — the single source of truth for which decision
  slots a prompt pins (spec-confidence template constraint plus explicit
  tester-feedback directives);
* :class:`DecisionAutomaton` — the compiled form: per-step boolean validity
  masks over every decision slot, with fully force-determined slots promoted
  to *jump-forward* transitions the decoder resolves without touching the
  probability matrices;
* :class:`GrammarCompiler` — compiles and caches one automaton per prompt,
  keyed by ``prompt.cache_key()`` like the ``CodeGrammar`` render cache, with
  the same ``cache_info()`` / ``export_cache()`` / ``import_cache()`` surface
  so the engine can persist warm automatons alongside rendered faults;
* :class:`DecodePlan` — per-call sampling tables (tempered/truncated CDFs)
  that let repeated sampling replay a categorical draw with one uniform and
  one ``searchsorted`` per slot, bit-identical to the interpreted
  ``Generator.choice`` stream.

Equivalence contract: for the same prompt, distributions, seed, and sampling
parameters, the compiled path consumes the decoder RNG exactly like the
interpreted path (one uniform per slot per sampled attempt, none for greedy)
and selects identical decision indices — including the ~1e-12 probability
tail that temperature scaling leaves on non-forced values of a one-hot slot,
which the plan reproduces by replaying the tempered one-hot CDF instead of
short-circuiting to the forced index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ModelConfig
from ..nlp.prompt_builder import GenerationPrompt
from .cache import KeyedLruCache
from .decisions import DECISION_SLOTS

#: Log-probability an interpreted one-hot slot contributes to the joint
#: (``log(1.0 + 1e-12)``); forced-slot readback must reproduce it bit-exactly.
FORCED_LOGPROB = float(np.log(1.0 + 1e-12))


def feedback_forced_slots(prompt: GenerationPrompt) -> dict[str, str]:
    """Decision slots pinned by explicit tester feedback directives.

    The initial generation is left entirely to the learned policy, but once a
    tester states a requirement in a refinement round ("introduce a retry
    mechanism", "make it intermittent"), decoding is constrained so the
    requirement is honoured deterministically — the decision-level analogue
    of instruction-constrained decoding.
    """
    directives = prompt.feedback_directives
    forced: dict[str, str] = {}
    if not directives:
        return forced
    handling = directives.get("handling")
    if handling in DECISION_SLOTS["handling"]:
        forced["handling"] = handling
    fault_type = directives.get("fault_type")
    if fault_type in DECISION_SLOTS["template"]:
        forced["template"] = fault_type
    trigger = directives.get("trigger")
    if trigger in DECISION_SLOTS["trigger"]:
        forced["trigger"] = trigger
    severity = directives.get("severity")
    if severity in DECISION_SLOTS["severity"]:
        forced["severity"] = severity
    if directives.get("wants_retry") and "handling" not in forced:
        forced["handling"] = "retry"
    if directives.get("wants_fallback") and "handling" not in forced:
        forced["handling"] = "fallback"
    if directives.get("wants_unhandled") and "handling" not in forced:
        forced["handling"] = "unhandled"
    return forced


def spec_constraint(prompt: GenerationPrompt, config: ModelConfig) -> dict[str, str]:
    """Pin the fault template to the spec's fault type when extraction is confident.

    The structured specification *is* the contract between the tester and the
    generator: when the NLP engine is confident about the requested fault
    type, the model's freedom lies in how to realise it (handling, trigger,
    placement, severity), not in which fault to produce.  Disabled via
    ``ModelConfig.constrain_to_spec`` for the ablation benchmark.
    """
    if not config.constrain_to_spec:
        return {}
    spec = prompt.spec
    if spec.fault_type.value not in DECISION_SLOTS["template"]:
        return {}
    if spec.confidence < config.spec_constraint_threshold:
        return {}
    return {"template": spec.fault_type.value}


def constraint_slots(prompt: GenerationPrompt, config: ModelConfig) -> dict[str, str]:
    """Every decision slot the grammar pins for ``prompt`` (feedback wins).

    Merged exactly as the interpreted path does: the spec constraint first,
    explicit feedback directives layered on top.
    """
    constraints = spec_constraint(prompt, config)
    constraints.update(feedback_forced_slots(prompt))
    return constraints


@dataclass
class DecisionAutomaton:
    """The compiled decoding constraints of one prompt.

    ``masks`` holds one boolean validity vector per decision slot (``True``
    entries are decodable); any slot whose mask admits exactly one value is
    promoted into ``forced`` so the decoder can *jump forward* — resolve the
    slot from the automaton instead of running argmax/sampling machinery over
    the probability matrix.  Slots whose mask admits several-but-not-all
    values are indexed in ``partial_masks`` (today's grammar never produces
    them — constraints pin exactly one value — but the decoder honours them:
    masked-out decisions get exactly zero probability and are never
    selected).  ``jump_forward_taken`` counts the jump shortcuts; it is a
    plain integer (not lock-protected), so under concurrent decoding it is
    approximate — it exists for observability and tests, not billing.

    Automatons are plain data (numpy bool vectors + ints) and pickle cleanly
    for :meth:`GrammarCompiler.export_cache` persistence.
    """

    masks: dict[str, np.ndarray]
    forced: dict[str, int] = field(default_factory=dict)
    partial_masks: dict[str, np.ndarray] = field(default_factory=dict)
    jump_forward_taken: int = 0

    @classmethod
    def from_constraints(cls, constraints: dict[str, str]) -> "DecisionAutomaton":
        """Compile a slot->value constraint mapping into masks + jumps."""
        masks: dict[str, np.ndarray] = {}
        forced: dict[str, int] = {}
        partial: dict[str, np.ndarray] = {}
        for slot, values in DECISION_SLOTS.items():
            mask = np.ones(len(values), dtype=bool)
            pinned = constraints.get(slot)
            if pinned is not None:
                mask[:] = False
                mask[values.index(pinned)] = True
            masks[slot] = mask
        for slot, mask in masks.items():
            valid = np.flatnonzero(mask)
            if valid.size == 1:
                forced[slot] = int(valid[0])
            elif valid.size < mask.size:
                partial[slot] = mask
        return cls(masks=masks, forced=forced, partial_masks=partial)

    def is_forced(self, slot: str) -> bool:
        """Whether ``slot`` is fully force-determined (a jump-forward edge)."""
        return slot in self.forced

    def allows(self, slot: str, index: int) -> bool:
        """Whether decision ``index`` is valid for ``slot`` under the masks."""
        return bool(self.masks[slot][index])

    def constrain(self, distributions: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """The interpreted-equivalent constrained copies of raw distributions.

        Reference adapter (and masking fallback for partially-masked slots):
        forced slots become exact one-hots, free slots are copied verbatim —
        byte-identical to what the interpreted
        ``_constrained_distributions`` produces.
        """
        constrained = {slot: probs.copy() for slot, probs in distributions.items()}
        for slot, index in self.forced.items():
            constrained[slot][:] = 0.0
            constrained[slot][index] = 1.0
        return constrained


class DecodePlan:
    """Precomputed per-slot sampling tables for one (distributions, params) pair.

    The interpreted sampler recomputes temperature scaling and top-k/top-p
    truncation for every attempt of every slot; a plan runs that maths once
    and replays each categorical draw as ``cdf.searchsorted(u, 'right')`` —
    the exact formula ``numpy.random.Generator.choice`` applies internally,
    so replayed indices (and the RNG stream) are bit-identical to the
    interpreted path.  Forced slots keep a CDF too (the tempered one-hot):
    burning one uniform through it per attempt reproduces the interpreted
    stream *and* its residual ~1e-12 tail mass exactly.
    """

    __slots__ = ("cdfs", "forced")

    def __init__(self, cdfs: dict[str, np.ndarray], forced: dict[str, int]) -> None:
        self.cdfs = cdfs
        self.forced = forced

    @classmethod
    def for_sampling(
        cls,
        distributions: dict[str, np.ndarray],
        automaton: DecisionAutomaton,
        temperature: float,
        top_k: int | None,
        top_p: float | None,
    ) -> "DecodePlan":
        """Build the replay tables from *raw* per-slot probability vectors."""
        from .decoder import Decoder

        cdfs: dict[str, np.ndarray] = {}
        forced: dict[str, int] = {}
        for slot, probs in distributions.items():
            index = automaton.forced.get(slot)
            if index is not None:
                base = np.zeros_like(probs)
                base[index] = 1.0
                forced[slot] = index
            else:
                base = probs
            adjusted = Decoder._apply_temperature(base, temperature)
            adjusted = Decoder._truncate(adjusted, top_k, top_p)
            mask = automaton.partial_masks.get(slot)
            if mask is not None:
                # Partially-masked slots (compiled-only semantics): invalid
                # decisions get exactly zero mass, so their CDF segment has
                # zero width and replay can never select them.
                adjusted = np.where(mask, adjusted, 0.0)
                adjusted /= np.sum(adjusted)
            cdf = adjusted.cumsum()
            cdf /= cdf[-1]
            cdfs[slot] = cdf
        return cls(cdfs=cdfs, forced=forced)

    def replay(self, slot: str, uniform: float) -> int:
        """The index ``Generator.choice`` would return for draw ``uniform``."""
        return int(self.cdfs[slot].searchsorted(uniform, side="right"))


class GrammarCompiler:
    """Compiles prompts into cached :class:`DecisionAutomaton` objects.

    Keyed by ``prompt.cache_key()`` — the same key space as the
    ``CodeGrammar`` render cache — with an LRU bound of
    ``ModelConfig.compiled_cache_size`` entries (``0`` disables caching and
    recompiles per call).  Exposes the library's standard ``cache_info()`` /
    ``export_cache()`` / ``import_cache()`` persistence surface; automatons
    only depend on the prompt and the model config's constraint settings, so
    import snapshots only from a compiler with the same configuration (cache
    files are trusted input, as with the other caches).
    """

    def __init__(self, config: ModelConfig | None = None, cache_size: int | None = None) -> None:
        self._config = config or ModelConfig()
        bound = self._config.compiled_cache_size if cache_size is None else cache_size
        self._cache = KeyedLruCache(bound)
        self._plans = KeyedLruCache(bound)

    def compile(self, prompt: GenerationPrompt) -> DecisionAutomaton:
        """The (cached) compiled automaton for ``prompt``."""
        if not self._cache.enabled:
            return DecisionAutomaton.from_constraints(constraint_slots(prompt, self._config))
        key = prompt.cache_key()
        automaton = self._cache.get(key)
        if automaton is None:
            automaton = DecisionAutomaton.from_constraints(constraint_slots(prompt, self._config))
            self._cache.put(key, automaton)
        return automaton

    def plan_for(
        self,
        prompt: GenerationPrompt,
        distributions: dict[str, np.ndarray],
        temperature: float,
        top_k: int | None,
        top_p: float | None,
    ) -> DecodePlan:
        """The (cached) sampling plan for ``prompt`` under these parameters.

        The policy is frozen while serving, so a prompt's raw distributions —
        and therefore its replay CDFs — are stable across calls; rebuilding
        the tempered/truncated tables per call is the single largest cost of
        repeated compiled sampling.  Plans are cached per
        ``(prompt, temperature, top_k, top_p)`` and guarded by an exact
        array comparison against the distributions they were built from: if
        the policy's output for the prompt changes (training step, different
        checkpoint), the stale plan is rebuilt instead of replayed.  The plan
        cache is in-memory only — unlike automatons, plans embed policy
        outputs, so they are not part of :meth:`export_cache` snapshots.
        """
        automaton = self.compile(prompt)
        if not self._plans.enabled:
            return DecodePlan.for_sampling(distributions, automaton, temperature, top_k, top_p)
        key = (prompt.cache_key(), float(temperature), top_k, top_p)
        entry = self._plans.get(key)
        if entry is not None:
            cached_distributions, plan = entry
            if all(
                np.array_equal(cached_distributions[slot], distributions[slot])
                for slot in distributions
            ):
                return plan
        plan = DecodePlan.for_sampling(distributions, automaton, temperature, top_k, top_p)
        snapshot = {slot: probs.copy() for slot, probs in distributions.items()}
        self._plans.put(key, (snapshot, plan))
        return plan

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters of the automaton cache."""
        return self._cache.cache_info()

    def export_cache(self) -> dict:
        """A snapshot of the compiled automatons for cross-process persistence."""
        return self._cache.export()

    def import_cache(self, entries: dict) -> int:
        """Merge previously exported automatons, respecting the LRU bound.

        Returns:
            The number of entries actually installed.
        """
        return self._cache.import_entries(entries)
