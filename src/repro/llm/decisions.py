"""The decision schema of the fault-generation model.

Instead of emitting free-form tokens, the offline generation model emits a
small number of *decisions* — which fault template to realise, how to trigger
it, how the surrounding code handles it, where to place it, and how severe to
make it.  A grammar (:mod:`repro.llm.grammar`) renders any complete decision
assignment into syntactically valid faulty Python, so the model's output space
is exactly the space of faults the injection substrate can express.

Each decision slot is categorical; the policy network has one softmax head per
slot.  The mapping between :class:`~repro.types.FaultSpec` fields and decision
values is also defined here so that supervised fine-tuning targets can be
derived mechanically from injected-fault datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import GenerationError
from ..types import FaultSpec, FaultType, HandlingStyle, PlacementStyle, TriggerKind

#: Fault templates the grammar can render.  Every concrete FaultType has one.
TEMPLATES: tuple[str, ...] = tuple(fault_type.value for fault_type in FaultType.concrete())

TRIGGERS: tuple[str, ...] = tuple(kind.value for kind in TriggerKind)

HANDLINGS: tuple[str, ...] = tuple(style.value for style in HandlingStyle)

PLACEMENTS: tuple[str, ...] = tuple(style.value for style in PlacementStyle)

SEVERITIES: tuple[str, ...] = ("low", "medium", "high")

#: Ordered decision slots; the policy network creates one head per entry.
DECISION_SLOTS: dict[str, tuple[str, ...]] = {
    "template": TEMPLATES,
    "trigger": TRIGGERS,
    "handling": HANDLINGS,
    "placement": PLACEMENTS,
    "severity": SEVERITIES,
}


@dataclass(frozen=True)
class DecisionVector:
    """A complete assignment of every decision slot."""

    template: str
    trigger: str
    handling: str
    placement: str
    severity: str

    def to_dict(self) -> dict[str, str]:
        return {
            "template": self.template,
            "trigger": self.trigger,
            "handling": self.handling,
            "placement": self.placement,
            "severity": self.severity,
        }

    def to_indices(self) -> dict[str, int]:
        """Slot name -> index of the chosen value (for training targets)."""
        return {slot: DECISION_SLOTS[slot].index(value) for slot, value in self.to_dict().items()}

    @classmethod
    def from_dict(cls, data: Mapping[str, str]) -> "DecisionVector":
        vector = cls(
            template=data["template"],
            trigger=data["trigger"],
            handling=data["handling"],
            placement=data["placement"],
            severity=data["severity"],
        )
        vector.validate()
        return vector

    @classmethod
    def from_indices(cls, indices: Mapping[str, int]) -> "DecisionVector":
        values = {slot: DECISION_SLOTS[slot][index] for slot, index in indices.items()}
        return cls.from_dict(values)

    def validate(self) -> None:
        """Raise :class:`GenerationError` if any slot holds an unknown value."""
        for slot, value in self.to_dict().items():
            if value not in DECISION_SLOTS[slot]:
                raise GenerationError(f"invalid value {value!r} for decision slot {slot!r}")

    @property
    def fault_type(self) -> FaultType:
        return FaultType(self.template)

    @property
    def handling_style(self) -> HandlingStyle:
        return HandlingStyle(self.handling)

    @property
    def trigger_kind(self) -> TriggerKind:
        return TriggerKind(self.trigger)

    @property
    def placement_style(self) -> PlacementStyle:
        return PlacementStyle(self.placement)

    @property
    def severity_factor(self) -> float:
        """Numeric multiplier applied to template parameters (delay, payload, ...)."""
        return {"low": 0.5, "medium": 1.0, "high": 2.0}[self.severity]


def reference_decisions(spec: FaultSpec) -> DecisionVector:
    """The decision assignment a perfectly aligned model would emit for ``spec``.

    This is the supervision signal for SFT (targets derived from the injected
    dataset) and the yardstick the simulated testers use when rating candidate
    faults during RLHF.
    """
    fault_type = spec.fault_type if spec.fault_type is not FaultType.UNKNOWN else FaultType.EXCEPTION
    handling = spec.handling
    directives = spec.directives
    if directives.get("wants_retry"):
        handling = HandlingStyle.RETRY
    elif directives.get("wants_fallback"):
        handling = HandlingStyle.FALLBACK
    elif directives.get("wants_unhandled"):
        handling = HandlingStyle.UNHANDLED
    elif directives.get("wants_logging") and handling is HandlingStyle.UNHANDLED:
        handling = HandlingStyle.LOGGED_ONLY

    placement = PlacementStyle.WRAP_BODY
    if fault_type in (FaultType.DELAY, FaultType.MEMORY_LEAK, FaultType.RESOURCE_LEAK):
        placement = PlacementStyle.BODY_START
    elif fault_type in (FaultType.OFF_BY_ONE, FaultType.INFINITE_LOOP):
        placement = PlacementStyle.INSIDE_LOOP
    elif fault_type in (FaultType.WRONG_RETURN, FaultType.MISSING_RETURN, FaultType.DATA_CORRUPTION):
        placement = PlacementStyle.BEFORE_RETURN

    severity = "medium"
    seconds = spec.parameters.get("seconds")
    if isinstance(seconds, (int, float)):
        severity = "low" if seconds < 0.05 else ("high" if seconds > 1.0 else "medium")

    return DecisionVector(
        template=fault_type.value,
        trigger=spec.trigger.kind.value,
        handling=handling.value,
        placement=placement.value,
        severity=severity,
    )


def slot_sizes() -> dict[str, int]:
    """Number of categorical options per decision slot."""
    return {slot: len(values) for slot, values in DECISION_SLOTS.items()}


def decision_distance(left: DecisionVector, right: DecisionVector, weights: Mapping[str, float] | None = None) -> float:
    """Weighted fraction of decision slots on which two assignments disagree."""
    default_weights = {"template": 3.0, "trigger": 1.5, "handling": 2.0, "placement": 1.0, "severity": 0.5}
    weights = dict(default_weights, **(weights or {}))
    total = sum(weights.values())
    distance = 0.0
    left_map, right_map = left.to_dict(), right.to_dict()
    for slot, weight in weights.items():
        if left_map[slot] != right_map[slot]:
            distance += weight
    return distance / total
