"""Decoding strategies over the policy's per-slot distributions.

Mirrors the sampling controls of hosted LLM APIs: greedy decoding, temperature
sampling, top-k and nucleus (top-p) truncation.  The decoder returns both the
chosen :class:`DecisionVector` and its joint log-probability under the
*untruncated* distribution, which the RLHF policy-gradient step needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ModelConfig
from ..errors import GenerationError
from ..rng import SeededRNG
from .decisions import DECISION_SLOTS, DecisionVector


@dataclass
class DecodingResult:
    """A decoded decision assignment plus sampling metadata."""

    decisions: DecisionVector
    logprob: float
    slot_probabilities: dict[str, float]
    strategy: str


class Decoder:
    """Applies a decoding strategy to per-slot probability distributions."""

    def __init__(self, config: ModelConfig | None = None, rng: SeededRNG | None = None) -> None:
        self._config = config or ModelConfig()
        self._rng = rng or SeededRNG(self._config.seed, namespace="decoder")

    def greedy(self, distributions: dict[str, np.ndarray]) -> DecodingResult:
        """Pick the argmax value for every slot."""
        choices = {slot: int(np.argmax(probs)) for slot, probs in distributions.items()}
        return self._result(distributions, choices, strategy="greedy")

    def sample(
        self,
        distributions: dict[str, np.ndarray],
        temperature: float | None = None,
        top_k: int | None = None,
        top_p: float | None = None,
    ) -> DecodingResult:
        """Sample each slot with temperature / top-k / nucleus truncation."""
        temperature = temperature if temperature is not None else self._config.temperature
        top_k = top_k if top_k is not None else self._config.top_k
        top_p = top_p if top_p is not None else self._config.top_p
        if temperature <= 0:
            raise GenerationError("temperature must be positive")
        choices: dict[str, int] = {}
        for slot, probs in distributions.items():
            adjusted = self._apply_temperature(probs, temperature)
            adjusted = self._truncate(adjusted, top_k, top_p)
            choices[slot] = int(self._rng.generator.choice(len(adjusted), p=adjusted))
        return self._result(distributions, choices, strategy="sample")

    def diverse_candidates(
        self,
        distributions: dict[str, np.ndarray],
        count: int,
        temperature: float | None = None,
    ) -> list[DecodingResult]:
        """Greedy candidate first, then sampled candidates (deduplicated)."""
        if count <= 0:
            raise GenerationError("candidate count must be positive")
        results = [self.greedy(distributions)]
        seen = {tuple(sorted(results[0].decisions.to_dict().items()))}
        attempts = 0
        while len(results) < count and attempts < count * 10:
            attempts += 1
            candidate = self.sample(distributions, temperature=temperature or max(self._config.temperature, 1.2))
            key = tuple(sorted(candidate.decisions.to_dict().items()))
            if key not in seen:
                seen.add(key)
                results.append(candidate)
        while len(results) < count:
            results.append(self.sample(distributions, temperature=temperature or 1.5))
        return results[:count]

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _apply_temperature(probs: np.ndarray, temperature: float) -> np.ndarray:
        logits = np.log(probs + 1e-12) / temperature
        shifted = np.exp(logits - np.max(logits))
        return shifted / np.sum(shifted)

    @staticmethod
    def _truncate(probs: np.ndarray, top_k: int | None, top_p: float | None) -> np.ndarray:
        adjusted = probs.copy()
        if top_k is not None and top_k < len(adjusted):
            threshold_index = np.argsort(adjusted)[-top_k:]
            mask = np.zeros_like(adjusted, dtype=bool)
            mask[threshold_index] = True
            adjusted[~mask] = 0.0
        if top_p is not None and 0.0 < top_p < 1.0:
            order = np.argsort(adjusted)[::-1]
            cumulative = np.cumsum(adjusted[order])
            cutoff = int(np.searchsorted(cumulative, top_p)) + 1
            keep = order[:cutoff]
            mask = np.zeros_like(adjusted, dtype=bool)
            mask[keep] = True
            adjusted[~mask] = 0.0
        total = np.sum(adjusted)
        if total <= 0:
            return probs
        return adjusted / total

    @staticmethod
    def _result(
        distributions: dict[str, np.ndarray], choices: dict[str, int], strategy: str
    ) -> DecodingResult:
        values = {slot: DECISION_SLOTS[slot][index] for slot, index in choices.items()}
        decisions = DecisionVector.from_dict(values)
        logprob = 0.0
        slot_probabilities = {}
        for slot, index in choices.items():
            probability = float(distributions[slot][index])
            slot_probabilities[slot] = probability
            logprob += float(np.log(probability + 1e-12))
        return DecodingResult(
            decisions=decisions,
            logprob=logprob,
            slot_probabilities=slot_probabilities,
            strategy=strategy,
        )
