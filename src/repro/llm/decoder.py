"""Decoding strategies over the policy's per-slot distributions.

Mirrors the sampling controls of hosted LLM APIs: greedy decoding, temperature
sampling, top-k and nucleus (top-p) truncation.  The decoder returns both the
chosen :class:`DecisionVector` and its joint log-probability under the
*untruncated* distribution, which the RLHF policy-gradient step needs.

Every strategy also has a ``*_batch`` variant operating on ``(B, |slot|)``
probability matrices (one row per prompt): temperature and truncation are
applied row-wise with sorts and cumulative sums, and sampling draws one RNG
vector per slot for the whole batch instead of one scalar per (prompt, slot)
pair.  Batched greedy decoding is exactly equivalent to per-sample greedy;
batched sampling draws from the same truncated distributions but consumes the
RNG stream in a different order, so it is deterministic per batch rather than
per prompt.

Every strategy additionally accepts a compiled
:class:`~repro.llm.compiled_grammar.DecisionAutomaton` (and the ``*_batch``
variants a per-row automaton list).  With an automaton the decoder works on
the policy's *raw* distributions: force-determined slots are resolved by
jumping forward through the automaton instead of argmax/sampling machinery,
partially-masked slots never select zero-probability decisions, and sampled
slots replay the interpreted categorical draw through precomputed
:class:`~repro.llm.compiled_grammar.DecodePlan` CDF tables — consuming the
``SeededRNG`` stream bit-identically to the interpreted constrained path
(one uniform per slot per attempt, none for greedy).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..config import ModelConfig
from ..errors import GenerationError
from ..rng import SeededRNG
from .compiled_grammar import DecisionAutomaton, DecodePlan
from .decisions import DECISION_SLOTS, DecisionVector


@dataclass
class DecodingResult:
    """A decoded decision assignment plus sampling metadata."""

    decisions: DecisionVector
    logprob: float
    slot_probabilities: dict[str, float]
    strategy: str


class Decoder:
    """Applies a decoding strategy to per-slot probability distributions."""

    def __init__(self, config: ModelConfig | None = None, rng: SeededRNG | None = None) -> None:
        self._config = config or ModelConfig()
        self._rng = rng or SeededRNG(self._config.seed, namespace="decoder")

    def greedy(
        self, distributions: dict[str, np.ndarray], automaton: DecisionAutomaton | None = None
    ) -> DecodingResult:
        """Pick the argmax value for every slot.

        With a compiled ``automaton`` the input distributions are the *raw*
        policy outputs: forced slots jump forward to their pinned index
        without touching the probability vector, partially-masked slots take
        the argmax over valid entries only, and the result mirrors the
        interpreted constrained readback exactly (forced slots report
        probability 1.0).
        """
        if automaton is None:
            choices = {slot: int(np.argmax(probs)) for slot, probs in distributions.items()}
            return self._result(distributions, choices, strategy="greedy")
        choices = {}
        for slot, probs in distributions.items():
            index = automaton.forced.get(slot)
            if index is not None:
                automaton.jump_forward_taken += 1
            elif slot in automaton.partial_masks:
                index = int(np.argmax(np.where(automaton.partial_masks[slot], probs, -np.inf)))
            else:
                index = int(np.argmax(probs))
            choices[slot] = index
        return self._result_compiled(distributions, choices, "greedy", automaton)

    def sample(
        self,
        distributions: dict[str, np.ndarray],
        temperature: float | None = None,
        top_k: int | None = None,
        top_p: float | None = None,
        automaton: DecisionAutomaton | None = None,
        plan: DecodePlan | None = None,
    ) -> DecodingResult:
        """Sample each slot with temperature / top-k / nucleus truncation.

        With a compiled ``automaton`` each slot's categorical draw is
        replayed through a :class:`DecodePlan` CDF table instead of the
        per-attempt temperature/truncation maths.  One uniform is consumed
        per slot either way — forced slots burn theirs through the tempered
        one-hot CDF — so the RNG stream and the chosen indices are
        bit-identical to the interpreted path.  A caller-supplied ``plan``
        must have been built for these distributions and sampling parameters
        (:meth:`diverse_candidates` and the dedup-aware generator reuse one
        plan across attempts and duplicate prompts).
        """
        temperature = temperature if temperature is not None else self._config.temperature
        top_k = top_k if top_k is not None else self._config.top_k
        top_p = top_p if top_p is not None else self._config.top_p
        if temperature <= 0:
            raise GenerationError("temperature must be positive")
        if automaton is None:
            choices: dict[str, int] = {}
            for slot, probs in distributions.items():
                adjusted = self._apply_temperature(probs, temperature)
                adjusted = self._truncate(adjusted, top_k, top_p)
                choices[slot] = int(self._rng.generator.choice(len(adjusted), p=adjusted))
            return self._result(distributions, choices, strategy="sample")
        if plan is None:
            plan = DecodePlan.for_sampling(distributions, automaton, temperature, top_k, top_p)
        choices = {}
        for slot in distributions:
            uniform = self._rng.generator.random()
            choices[slot] = plan.replay(slot, uniform)
            if slot in plan.forced:
                automaton.jump_forward_taken += 1
        return self._result_compiled(distributions, choices, "sample", automaton)

    def diverse_candidates(
        self,
        distributions: dict[str, np.ndarray],
        count: int,
        temperature: float | None = None,
        automaton: DecisionAutomaton | None = None,
        plan: DecodePlan | None = None,
        first: DecodingResult | None = None,
    ) -> list[DecodingResult]:
        """Greedy candidate first, then sampled candidates (deduplicated).

        When the sampling budget cannot produce ``count`` distinct assignments
        (heavily constrained distributions collapse the support), the list is
        padded by repeating earlier candidates with a ``-duplicate`` suffix on
        their strategy, so downstream diversity statistics can exclude them
        instead of silently double-counting.

        With a compiled ``automaton`` every sampled attempt replays through
        one shared :class:`DecodePlan` (built once instead of per attempt);
        ``plan`` and ``first`` let duplicate prompts in a batch additionally
        share the plan and the RNG-free greedy head across rows.  The
        sampled stream stays bit-identical to the interpreted path.
        """
        if count <= 0:
            raise GenerationError("candidate count must be positive")
        effective = temperature or max(self._config.temperature, 1.2)
        if automaton is not None and plan is None:
            plan = DecodePlan.for_sampling(
                distributions, automaton, effective, self._config.top_k, self._config.top_p
            )
        if first is None:
            first = self.greedy(distributions, automaton=automaton)
        results = [first]
        seen = {tuple(sorted(results[0].decisions.to_dict().items()))}
        attempts = 0
        while len(results) < count and attempts < count * 10:
            attempts += 1
            candidate = self.sample(
                distributions, temperature=effective, automaton=automaton, plan=plan
            )
            key = tuple(sorted(candidate.decisions.to_dict().items()))
            if key not in seen:
                seen.add(key)
                results.append(candidate)
        unique = len(results)
        while len(results) < count:
            base = results[len(results) % unique]
            results.append(dataclasses.replace(base, strategy=f"{base.strategy}-duplicate"))
        return results[:count]

    # -- batched strategies --------------------------------------------------------

    def greedy_batch(
        self,
        distributions: dict[str, np.ndarray],
        automatons: list[DecisionAutomaton] | None = None,
    ) -> list[DecodingResult]:
        """Per-row argmax over ``(B, |slot|)`` distribution matrices.

        Row ``i`` of the result equals ``self.greedy`` on row ``i``'s
        distributions exactly (``np.argmax`` row-wise is ``np.argmax``
        per vector).  With per-row compiled ``automatons`` the matrices are
        the raw policy outputs: forced rows jump forward and only the free
        rows run the argmax (on a row-gathered submatrix, which is
        bit-identical to row-wise argmax on the full matrix).
        """
        if automatons is None:
            choices = {slot: np.argmax(probs, axis=1) for slot, probs in distributions.items()}
            return self._results_batch(distributions, choices, strategy="greedy")
        batch = len(automatons)
        choices = {}
        for slot, probs in distributions.items():
            indices = np.empty(batch, dtype=np.intp)
            free_rows = []
            for row, automaton in enumerate(automatons):
                forced = automaton.forced.get(slot)
                if forced is not None:
                    indices[row] = forced
                    automaton.jump_forward_taken += 1
                else:
                    free_rows.append(row)
            if free_rows:
                free = np.asarray(free_rows, dtype=np.intp)
                submatrix = probs[free]  # fancy indexing copies; safe to mask in place
                for position, row in enumerate(free_rows):
                    mask = automatons[row].partial_masks.get(slot)
                    if mask is not None:
                        submatrix[position] = np.where(mask, submatrix[position], -np.inf)
                indices[free] = np.argmax(submatrix, axis=1)
            choices[slot] = indices
        return self._results_batch_compiled(distributions, choices, "greedy", automatons)

    def sample_batch(
        self,
        distributions: dict[str, np.ndarray],
        temperature: float | None = None,
        top_k: int | None = None,
        top_p: float | None = None,
        automatons: list[DecisionAutomaton] | None = None,
    ) -> list[DecodingResult]:
        """Sample every (row, slot) with one RNG vector per slot.

        Temperature scaling and top-k / top-p truncation are applied row-wise
        and match :meth:`sample`'s per-vector maths; the categorical draw
        inverts each row's CDF with a single uniform vector per slot, so a
        batch of ``B`` prompts costs ``len(slots)`` RNG calls instead of
        ``B * len(slots)``.

        With per-row compiled ``automatons`` the temperature/truncation maths
        runs only over the free rows (a row-gathered submatrix — row-wise ops
        make this bit-identical to the full-matrix path), while forced rows
        replay their draw through one shared tempered one-hot CDF per
        (slot, forced index).  The uniform vector per slot is drawn exactly
        as in the interpreted path, so the RNG stream and every selected
        index match bit-for-bit.
        """
        temperature = temperature if temperature is not None else self._config.temperature
        top_k = top_k if top_k is not None else self._config.top_k
        top_p = top_p if top_p is not None else self._config.top_p
        if temperature <= 0:
            raise GenerationError("temperature must be positive")
        if automatons is None:
            choices: dict[str, np.ndarray] = {}
            for slot, probs in distributions.items():
                adjusted = self._apply_temperature_rows(probs, temperature)
                adjusted = self._truncate_rows(adjusted, top_k, top_p)
                cumulative = np.cumsum(adjusted, axis=1)
                draws = self._rng.generator.random(probs.shape[0])
                # Index of the first CDF entry strictly above the draw; the <=
                # comparison keeps zero-probability prefixes unselectable.
                indices = np.sum(cumulative <= draws[:, None], axis=1)
                choices[slot] = np.minimum(indices, probs.shape[1] - 1)
            return self._results_batch(distributions, choices, strategy="sample")
        batch = len(automatons)
        onehot_cumulative: dict[tuple[str, int], np.ndarray] = {}
        choices = {}
        for slot, probs in distributions.items():
            vocabulary = probs.shape[1]
            indices = np.empty(batch, dtype=np.intp)
            free_rows = [row for row in range(batch) if slot not in automatons[row].forced]
            adjusted = None
            if free_rows:
                free = np.asarray(free_rows, dtype=np.intp)
                adjusted = self._apply_temperature_rows(probs[free], temperature)
                adjusted = self._truncate_rows(adjusted, top_k, top_p)
                for position, row in enumerate(free_rows):
                    mask = automatons[row].partial_masks.get(slot)
                    if mask is not None:
                        masked = np.where(mask, adjusted[position], 0.0)
                        adjusted[position] = masked / np.sum(masked)
            draws = self._rng.generator.random(batch)
            if free_rows:
                cumulative = np.cumsum(adjusted, axis=1)
                free_indices = np.sum(cumulative <= draws[free][:, None], axis=1)
                indices[free] = np.minimum(free_indices, vocabulary - 1)
            forced_groups: dict[int, list[int]] = {}
            for row, automaton in enumerate(automatons):
                forced = automaton.forced.get(slot)
                if forced is not None:
                    forced_groups.setdefault(forced, []).append(row)
                    automaton.jump_forward_taken += 1
            for forced, group_rows in forced_groups.items():
                key = (slot, forced)
                cumulative_row = onehot_cumulative.get(key)
                if cumulative_row is None:
                    onehot = np.zeros((1, vocabulary))
                    onehot[0, forced] = 1.0
                    row_adjusted = self._apply_temperature_rows(onehot, temperature)
                    row_adjusted = self._truncate_rows(row_adjusted, top_k, top_p)
                    cumulative_row = np.cumsum(row_adjusted[0])
                    onehot_cumulative[key] = cumulative_row
                group = np.asarray(group_rows, dtype=np.intp)
                group_indices = np.sum(cumulative_row[None, :] <= draws[group][:, None], axis=1)
                indices[group] = np.minimum(group_indices, vocabulary - 1)
            choices[slot] = indices
        return self._results_batch_compiled(distributions, choices, "sample", automatons)

    def diverse_candidates_batch(
        self,
        distributions: dict[str, np.ndarray],
        count: int,
        temperature: float | None = None,
        automatons: list[DecisionAutomaton] | None = None,
    ) -> list[list[DecodingResult]]:
        """Per-row :meth:`diverse_candidates` over batched distributions.

        Candidate sets are produced row by row in input order, so the RNG
        stream (and therefore every candidate) is identical to calling
        :meth:`diverse_candidates` on each prompt's distributions in sequence.
        With per-row compiled ``automatons`` each row decodes through its
        automaton (dedup-aware plan sharing across duplicate rows lives in
        :meth:`repro.llm.FaultGenerator.candidates_batch`).
        """
        batch = next(iter(distributions.values())).shape[0] if distributions else 0
        results: list[list[DecodingResult]] = []
        for row in range(batch):
            row_distributions = {slot: probs[row] for slot, probs in distributions.items()}
            results.append(
                self.diverse_candidates(
                    row_distributions,
                    count,
                    temperature=temperature,
                    automaton=automatons[row] if automatons is not None else None,
                )
            )
        return results

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _apply_temperature(probs: np.ndarray, temperature: float) -> np.ndarray:
        logits = np.log(probs + 1e-12) / temperature
        shifted = np.exp(logits - np.max(logits))
        return shifted / np.sum(shifted)

    @staticmethod
    def _truncate(probs: np.ndarray, top_k: int | None, top_p: float | None) -> np.ndarray:
        adjusted = probs.copy()
        if top_k is not None and top_k < len(adjusted):
            threshold_index = np.argsort(adjusted)[-top_k:]
            mask = np.zeros_like(adjusted, dtype=bool)
            mask[threshold_index] = True
            adjusted[~mask] = 0.0
        if top_p is not None and 0.0 < top_p < 1.0:
            order = np.argsort(adjusted)[::-1]
            cumulative = np.cumsum(adjusted[order])
            cutoff = int(np.searchsorted(cumulative, top_p)) + 1
            keep = order[:cutoff]
            mask = np.zeros_like(adjusted, dtype=bool)
            mask[keep] = True
            adjusted[~mask] = 0.0
        total = np.sum(adjusted)
        if total <= 0:
            return probs
        return adjusted / total

    @staticmethod
    def _apply_temperature_rows(probs: np.ndarray, temperature: float) -> np.ndarray:
        logits = np.log(probs + 1e-12) / temperature
        shifted = np.exp(logits - np.max(logits, axis=1, keepdims=True))
        return shifted / np.sum(shifted, axis=1, keepdims=True)

    @staticmethod
    def _truncate_rows(probs: np.ndarray, top_k: int | None, top_p: float | None) -> np.ndarray:
        """Row-wise mirror of :meth:`_truncate`.

        Rows whose truncated mass vanishes fall back to their input
        distribution untouched, exactly as the per-sample path does.
        """
        vocabulary = probs.shape[1]
        adjusted = probs.copy()
        if top_k is not None and top_k < vocabulary:
            order = np.argsort(adjusted, axis=1)
            mask = np.zeros_like(adjusted, dtype=bool)
            np.put_along_axis(mask, order[:, -top_k:], True, axis=1)
            adjusted[~mask] = 0.0
        if top_p is not None and 0.0 < top_p < 1.0:
            order = np.argsort(adjusted, axis=1)[:, ::-1]
            cumulative = np.cumsum(np.take_along_axis(adjusted, order, axis=1), axis=1)
            # searchsorted(cumulative, top_p) per row: entries strictly below
            # the nucleus mass, plus one to keep the entry that crosses it.
            cutoffs = np.sum(cumulative < top_p, axis=1) + 1
            keep = np.arange(vocabulary)[None, :] < cutoffs[:, None]
            mask = np.zeros_like(adjusted, dtype=bool)
            np.put_along_axis(mask, order, keep, axis=1)
            adjusted[~mask] = 0.0
        totals = np.sum(adjusted, axis=1, keepdims=True)
        empty = totals[:, 0] <= 0
        if np.any(empty):
            # Mirror the per-sample fallback exactly: rows with no surviving
            # mass return their input distribution verbatim, unrenormalized.
            adjusted[empty] = probs[empty]
            totals[empty] = 1.0
        return adjusted / totals

    @staticmethod
    def _result_compiled(
        distributions: dict[str, np.ndarray],
        choices: dict[str, int],
        strategy: str,
        automaton: DecisionAutomaton,
    ) -> DecodingResult:
        """Result readback for compiled decoding over *raw* distributions.

        Mirrors the interpreted :meth:`_result` on the constrained copies
        bit-for-bit: forced slots report the one-hot probability (1.0 when
        the forced index was selected, 0.0 on the ~1e-12 tempered tail) and
        the same scalar ``log(p + 1e-12)`` accumulation order.  Values come
        straight from the decision schema, so the vector is constructed
        without re-validation.
        """
        values = {slot: DECISION_SLOTS[slot][index] for slot, index in choices.items()}
        decisions = DecisionVector(**values)
        logprob = 0.0
        slot_probabilities = {}
        for slot, index in choices.items():
            forced = automaton.forced.get(slot)
            if forced is not None:
                probability = 1.0 if index == forced else 0.0
            else:
                probability = float(distributions[slot][index])
            slot_probabilities[slot] = probability
            logprob += float(np.log(probability + 1e-12))
        return DecodingResult(
            decisions=decisions,
            logprob=logprob,
            slot_probabilities=slot_probabilities,
            strategy=strategy,
        )

    @staticmethod
    def _results_batch_compiled(
        distributions: dict[str, np.ndarray],
        choices: dict[str, np.ndarray],
        strategy: str,
        automatons: list[DecisionAutomaton],
    ) -> list[DecodingResult]:
        """Vectorized result readback for compiled batched decoding.

        Chosen probabilities are gathered per slot in one indexing pass
        (forced rows overridden to their one-hot readback) and the joint
        log-probabilities accumulate one vectorized ``log`` per slot in slot
        order — the same addition order as the scalar path, within the
        library's 1e-9 envelope tolerance for vectorized-vs-scalar ``log``.
        """
        batch = len(automatons)
        rows = np.arange(batch)
        totals = np.zeros(batch)
        columns: dict[str, np.ndarray] = {}
        for slot, indices in choices.items():
            column = distributions[slot][rows, indices].astype(float)
            for row, automaton in enumerate(automatons):
                forced = automaton.forced.get(slot)
                if forced is not None:
                    column[row] = 1.0 if indices[row] == forced else 0.0
            columns[slot] = column
            totals += np.log(column + 1e-12)
        results = []
        for row in range(batch):
            values = {slot: DECISION_SLOTS[slot][int(indices[row])] for slot, indices in choices.items()}
            results.append(
                DecodingResult(
                    decisions=DecisionVector(**values),
                    logprob=float(totals[row]),
                    slot_probabilities={slot: float(columns[slot][row]) for slot in columns},
                    strategy=strategy,
                )
            )
        return results

    def _results_batch(
        self, distributions: dict[str, np.ndarray], choices: dict[str, np.ndarray], strategy: str
    ) -> list[DecodingResult]:
        batch = next(iter(choices.values())).shape[0] if choices else 0
        return [
            self._result(
                {slot: probs[row] for slot, probs in distributions.items()},
                {slot: int(indices[row]) for slot, indices in choices.items()},
                strategy=strategy,
            )
            for row in range(batch)
        ]

    @staticmethod
    def _result(
        distributions: dict[str, np.ndarray], choices: dict[str, int], strategy: str
    ) -> DecodingResult:
        values = {slot: DECISION_SLOTS[slot][index] for slot, index in choices.items()}
        decisions = DecisionVector.from_dict(values)
        logprob = 0.0
        slot_probabilities = {}
        for slot, index in choices.items():
            probability = float(distributions[slot][index])
            slot_probabilities[slot] = probability
            logprob += float(np.log(probability + 1e-12))
        return DecodingResult(
            decisions=decisions,
            logprob=logprob,
            slot_probabilities=slot_probabilities,
            strategy=strategy,
        )
