"""Decoding strategies over the policy's per-slot distributions.

Mirrors the sampling controls of hosted LLM APIs: greedy decoding, temperature
sampling, top-k and nucleus (top-p) truncation.  The decoder returns both the
chosen :class:`DecisionVector` and its joint log-probability under the
*untruncated* distribution, which the RLHF policy-gradient step needs.

Every strategy also has a ``*_batch`` variant operating on ``(B, |slot|)``
probability matrices (one row per prompt): temperature and truncation are
applied row-wise with sorts and cumulative sums, and sampling draws one RNG
vector per slot for the whole batch instead of one scalar per (prompt, slot)
pair.  Batched greedy decoding is exactly equivalent to per-sample greedy;
batched sampling draws from the same truncated distributions but consumes the
RNG stream in a different order, so it is deterministic per batch rather than
per prompt.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..config import ModelConfig
from ..errors import GenerationError
from ..rng import SeededRNG
from .decisions import DECISION_SLOTS, DecisionVector


@dataclass
class DecodingResult:
    """A decoded decision assignment plus sampling metadata."""

    decisions: DecisionVector
    logprob: float
    slot_probabilities: dict[str, float]
    strategy: str


class Decoder:
    """Applies a decoding strategy to per-slot probability distributions."""

    def __init__(self, config: ModelConfig | None = None, rng: SeededRNG | None = None) -> None:
        self._config = config or ModelConfig()
        self._rng = rng or SeededRNG(self._config.seed, namespace="decoder")

    def greedy(self, distributions: dict[str, np.ndarray]) -> DecodingResult:
        """Pick the argmax value for every slot."""
        choices = {slot: int(np.argmax(probs)) for slot, probs in distributions.items()}
        return self._result(distributions, choices, strategy="greedy")

    def sample(
        self,
        distributions: dict[str, np.ndarray],
        temperature: float | None = None,
        top_k: int | None = None,
        top_p: float | None = None,
    ) -> DecodingResult:
        """Sample each slot with temperature / top-k / nucleus truncation."""
        temperature = temperature if temperature is not None else self._config.temperature
        top_k = top_k if top_k is not None else self._config.top_k
        top_p = top_p if top_p is not None else self._config.top_p
        if temperature <= 0:
            raise GenerationError("temperature must be positive")
        choices: dict[str, int] = {}
        for slot, probs in distributions.items():
            adjusted = self._apply_temperature(probs, temperature)
            adjusted = self._truncate(adjusted, top_k, top_p)
            choices[slot] = int(self._rng.generator.choice(len(adjusted), p=adjusted))
        return self._result(distributions, choices, strategy="sample")

    def diverse_candidates(
        self,
        distributions: dict[str, np.ndarray],
        count: int,
        temperature: float | None = None,
    ) -> list[DecodingResult]:
        """Greedy candidate first, then sampled candidates (deduplicated).

        When the sampling budget cannot produce ``count`` distinct assignments
        (heavily constrained distributions collapse the support), the list is
        padded by repeating earlier candidates with a ``-duplicate`` suffix on
        their strategy, so downstream diversity statistics can exclude them
        instead of silently double-counting.
        """
        if count <= 0:
            raise GenerationError("candidate count must be positive")
        results = [self.greedy(distributions)]
        seen = {tuple(sorted(results[0].decisions.to_dict().items()))}
        attempts = 0
        while len(results) < count and attempts < count * 10:
            attempts += 1
            candidate = self.sample(distributions, temperature=temperature or max(self._config.temperature, 1.2))
            key = tuple(sorted(candidate.decisions.to_dict().items()))
            if key not in seen:
                seen.add(key)
                results.append(candidate)
        unique = len(results)
        while len(results) < count:
            base = results[len(results) % unique]
            results.append(dataclasses.replace(base, strategy=f"{base.strategy}-duplicate"))
        return results[:count]

    # -- batched strategies --------------------------------------------------------

    def greedy_batch(self, distributions: dict[str, np.ndarray]) -> list[DecodingResult]:
        """Per-row argmax over ``(B, |slot|)`` distribution matrices.

        Row ``i`` of the result equals ``self.greedy`` on row ``i``'s
        distributions exactly (``np.argmax`` row-wise is ``np.argmax``
        per vector).
        """
        choices = {slot: np.argmax(probs, axis=1) for slot, probs in distributions.items()}
        return self._results_batch(distributions, choices, strategy="greedy")

    def sample_batch(
        self,
        distributions: dict[str, np.ndarray],
        temperature: float | None = None,
        top_k: int | None = None,
        top_p: float | None = None,
    ) -> list[DecodingResult]:
        """Sample every (row, slot) with one RNG vector per slot.

        Temperature scaling and top-k / top-p truncation are applied row-wise
        and match :meth:`sample`'s per-vector maths; the categorical draw
        inverts each row's CDF with a single uniform vector per slot, so a
        batch of ``B`` prompts costs ``len(slots)`` RNG calls instead of
        ``B * len(slots)``.
        """
        temperature = temperature if temperature is not None else self._config.temperature
        top_k = top_k if top_k is not None else self._config.top_k
        top_p = top_p if top_p is not None else self._config.top_p
        if temperature <= 0:
            raise GenerationError("temperature must be positive")
        choices: dict[str, np.ndarray] = {}
        for slot, probs in distributions.items():
            adjusted = self._apply_temperature_rows(probs, temperature)
            adjusted = self._truncate_rows(adjusted, top_k, top_p)
            cumulative = np.cumsum(adjusted, axis=1)
            draws = self._rng.generator.random(probs.shape[0])
            # Index of the first CDF entry strictly above the draw; the <=
            # comparison keeps zero-probability prefixes unselectable.
            indices = np.sum(cumulative <= draws[:, None], axis=1)
            choices[slot] = np.minimum(indices, probs.shape[1] - 1)
        return self._results_batch(distributions, choices, strategy="sample")

    def diverse_candidates_batch(
        self,
        distributions: dict[str, np.ndarray],
        count: int,
        temperature: float | None = None,
    ) -> list[list[DecodingResult]]:
        """Per-row :meth:`diverse_candidates` over batched distributions.

        Candidate sets are produced row by row in input order, so the RNG
        stream (and therefore every candidate) is identical to calling
        :meth:`diverse_candidates` on each prompt's distributions in sequence.
        """
        batch = next(iter(distributions.values())).shape[0] if distributions else 0
        results: list[list[DecodingResult]] = []
        for row in range(batch):
            row_distributions = {slot: probs[row] for slot, probs in distributions.items()}
            results.append(self.diverse_candidates(row_distributions, count, temperature=temperature))
        return results

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _apply_temperature(probs: np.ndarray, temperature: float) -> np.ndarray:
        logits = np.log(probs + 1e-12) / temperature
        shifted = np.exp(logits - np.max(logits))
        return shifted / np.sum(shifted)

    @staticmethod
    def _truncate(probs: np.ndarray, top_k: int | None, top_p: float | None) -> np.ndarray:
        adjusted = probs.copy()
        if top_k is not None and top_k < len(adjusted):
            threshold_index = np.argsort(adjusted)[-top_k:]
            mask = np.zeros_like(adjusted, dtype=bool)
            mask[threshold_index] = True
            adjusted[~mask] = 0.0
        if top_p is not None and 0.0 < top_p < 1.0:
            order = np.argsort(adjusted)[::-1]
            cumulative = np.cumsum(adjusted[order])
            cutoff = int(np.searchsorted(cumulative, top_p)) + 1
            keep = order[:cutoff]
            mask = np.zeros_like(adjusted, dtype=bool)
            mask[keep] = True
            adjusted[~mask] = 0.0
        total = np.sum(adjusted)
        if total <= 0:
            return probs
        return adjusted / total

    @staticmethod
    def _apply_temperature_rows(probs: np.ndarray, temperature: float) -> np.ndarray:
        logits = np.log(probs + 1e-12) / temperature
        shifted = np.exp(logits - np.max(logits, axis=1, keepdims=True))
        return shifted / np.sum(shifted, axis=1, keepdims=True)

    @staticmethod
    def _truncate_rows(probs: np.ndarray, top_k: int | None, top_p: float | None) -> np.ndarray:
        """Row-wise mirror of :meth:`_truncate`.

        Rows whose truncated mass vanishes fall back to their input
        distribution untouched, exactly as the per-sample path does.
        """
        vocabulary = probs.shape[1]
        adjusted = probs.copy()
        if top_k is not None and top_k < vocabulary:
            order = np.argsort(adjusted, axis=1)
            mask = np.zeros_like(adjusted, dtype=bool)
            np.put_along_axis(mask, order[:, -top_k:], True, axis=1)
            adjusted[~mask] = 0.0
        if top_p is not None and 0.0 < top_p < 1.0:
            order = np.argsort(adjusted, axis=1)[:, ::-1]
            cumulative = np.cumsum(np.take_along_axis(adjusted, order, axis=1), axis=1)
            # searchsorted(cumulative, top_p) per row: entries strictly below
            # the nucleus mass, plus one to keep the entry that crosses it.
            cutoffs = np.sum(cumulative < top_p, axis=1) + 1
            keep = np.arange(vocabulary)[None, :] < cutoffs[:, None]
            mask = np.zeros_like(adjusted, dtype=bool)
            np.put_along_axis(mask, order, keep, axis=1)
            adjusted[~mask] = 0.0
        totals = np.sum(adjusted, axis=1, keepdims=True)
        empty = totals[:, 0] <= 0
        if np.any(empty):
            # Mirror the per-sample fallback exactly: rows with no surviving
            # mass return their input distribution verbatim, unrenormalized.
            adjusted[empty] = probs[empty]
            totals[empty] = 1.0
        return adjusted / totals

    def _results_batch(
        self, distributions: dict[str, np.ndarray], choices: dict[str, np.ndarray], strategy: str
    ) -> list[DecodingResult]:
        batch = next(iter(choices.values())).shape[0] if choices else 0
        return [
            self._result(
                {slot: probs[row] for slot, probs in distributions.items()},
                {slot: int(indices[row]) for slot, indices in choices.items()},
                strategy=strategy,
            )
            for row in range(batch)
        ]

    @staticmethod
    def _result(
        distributions: dict[str, np.ndarray], choices: dict[str, int], strategy: str
    ) -> DecodingResult:
        values = {slot: DECISION_SLOTS[slot][index] for slot, index in choices.items()}
        decisions = DecisionVector.from_dict(values)
        logprob = 0.0
        slot_probabilities = {}
        for slot, index in choices.items():
            probability = float(distributions[slot][index])
            slot_probabilities[slot] = probability
            logprob += float(np.log(probability + 1e-12))
        return DecodingResult(
            decisions=decisions,
            logprob=logprob,
            slot_probabilities=slot_probabilities,
            strategy=strategy,
        )
