"""Supervised fine-tuning (SFT) of the fault-generation policy.

Section IV-1 of the paper proposes generating the fine-tuning dataset with a
programmable SFI tool: every injected fault yields a (natural-language
description, original code, faulty code) triple.  Here the triples arrive as
(:class:`GenerationPrompt`, :class:`DecisionVector`) pairs — the prompt built
from the description and code, the decision vector recovered from the injected
fault — and the trainer minimises the joint cross-entropy over decision slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SFTConfig
from ..rng import SeededRNG
from ..nlp.prompt_builder import GenerationPrompt
from .decisions import DecisionVector
from .generator import FaultGenerator


@dataclass
class SFTExample:
    """One supervised training example."""

    prompt: GenerationPrompt
    target: DecisionVector


@dataclass
class SFTReport:
    """Training curve and summary statistics of an SFT run."""

    epoch_losses: list[float] = field(default_factory=list)
    examples: int = 0
    epochs: int = 0

    @property
    def initial_loss(self) -> float:
        return self.epoch_losses[0] if self.epoch_losses else float("nan")

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    @property
    def improved(self) -> bool:
        return bool(self.epoch_losses) and self.final_loss < self.initial_loss

    def to_dict(self) -> dict:
        return {
            "epoch_losses": list(self.epoch_losses),
            "examples": self.examples,
            "epochs": self.epochs,
            "initial_loss": self.initial_loss,
            "final_loss": self.final_loss,
        }


class SFTTrainer:
    """Mini-batch SGD trainer for the generation policy.

    Every minibatch is processed as one matrix: one batched forward pass
    computes all per-slot distributions, one batched backward pass accumulates
    the whole minibatch's gradients, and one SGD step applies them.  The
    shuffle stream and update schedule are identical to per-sample training —
    the minibatch boundaries, learning rate, and gradient averaging match the
    per-example loop to floating-point noise — so the vectorized trainer is a
    drop-in replacement validated against the per-sample oracle in the tests.
    """

    def __init__(self, generator: FaultGenerator, config: SFTConfig | None = None) -> None:
        self._generator = generator
        self._config = config or SFTConfig()
        self._rng = SeededRNG(self._config.seed, namespace="sft")

    def train(self, examples: list[SFTExample]) -> SFTReport:
        """Train for the configured number of epochs; returns the loss curve."""
        report = SFTReport(examples=len(examples), epochs=self._config.epochs)
        if not examples:
            return report
        policy = self._generator.policy
        encoder = self._generator.encoder
        features_matrix = encoder.encode_batch([example.prompt for example in examples])
        targets = [example.target for example in examples]
        count = len(examples)
        batch_size = self._config.batch_size
        for _epoch in range(self._config.epochs):
            ordering = self._rng.shuffle(list(range(count))) if self._config.shuffle else list(range(count))
            epoch_loss = 0.0
            for start in range(0, count, batch_size):
                chunk = ordering[start : start + batch_size]
                forward = policy.forward_batch(features_matrix[chunk])
                chunk_targets = [targets[index] for index in chunk]
                epoch_loss += float(np.sum(-forward.log_probabilities(chunk_targets)))
                gradients = policy.backward_batch(forward, chunk_targets)
                policy.apply_gradients(gradients, learning_rate=self._config.learning_rate)
            report.epoch_losses.append(epoch_loss / count)
        return report

    def evaluate(self, examples: list[SFTExample]) -> dict[str, float]:
        """Held-out evaluation: mean NLL and exact / per-slot decision accuracy."""
        if not examples:
            return {"nll": float("nan"), "exact_match": 0.0, "slot_accuracy": 0.0}
        policy = self._generator.policy
        decoder = self._generator.decoder
        encoder = self._generator.encoder
        features_matrix = encoder.encode_batch([example.prompt for example in examples])
        targets = [example.target for example in examples]
        forward = policy.forward_batch(features_matrix)
        total_nll = float(np.sum(-forward.log_probabilities(targets)))
        decoded_batch = decoder.greedy_batch(forward.probabilities)
        exact = 0
        slot_hits = 0
        slot_total = 0
        for decoded, target in zip(decoded_batch, targets):
            target_map = target.to_dict()
            decoded_map = decoded.decisions.to_dict()
            if decoded_map == target_map:
                exact += 1
            for slot, value in target_map.items():
                slot_total += 1
                if decoded_map[slot] == value:
                    slot_hits += 1
        count = len(examples)
        return {
            "nll": total_nll / count,
            "exact_match": exact / count,
            "slot_accuracy": slot_hits / slot_total if slot_total else 0.0,
        }
