"""The generation model substrate: an offline, trainable stand-in for the LLM.

Components:

* :class:`FeatureEncoder` — prompt → fixed-size feature vector;
* :class:`PolicyNetwork` — multi-head softmax policy over the decision schema;
* :class:`Decoder` — greedy / temperature / top-k / nucleus decoding;
* :class:`CodeGrammar` — decisions → syntactically valid faulty Python;
* :class:`GrammarCompiler` / :class:`DecisionAutomaton` — compiled decoding
  constraints with jump-forward over force-determined decision slots;
* :class:`FaultGenerator` — the LLM-like facade used by the pipeline;
* :class:`SFTTrainer` — supervised fine-tuning on SFI-generated datasets;
* :func:`save_checkpoint` / :func:`load_checkpoint` — model persistence.
"""

from .checkpoints import load_checkpoint, save_checkpoint
from .compiled_grammar import (
    DecisionAutomaton,
    DecodePlan,
    GrammarCompiler,
    constraint_slots,
)
from .decisions import (
    DECISION_SLOTS,
    DecisionVector,
    decision_distance,
    reference_decisions,
    slot_sizes,
)
from .decoder import Decoder, DecodingResult
from .features import FeatureEncoder
from .generator import FaultGenerator, GenerationCandidate
from .grammar import CodeGrammar, RenderedFault
from .network import BatchForwardResult, ForwardResult, Gradients, PolicyNetwork
from .sft import SFTExample, SFTReport, SFTTrainer

__all__ = [
    "DECISION_SLOTS",
    "BatchForwardResult",
    "CodeGrammar",
    "DecisionAutomaton",
    "DecisionVector",
    "DecodePlan",
    "Decoder",
    "DecodingResult",
    "FaultGenerator",
    "FeatureEncoder",
    "ForwardResult",
    "GenerationCandidate",
    "Gradients",
    "GrammarCompiler",
    "PolicyNetwork",
    "RenderedFault",
    "SFTExample",
    "SFTReport",
    "SFTTrainer",
    "constraint_slots",
    "decision_distance",
    "load_checkpoint",
    "reference_decisions",
    "save_checkpoint",
    "slot_sizes",
]
