"""A small thread-safe keyed LRU cache shared by the model-layer memoizers.

:class:`~repro.llm.grammar.CodeGrammar` (rendered faults) and
:class:`~repro.llm.compiled_grammar.GrammarCompiler` (compiled decision
automatons) memoize prompt-keyed artefacts with identical semantics: bounded
LRU entries, hit/miss counters exposed through ``cache_info()``, and
``export``/``import`` snapshots for cross-process cache persistence
(:meth:`repro.api.FaultInjectionEngine.save_caches`).  This module holds the
shared implementation so both caches stay byte-for-byte consistent in their
accounting.

A ``max_size`` of ``0`` disables the cache: lookups return ``None`` without
counting, stores are dropped, and imports install nothing — callers that want
the uncached reference path (the benchmarks) simply construct with size 0.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Mapping


class KeyedLruCache:
    """Bounded, thread-safe LRU mapping with persistence hooks.

    Values are shared between callers — treat cached objects as immutable (or
    accept approximate mutation, as the automaton jump counters do).
    """

    def __init__(self, max_size: int) -> None:
        self._max_size = max(0, int(max_size))
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything (``max_size > 0``)."""
        return self._max_size > 0

    def get(self, key: Hashable) -> Any | None:
        """The cached value for ``key`` (refreshing recency), else ``None``."""
        if self._max_size <= 0:
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return value
            self._misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> None:
        """Install ``key -> value``, evicting least-recently-used overflow."""
        if self._max_size <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters in the shared cache-info layout."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._entries),
                "max_size": self._max_size,
            }

    def export(self) -> dict[Hashable, Any]:
        """A snapshot of the entries for cross-process persistence."""
        with self._lock:
            return dict(self._entries)

    def import_entries(self, entries: Mapping[Hashable, Any]) -> int:
        """Merge previously exported entries, respecting the LRU bound.

        Existing keys keep their current value (a warm cache wins over a
        stale snapshot).

        Returns:
            The number of entries actually installed.
        """
        if self._max_size <= 0:
            return 0
        installed = 0
        with self._lock:
            for key, value in entries.items():
                if key not in self._entries:
                    self._entries[key] = value
                    installed += 1
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)
        return installed

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
