"""Saving and restoring trained policy checkpoints."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..config import ModelConfig
from ..errors import CheckpointError
from .network import PolicyNetwork


def save_checkpoint(policy: PolicyNetwork, directory: str | Path, name: str = "policy") -> Path:
    """Persist a policy's parameters and configuration under ``directory``.

    Two files are written: ``<name>.npz`` with the parameter arrays and
    ``<name>.json`` with the model configuration and version, so a checkpoint
    can be inspected without loading numpy arrays.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    array_path = directory / f"{name}.npz"
    meta_path = directory / f"{name}.json"
    state = policy.state_dict()
    np.savez(array_path, **state)
    metadata = {"config": policy.config.to_dict(), "version": policy.version, "parameters": sorted(state)}
    meta_path.write_text(json.dumps(metadata, indent=2, sort_keys=True))
    return array_path


def load_checkpoint(directory: str | Path, name: str = "policy") -> PolicyNetwork:
    """Restore a policy previously saved with :func:`save_checkpoint`."""
    directory = Path(directory)
    array_path = directory / f"{name}.npz"
    meta_path = directory / f"{name}.json"
    if not array_path.exists() or not meta_path.exists():
        raise CheckpointError(f"checkpoint {name!r} not found in {directory}")
    try:
        metadata = json.loads(meta_path.read_text())
        config = ModelConfig(**metadata["config"])
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise CheckpointError(f"invalid checkpoint metadata in {meta_path}: {exc}") from exc
    with np.load(array_path) as arrays:
        state = {key: arrays[key] for key in arrays.files}
    policy = PolicyNetwork(config)
    policy.load_state(state)
    # Older checkpoints carry the version only in the JSON metadata; newer ones
    # also store it in the parameter archive, which load_state already applied.
    policy.version = int(metadata.get("version", policy.version))
    return policy
