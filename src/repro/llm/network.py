"""The fault-generation policy network.

A compact multi-head neural network implemented directly in numpy:

* a shared hidden layer ``h = tanh(W1 x + b1)``;
* one softmax head per decision slot ``p_s = softmax(W2_s h + b2_s)``.

It exposes exactly the operations an API-backed LLM would need to expose for
this methodology — conditional distributions over outputs, log-probabilities
of a given output, supervised updates (fine-tuning), and policy-gradient
updates (RLHF) — while remaining trainable in milliseconds on a CPU.

Gradients are computed analytically.  Both the supervised cross-entropy update
and the REINFORCE update share the same backward pass: for a softmax head the
gradient of ``-log p(chosen)`` w.r.t. the logits is ``p - onehot(chosen)``, and
the policy-gradient update simply scales that quantity by the (negative)
advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..config import ModelConfig
from ..errors import ModelError
from ..rng import SeededRNG
from .decisions import DECISION_SLOTS, DecisionVector


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - np.max(logits)
    exponents = np.exp(shifted)
    return exponents / np.sum(exponents)


def _softmax_rows(logits: np.ndarray) -> np.ndarray:
    shifted = logits - np.max(logits, axis=1, keepdims=True)
    exponents = np.exp(shifted)
    return exponents / np.sum(exponents, axis=1, keepdims=True)


def _decision_index_matrix(decisions: Sequence[DecisionVector]) -> dict[str, np.ndarray]:
    """Per-slot integer index arrays, one entry per example."""
    columns = {slot: np.empty(len(decisions), dtype=np.intp) for slot in DECISION_SLOTS}
    for row, decision in enumerate(decisions):
        for slot, index in decision.to_indices().items():
            columns[slot][row] = index
    return columns


@dataclass
class Gradients:
    """Accumulated parameter gradients for one or more examples."""

    w1: np.ndarray
    b1: np.ndarray
    heads_w: dict[str, np.ndarray]
    heads_b: dict[str, np.ndarray]
    examples: int = 0

    def add(self, other: "Gradients") -> None:
        self.w1 += other.w1
        self.b1 += other.b1
        for slot in self.heads_w:
            self.heads_w[slot] += other.heads_w[slot]
            self.heads_b[slot] += other.heads_b[slot]
        self.examples += other.examples


@dataclass
class ForwardResult:
    """Outputs of a forward pass: hidden activations and per-slot distributions."""

    features: np.ndarray
    hidden: np.ndarray
    probabilities: dict[str, np.ndarray] = field(default_factory=dict)

    def log_probability(self, decisions: DecisionVector) -> float:
        """Joint log-probability of a complete decision assignment."""
        indices = decisions.to_indices()
        total = 0.0
        for slot, probs in self.probabilities.items():
            total += float(np.log(probs[indices[slot]] + 1e-12))
        return total


@dataclass
class BatchForwardResult:
    """Outputs of a batched forward pass over a ``(B, feature_dim)`` matrix.

    ``hidden`` is ``(B, hidden_dim)`` and each per-slot probability matrix is
    ``(B, |slot|)``; row ``i`` matches :class:`ForwardResult` for example ``i``
    exactly (same shift-by-max softmax, evaluated row-wise).
    """

    features: np.ndarray
    hidden: np.ndarray
    probabilities: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def batch_size(self) -> int:
        return int(self.hidden.shape[0])

    def row(self, index: int) -> ForwardResult:
        """The per-sample view of one batch row (reference-oracle adapter)."""
        return ForwardResult(
            features=self.features[index],
            hidden=self.hidden[index],
            probabilities={slot: probs[index] for slot, probs in self.probabilities.items()},
        )

    def log_probabilities(self, decisions: Sequence[DecisionVector]) -> np.ndarray:
        """Joint log-probability of one decision assignment per batch row."""
        if len(decisions) != self.batch_size:
            raise ModelError(
                f"expected {self.batch_size} decision vectors, got {len(decisions)}"
            )
        indices = _decision_index_matrix(decisions)
        rows = np.arange(self.batch_size)
        total = np.zeros(self.batch_size)
        for slot, probs in self.probabilities.items():
            total += np.log(probs[rows, indices[slot]] + 1e-12)
        return total


class PolicyNetwork:
    """Multi-head softmax policy over the decision schema."""

    def __init__(self, config: ModelConfig | None = None, rng: SeededRNG | None = None) -> None:
        self.config = config or ModelConfig()
        rng = rng or SeededRNG(self.config.seed, namespace="policy")
        scale = 1.0 / np.sqrt(self.config.feature_dim)
        self.w1 = rng.normal(size=(self.config.hidden_dim, self.config.feature_dim), scale=scale)
        self.b1 = np.zeros(self.config.hidden_dim)
        self.heads_w: dict[str, np.ndarray] = {}
        self.heads_b: dict[str, np.ndarray] = {}
        head_scale = 1.0 / np.sqrt(self.config.hidden_dim)
        for slot, values in DECISION_SLOTS.items():
            self.heads_w[slot] = rng.normal(size=(len(values), self.config.hidden_dim), scale=head_scale)
            self.heads_b[slot] = np.zeros(len(values))
        self.version = 0

    # -- inference ---------------------------------------------------------------

    def forward(self, features: np.ndarray) -> ForwardResult:
        """Compute per-slot probability distributions for one feature vector."""
        if features.shape != (self.config.feature_dim,):
            raise ModelError(
                f"expected feature vector of shape ({self.config.feature_dim},), got {features.shape}"
            )
        hidden = np.tanh(self.w1 @ features + self.b1)
        probabilities = {
            slot: _softmax(self.heads_w[slot] @ hidden + self.heads_b[slot]) for slot in DECISION_SLOTS
        }
        return ForwardResult(features=features, hidden=hidden, probabilities=probabilities)

    def forward_batch(self, features: np.ndarray) -> BatchForwardResult:
        """Compute per-slot distributions for a whole ``(B, feature_dim)`` batch.

        One ``tanh`` matmul and one softmax matmul per head replace ``B``
        per-sample passes; row ``i`` of the result equals
        ``self.forward(features[i])`` to floating-point noise.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.config.feature_dim:
            raise ModelError(
                f"expected feature matrix of shape (B, {self.config.feature_dim}), got {features.shape}"
            )
        hidden = np.tanh(features @ self.w1.T + self.b1)
        probabilities = {
            slot: _softmax_rows(hidden @ self.heads_w[slot].T + self.heads_b[slot])
            for slot in DECISION_SLOTS
        }
        return BatchForwardResult(features=features, hidden=hidden, probabilities=probabilities)

    def log_probability(self, features: np.ndarray, decisions: DecisionVector) -> float:
        """Joint log-probability of ``decisions`` given ``features``."""
        return self.forward(features).log_probability(decisions)

    def log_probabilities_batch(
        self, features: np.ndarray, decisions: Sequence[DecisionVector]
    ) -> np.ndarray:
        """Joint log-probability of one decision assignment per feature row."""
        return self.forward_batch(features).log_probabilities(decisions)

    def distributions(self, features: np.ndarray) -> dict[str, np.ndarray]:
        """Per-slot probability vectors (copies safe for the decoder to modify)."""
        result = self.forward(features)
        return {slot: probs.copy() for slot, probs in result.probabilities.items()}

    # -- training ----------------------------------------------------------------

    def zero_gradients(self) -> Gradients:
        return Gradients(
            w1=np.zeros_like(self.w1),
            b1=np.zeros_like(self.b1),
            heads_w={slot: np.zeros_like(weights) for slot, weights in self.heads_w.items()},
            heads_b={slot: np.zeros_like(bias) for slot, bias in self.heads_b.items()},
        )

    def backward(
        self,
        forward: ForwardResult,
        decisions: DecisionVector,
        scale: float = 1.0,
        slot_weights: Mapping[str, float] | None = None,
    ) -> Gradients:
        """Gradient of ``scale * -log p(decisions)`` w.r.t. all parameters."""
        gradients = self.zero_gradients()
        indices = decisions.to_indices()
        hidden_grad = np.zeros_like(forward.hidden)
        for slot, probabilities in forward.probabilities.items():
            weight = (slot_weights or {}).get(slot, 1.0)
            logit_grad = probabilities.copy()
            logit_grad[indices[slot]] -= 1.0
            logit_grad *= scale * weight
            gradients.heads_w[slot] += np.outer(logit_grad, forward.hidden)
            gradients.heads_b[slot] += logit_grad
            hidden_grad += self.heads_w[slot].T @ logit_grad
        pre_activation_grad = hidden_grad * (1.0 - forward.hidden**2)
        gradients.w1 += np.outer(pre_activation_grad, forward.features)
        gradients.b1 += pre_activation_grad
        gradients.examples = 1
        return gradients

    def backward_batch(
        self,
        forward: BatchForwardResult,
        decisions: Sequence[DecisionVector],
        scales: np.ndarray | Sequence[float] | None = None,
        slot_weights: Mapping[str, float] | None = None,
    ) -> Gradients:
        """Accumulated gradients of ``sum_i scales[i] * -log p(decisions[i])``.

        Equivalent to summing :meth:`backward` over every batch row, but the
        per-example ``np.outer`` rank-1 updates collapse into three matmuls per
        head (``logit_grad.T @ hidden``, ``logit_grad @ W``, ``pre.T @ x``).
        """
        batch = forward.batch_size
        if len(decisions) != batch:
            raise ModelError(f"expected {batch} decision vectors, got {len(decisions)}")
        if scales is None:
            scale_column = np.ones((batch, 1))
        else:
            scale_column = np.asarray(scales, dtype=np.float64).reshape(batch, 1)
        gradients = self.zero_gradients()
        indices = _decision_index_matrix(decisions)
        rows = np.arange(batch)
        hidden_grad = np.zeros_like(forward.hidden)
        for slot, probabilities in forward.probabilities.items():
            weight = (slot_weights or {}).get(slot, 1.0)
            logit_grad = probabilities.copy()
            logit_grad[rows, indices[slot]] -= 1.0
            logit_grad *= scale_column * weight
            gradients.heads_w[slot] += logit_grad.T @ forward.hidden
            gradients.heads_b[slot] += logit_grad.sum(axis=0)
            hidden_grad += logit_grad @ self.heads_w[slot]
        pre_activation_grad = hidden_grad * (1.0 - forward.hidden**2)
        gradients.w1 += pre_activation_grad.T @ forward.features
        gradients.b1 += pre_activation_grad.sum(axis=0)
        gradients.examples = batch
        return gradients

    def apply_gradients(self, gradients: Gradients, learning_rate: float | None = None) -> None:
        """SGD step averaging accumulated gradients over their examples."""
        if gradients.examples == 0:
            return
        learning_rate = learning_rate if learning_rate is not None else self.config.learning_rate
        scale = learning_rate / gradients.examples
        self.w1 -= scale * gradients.w1
        self.b1 -= scale * gradients.b1
        for slot in self.heads_w:
            self.heads_w[slot] -= scale * gradients.heads_w[slot]
            self.heads_b[slot] -= scale * gradients.heads_b[slot]
        self.version += 1

    def nll(self, features: np.ndarray, decisions: DecisionVector) -> float:
        """Negative log-likelihood of a decision assignment (training metric)."""
        return -self.log_probability(features, decisions)

    def nll_batch(self, features: np.ndarray, decisions: Sequence[DecisionVector]) -> np.ndarray:
        """Per-example negative log-likelihoods for a whole batch."""
        return -self.log_probabilities_batch(features, decisions)

    # -- cloning and state -------------------------------------------------------

    def clone(self) -> "PolicyNetwork":
        """Deep copy used to freeze a reference policy for the KL penalty."""
        copy = PolicyNetwork(config=self.config, rng=SeededRNG(self.config.seed, namespace="clone"))
        copy.load_state(self.state_dict())
        return copy

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {"w1": self.w1.copy(), "b1": self.b1.copy()}
        for slot in DECISION_SLOTS:
            state[f"head_w:{slot}"] = self.heads_w[slot].copy()
            state[f"head_b:{slot}"] = self.heads_b[slot].copy()
        state["version"] = np.array(self.version)
        return state

    def load_state(self, state: Mapping[str, np.ndarray]) -> None:
        try:
            self.w1 = np.array(state["w1"], dtype=np.float64)
            self.b1 = np.array(state["b1"], dtype=np.float64)
            for slot in DECISION_SLOTS:
                self.heads_w[slot] = np.array(state[f"head_w:{slot}"], dtype=np.float64)
                self.heads_b[slot] = np.array(state[f"head_b:{slot}"], dtype=np.float64)
        except KeyError as exc:
            raise ModelError(f"checkpoint is missing parameter {exc}") from exc
        if "version" in state:
            self.version = int(state["version"])
        if self.w1.shape != (self.config.hidden_dim, self.config.feature_dim):
            raise ModelError(
                "checkpoint dimensions do not match the configured model "
                f"(expected {(self.config.hidden_dim, self.config.feature_dim)}, got {self.w1.shape})"
            )

    def kl_divergence(self, features: np.ndarray, reference: "PolicyNetwork") -> float:
        """KL(self || reference) summed over decision slots for one prompt."""
        own = self.forward(features).probabilities
        other = reference.forward(features).probabilities
        total = 0.0
        for slot in DECISION_SLOTS:
            p = own[slot]
            q = other[slot]
            total += float(np.sum(p * (np.log(p + 1e-12) - np.log(q + 1e-12))))
        return total

    def kl_divergence_batch(self, features: np.ndarray, reference: "PolicyNetwork") -> np.ndarray:
        """Per-prompt KL(self || reference) for a whole feature matrix."""
        own = self.forward_batch(features).probabilities
        other = reference.forward_batch(features).probabilities
        total = np.zeros(features.shape[0])
        for slot in DECISION_SLOTS:
            p = own[slot]
            q = other[slot]
            total += np.sum(p * (np.log(p + 1e-12) - np.log(q + 1e-12)), axis=1)
        return total
