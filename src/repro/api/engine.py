"""The :class:`FaultInjectionEngine` — the library's serving façade.

One engine owns one shared component stack — NLP extractor (with its
description-hash cache), code analyzer, prompt builder, generation model
(policy + encoder/render caches), dataset generator, SFT trainer, and the
per-target sandbox runners with their persistent worker pools — and exposes
the paper's whole workflow behind a typed request/response API:

* :meth:`submit` — enqueue a typed request, get a
  :class:`~repro.api.scheduler.ResponseHandle` immediately;
* :meth:`run` — blocking submit-and-wait for one request;
* :meth:`run_many` — submit a request list, gather responses in input order;
* :meth:`stream` — submit a request list, yield responses as they complete.

Concurrent :class:`~repro.api.GenerateRequest` submissions are coalesced by
the continuous-batching :class:`~repro.api.scheduler.Scheduler` into single
``forward_batch`` generation passes and pooled ``run_many`` sandbox batches,
while per-request seeds keep every result identical to running the request
alone (see docs/API.md).

The engine also keeps the pre-existing imperative stage methods
(:meth:`define_fault`, :meth:`generate_fault`, :meth:`run_workflow`, ...);
the deprecated :class:`~repro.core.pipeline.NeuralFaultInjector` façade is a
thin adapter over them.
"""

from __future__ import annotations

import itertools
import pickle
import queue
import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Iterable, Iterator

from ..config import PipelineConfig
from ..dataset import DatasetGenerator, FaultDataset
from ..errors import (
    CircuitOpenError,
    DeadlineExceededError,
    EngineClosedError,
    ReproError,
    RequestError,
)
from ..integration import ExperimentRecord, ExperimentRunner
from ..llm import FaultGenerator, GenerationCandidate, SFTReport, SFTTrainer
from ..llm.decoder import Decoder
from ..nlp import CodeAnalyzer, FaultSpecExtractor, GenerationPrompt, PromptBuilder
from ..resilience import OPEN, BreakerRegistry, Deadline, RetryPolicy
from ..rlhf import FeedbackParser, RLHFReport, RLHFTrainer, SimulatedTester, spec_with_feedback, tester_pool
from ..rng import SeededRNG
from ..targets import TargetSystem, all_targets, get_target
from ..types import CodeContext, FaultDescription, FaultSpec, GeneratedFault, InjectionOutcome
from .requests import CampaignRequest, DatasetRequest, GenerateRequest, Request, RLHFRequest
from .responses import (
    CampaignPayload,
    DatasetPayload,
    CacheStats,
    ErrorInfo,
    ExecutionStats,
    GeneratePayload,
    Response,
    RLHFPayload,
    Timings,
)
from .scheduler import ResponseHandle, Scheduler, Ticket

FeedbackProvider = Callable[[FaultSpec, GenerationCandidate], str | None]

_REQUEST_TYPES = (GenerateRequest, DatasetRequest, CampaignRequest, RLHFRequest)

#: Version tag of the cache persistence payload written by :meth:`save_caches`.
_CACHE_FORMAT_VERSION = 1


class FaultInjectionEngine:
    """Serves the neural fault injection workflow to concurrent clients."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        """Build the shared pipeline stack.

        Args:
            config: Pipeline configuration; the ``engine`` section controls
                scheduler batching and the NLP extraction cache.
        """
        self.config = config or PipelineConfig()
        self._rng = SeededRNG(self.config.seed, namespace="pipeline")
        self.extractor = FaultSpecExtractor(cache_size=self.config.engine.extract_cache_size)
        self.analyzer = CodeAnalyzer()
        self.prompts = PromptBuilder()
        self.generator = FaultGenerator(self.config.model, rng=self._rng.fork("generator"))
        self.feedback_parser = FeedbackParser()
        self.dataset_generator = DatasetGenerator(
            self.config.dataset,
            execution=self.config.execution,
            extractor=self.extractor,
            analyzer=self.analyzer,
            prompts=self.prompts,
            resilience=self.config.resilience,
        )
        self._breakers = BreakerRegistry(self.config.resilience)
        self._retry = RetryPolicy.from_config(self.config.resilience)
        self.sft_trainer = SFTTrainer(self.generator, self.config.sft)
        self.dataset: FaultDataset | None = None
        self.sft_report: SFTReport | None = None
        self.rlhf_report: RLHFReport | None = None
        self._experiment_runners: dict[str, ExperimentRunner] = {}
        self._lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._closed = False
        self._scheduler = Scheduler(
            dispatch_batch=self._process_generate_batch,
            dispatch_single=self._process_single,
            max_batch_size=self.config.engine.resolved_batch_size(self.config.execution),
            max_queue_delay_seconds=self.config.engine.max_queue_delay_seconds,
        )

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        """Drain in-flight requests and release every owned resource.

        Queued requests still resolve (close is graceful); afterwards the
        scheduler thread is stopped, the dataset generator's validation
        runner and every per-target experiment runner (worker pools, scratch
        dirs) are closed.  Idempotent; further :meth:`submit`/:meth:`run`
        calls raise :class:`~repro.errors.EngineClosedError`.
        """
        with self._lock:
            self._closed = True
        self._scheduler.close()
        self.dataset_generator.close()
        with self._lock:
            runners, self._experiment_runners = self._experiment_runners, {}
        for runner in runners.values():
            runner.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def __enter__(self) -> "FaultInjectionEngine":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- serving surface ---------------------------------------------------------------

    def submit(self, request: Request) -> ResponseHandle:
        """Enqueue a typed request and return an asynchronous handle.

        Args:
            request: One of the four typed request kinds.

        Returns:
            A :class:`ResponseHandle`; ``handle.result()`` blocks for the
            :class:`~repro.api.Response` envelope.

        Raises:
            RequestError: If ``request`` is not a typed request object.
            EngineClosedError: If the engine has been closed.
        """
        if not isinstance(request, _REQUEST_TYPES):
            raise RequestError(
                f"expected a typed request object, got {type(request).__name__}; "
                "build one of GenerateRequest / DatasetRequest / CampaignRequest / RLHFRequest"
            )
        if self._closed:
            raise EngineClosedError("engine is closed; no further requests are accepted")
        request_id = request.request_id or f"req-{next(self._request_ids):06d}"
        handle = ResponseHandle(request_id, request.kind)
        self._scheduler.submit(
            Ticket(
                request=request,
                handle=handle,
                deadline=Deadline.from_seconds(request.deadline_seconds),
            )
        )
        return handle

    def run(self, request: Request) -> Response:
        """Submit one request and block for its response envelope."""
        return self.submit(request).result()

    def run_many(self, requests: Iterable[Request]) -> list[Response]:
        """Submit many requests at once and gather responses in input order.

        Submitting everything before waiting lets the scheduler coalesce the
        whole list into batched generation and pooled execution.
        """
        handles = [self.submit(request) for request in requests]
        return [handle.result() for handle in handles]

    def stream(self, requests: Iterable[Request]) -> Iterator[Response]:
        """Submit many requests and yield each response as it completes.

        Yields:
            :class:`Response` envelopes in completion order (match them to
            requests via ``response.request_id``).
        """
        handles = [self.submit(request) for request in requests]
        completed: "queue.Queue[ResponseHandle]" = queue.Queue()
        for handle in handles:
            handle.add_done_callback(completed.put)
        for _ in range(len(handles)):
            yield completed.get().result()

    @property
    def queue_depth(self) -> int:
        """Tickets currently waiting in the scheduler queue (admission control)."""
        return self._scheduler.queue_depth

    def serving_stats(self) -> dict:
        """Scheduler batching observations (dispatch counts, batch sizes,
        current queue depth)."""
        stats = self._scheduler.stats.to_dict()
        stats["queue_depth"] = self._scheduler.queue_depth
        return stats

    def execution_snapshot(self) -> ExecutionStats:
        """Execution-plane resilience observations as a typed snapshot.

        Returns:
            An :class:`~repro.api.ExecutionStats` whose ``pools`` map each
            pool's ``tasks_executed`` / ``pool_rebuilds`` / ``retries`` /
            ``quarantined`` supervision counters (pools that have not run yet
            are omitted), ``totals`` sums them, ``distributed`` aggregates
            the distributed plane's ``workers`` / ``leases`` / ``requeues`` /
            ``rebalances`` across runners, and ``breakers`` carries the
            circuit-breaker snapshots.  The dataset generator's validation
            pool reports under the reserved name ``"dataset"``.  Counters
            accumulate across pool rebuilds, so every total is monotonic
            within one engine lifetime (``workers`` is a gauge).
        """
        with self._lock:
            runners = dict(self._experiment_runners)
        pools: dict[str, dict[str, int]] = {}
        totals = {"tasks_executed": 0, "pool_rebuilds": 0, "retries": 0, "quarantined": 0}
        distributed = {"workers": 0, "leases": 0, "requeues": 0, "rebalances": 0}
        sources: list[tuple[str, dict[str, int] | None]] = [
            (name, runner.pool_stats()) for name, runner in sorted(runners.items())
        ]
        sources.append(("dataset", self.dataset_generator.pool_stats()))
        for name, stats in sources:
            if not stats:
                continue
            pools[name] = stats
            for key in totals:
                totals[key] += int(stats.get(key, 0))
        for name, runner in sorted(runners.items()):
            stats = runner.distributed_stats()
            if not stats:
                continue
            pools[f"{name}:distributed"] = stats
            for key in totals:
                totals[key] += int(stats.get(key, 0))
            for key in distributed:
                distributed[key] += int(stats.get(key, 0))
        return ExecutionStats(
            pools=pools,
            totals=totals,
            distributed=distributed,
            breakers=self._breakers.to_dict(),
        )

    def execution_stats(self) -> dict:
        """The :meth:`execution_snapshot` in its historical wire-dict shape.

        Returns:
            ``{"pools": {target: counters}, "totals": counters,
            "distributed": counters, "breakers": {key: breaker snapshot}}``
            — see :meth:`execution_snapshot` for the counter semantics.
        """
        return self.execution_snapshot().to_dict()

    def cache_stats(self) -> dict[str, CacheStats]:
        """Typed hit/miss counters of the engine's four LRU caches.

        Returns:
            ``{"extract": ..., "encoder": ..., "render": ..., "compiled":
            ...}`` as :class:`~repro.api.CacheStats` — the NLP extraction,
            feature-encoder, grammar-render, and compiled-automaton caches.
        """
        return {
            "extract": CacheStats(**self.extractor.cache_info()),
            "encoder": CacheStats(**self.generator.encoder.cache_info()),
            "render": CacheStats(**self.generator.grammar.cache_info()),
            "compiled": CacheStats(**self.generator.compiler.cache_info()),
        }

    def open_breakers(self) -> int:
        """How many circuit breakers are currently open (failing fast).

        Surfaced on ``GET /healthz`` so load balancers can route around a
        shard whose execution planes are refusing work.
        """
        return sum(
            1
            for snapshot in self._breakers.to_dict().values()
            if snapshot.get("state") == "open"
        )

    # -- cache persistence -------------------------------------------------------------

    def save_caches(self, path: str | Path) -> dict[str, int]:
        """Persist the warm NLP/encoder/render caches to ``path`` (pickle).

        Successive processes (and freshly forked pool workers) can
        :meth:`load_caches` to skip re-encoding and re-rendering the prompts
        this engine already served.

        Args:
            path: Destination file; parent directories are created.

        Returns:
            Entry counts per cache (``extract``, ``encoder``, ``render``,
            ``compiled``).
        """
        payload = {
            "version": _CACHE_FORMAT_VERSION,
            "extract": self.extractor.export_cache(),
            "encoder": self.generator.encoder.export_cache(),
            "render": self.generator.grammar.export_cache(),
            "compiled": self.generator.compiler.export_cache(),
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as stream:
            pickle.dump(payload, stream)
        return {name: len(payload[name]) for name in ("extract", "encoder", "render", "compiled")}

    def load_caches(self, path: str | Path) -> dict[str, int]:
        """Restore caches saved by :meth:`save_caches` (trusted files only).

        The file is unpickled, so load caches only from paths you wrote —
        never from untrusted input.  Entries that do not fit the current
        model configuration (e.g. a different ``feature_dim``) are skipped.

        Args:
            path: File previously written by :meth:`save_caches`.

        Returns:
            Installed entry counts per cache.

        Raises:
            ReproError: If the file's format version is unsupported.
        """
        with Path(path).open("rb") as stream:
            payload = pickle.load(stream)
        if payload.get("version") != _CACHE_FORMAT_VERSION:
            raise ReproError(
                f"unsupported cache file version {payload.get('version')!r} "
                f"(expected {_CACHE_FORMAT_VERSION})"
            )
        return {
            "extract": self.extractor.import_cache(payload.get("extract", {})),
            "encoder": self.generator.encoder.import_cache(payload.get("encoder", {})),
            "render": self.generator.grammar.import_cache(payload.get("render", {})),
            # Absent in files written before the compiled-grammar cache existed.
            "compiled": self.generator.compiler.import_cache(payload.get("compiled", {})),
        }

    # -- preparation (dataset generation + fine-tuning) --------------------------------

    def prepare(
        self,
        targets: list[TargetSystem] | None = None,
        run_sft: bool = True,
    ) -> FaultDataset:
        """Generate the SFI dataset and (optionally) fine-tune the generator."""
        targets = targets if targets is not None else all_targets()
        self.dataset = self.dataset_generator.generate(targets)
        if run_sft and len(self.dataset) > 0:
            examples = self.dataset_generator.to_sft_examples(self.dataset)
            self.sft_report = self.sft_trainer.train(examples)
        return self.dataset

    def run_rlhf(
        self,
        prompts: list[GenerationPrompt],
        testers: list[SimulatedTester] | None = None,
        target: TargetSystem | str | None = None,
        mode: str | None = None,
    ) -> RLHFReport:
        """Run the RLHF loop over a set of prompts with (simulated) testers.

        Args:
            prompts: Generation prompts to refine the policy on.
            testers: Simulated testers; defaults to the standard pool.
            target: When given, every round of candidates is integrated and
                executed against this target as one sandbox batch (scheduled
                per ``config.execution``) and the execution evidence flows
                into the testers' ratings.
            mode: Execution mode for those batches; defaults to
                ``config.execution.default_mode``, except that an
                ``inprocess`` default is promoted to ``subprocess`` — the
                candidates are untrusted generated faults (a delay fault can
                sleep for minutes) and in-process execution has no timeout.
                Pass ``mode="inprocess"`` explicitly to accept that risk.

        Returns:
            The :class:`RLHFReport` history (also stored on ``rlhf_report``).
        """
        trainer = self._rlhf_trainer(testers=testers, target=target, mode=mode)
        self.rlhf_report = trainer.run(prompts)
        return self.rlhf_report

    def _rlhf_trainer(
        self,
        testers: list[SimulatedTester] | None = None,
        target: TargetSystem | str | None = None,
        mode: str | None = None,
        rlhf_config=None,
    ) -> RLHFTrainer:
        """Build an RLHF trainer wired to the shared generator and runners."""
        rlhf_config = rlhf_config or self.config.rlhf
        runner = self._runner_for(target) if target is not None else None
        return RLHFTrainer(
            self.generator,
            testers or tester_pool(seed=rlhf_config.seed),
            config=rlhf_config,
            runner=runner,
            execution_mode=self._resolve_mode(mode),
        )

    # -- individual workflow stages ----------------------------------------------------

    def define_fault(
        self, text: str, code: str | None = None, path: str | None = None
    ) -> tuple[FaultSpec, CodeContext | None]:
        """Stages 1–2: fault definition and NLP processing."""
        description = FaultDescription(text=text, code=code, source_path=path)
        context = None
        if code and self.config.use_code_context:
            context = self.analyzer.analyze(code, path=path)
        spec = self.extractor.extract(description, context=context)
        if context is not None:
            self.analyzer.select_function(context, text, hint=spec.target.function)
        return spec, context

    def build_prompt(
        self,
        spec: FaultSpec,
        context: CodeContext | None,
        feedback_directives: dict | None = None,
    ) -> GenerationPrompt:
        """Package a spec and code context for the generation model."""
        return self.prompts.build(spec, context, feedback_directives)

    def generate_fault(
        self, prompt: GenerationPrompt, greedy: bool = True, iteration: int = 0
    ) -> GenerationCandidate:
        """Stage 3: code generation."""
        return self.generator.generate(prompt, greedy=greedy, iteration=iteration)

    def generate_faults(
        self, prompts: list[GenerationPrompt], greedy: bool = True, iteration: int = 0
    ) -> list[GenerationCandidate]:
        """Stage 3, batched: one fault per prompt via one batched forward pass."""
        return self.generator.generate_batch(prompts, greedy=greedy, iteration=iteration)

    def refine(
        self,
        spec: FaultSpec,
        context: CodeContext | None,
        critique: str,
        iteration: int,
    ) -> tuple[FaultSpec, GenerationCandidate]:
        """Stage 4: fold one round of tester feedback into a new generation."""
        directives = self.feedback_parser.directives_from_text(critique)
        refined_spec = spec_with_feedback(spec, directives)
        prompt = self.build_prompt(refined_spec, context, feedback_directives=directives)
        candidate = self.generate_fault(prompt, greedy=True, iteration=iteration)
        return refined_spec, candidate

    def integrate_and_test(
        self, fault: GeneratedFault, target: TargetSystem | str, mode: str = "subprocess"
    ) -> ExperimentRecord:
        """Stages 5–6: automated integration and testing."""
        runner = self._runner_for(target)
        return runner.run_generated(fault, mode=mode)

    # -- imperative convenience entry points -------------------------------------------

    def inject(self, text: str, code: str | None = None, greedy: bool = True) -> GeneratedFault:
        """One-shot generation: description (+ code) → faulty code snippet."""
        spec, context = self.define_fault(text, code=code)
        prompt = self.build_prompt(spec, context)
        return self.generate_fault(prompt, greedy=greedy).fault

    def inject_many(
        self, texts: list[str], code: str | None = None, greedy: bool = True
    ) -> list[GeneratedFault]:
        """Batched :meth:`inject`: NLP per description, then one model batch."""
        prompts = []
        for text in texts:
            spec, context = self.define_fault(text, code=code)
            prompts.append(self.build_prompt(spec, context))
        return [candidate.fault for candidate in self.generate_faults(prompts, greedy=greedy)]

    def run_workflow(
        self,
        text: str,
        target: TargetSystem | str | None = None,
        code: str | None = None,
        feedback: FeedbackProvider | SimulatedTester | None = None,
        mode: str = "subprocess",
    ):
        """Execute the full Fig. 1 workflow for one fault description.

        ``feedback`` may be a callable returning a critique (or ``None`` to
        accept) or a :class:`SimulatedTester`; at most
        ``config.max_refinement_iterations`` refinement rounds are run.

        Returns:
            A :class:`~repro.core.results.WorkflowTrace` with per-stage
            timings and artefacts.
        """
        from ..core.results import WorkflowTrace

        target_system = get_target(target) if isinstance(target, str) else target
        if code is None and target_system is not None:
            code = target_system.build_source()
        trace = WorkflowTrace(description=text, target=target_system.name if target_system else None)

        started = time.perf_counter()
        trace.add_stage("fault_definition", time.perf_counter() - started, {"has_code": code is not None})

        started = time.perf_counter()
        try:
            spec, context = self.define_fault(text, code=code)
        except ReproError as exc:
            trace.add_stage("nlp_processing", time.perf_counter() - started, {"error": str(exc)}, succeeded=False)
            return trace
        trace.spec = spec
        trace.add_stage(
            "nlp_processing",
            time.perf_counter() - started,
            {
                "fault_type": spec.fault_type.value,
                "target_function": spec.target.function,
                "confidence": spec.confidence,
                "entities": len(spec.entities),
            },
        )

        started = time.perf_counter()
        prompt = self.build_prompt(spec, context)
        candidate = self.generate_fault(prompt)
        trace.add_stage(
            "code_generation",
            time.perf_counter() - started,
            {"template": candidate.decisions.template, "logprob": round(candidate.logprob, 3)},
        )

        started = time.perf_counter()
        rounds = 0
        current_spec = spec
        while rounds < self.config.max_refinement_iterations:
            critique = self._critique(feedback, current_spec, candidate)
            if not critique:
                break
            rounds += 1
            current_spec, candidate = self.refine(current_spec, context, critique, iteration=rounds)
        trace.feedback_rounds = rounds
        trace.fault = candidate.fault
        trace.add_stage("rlhf_refinement", time.perf_counter() - started, {"rounds": rounds})

        if target_system is None:
            return trace

        started = time.perf_counter()
        record = self.integrate_and_test(candidate.fault, target_system, mode=mode)
        integration_failed = bool(record.outcome.details.get("integration_failed"))
        trace.add_stage(
            "integration",
            time.perf_counter() - started,
            {"changed_lines": record.outcome.details.get("changed_lines", 0)},
            succeeded=not integration_failed,
        )
        trace.add_stage(
            "testing",
            record.outcome.duration_seconds,
            {
                "failure_mode": record.outcome.failure_mode.value,
                "activated": record.outcome.activated,
            },
            succeeded=not integration_failed,
        )
        trace.outcome = record.outcome
        return trace

    # -- request processing (scheduler callbacks) --------------------------------------

    def _process_generate_batch(self, tickets: list[Ticket]) -> None:
        """Serve one coalesced batch of generate tickets.

        The NLP stage runs through the extractor's batched, cache-assisted
        path; generation shares one batched forward pass across every
        surviving ticket; execution groups faults per (target, mode) into
        pooled sandbox batches.  Per-ticket failures resolve that ticket's
        handle with an error envelope without disturbing the rest.
        """
        dispatch_started = time.monotonic()
        live: list[tuple[Ticket, GenerationPrompt]] = []
        for ticket, prompt, error in self._nlp_stage(tickets):
            if error is not None:
                self._resolve_error(ticket, error, dispatch_started)
            else:
                live.append((ticket, prompt))
        if not live:
            return

        compiled = self.config.model.compiled_decode
        try:
            distributions = self.generator.prompt_distributions(
                [p for _, p in live], constrained=not compiled
            )
        except ReproError as exc:
            for ticket, _prompt in live:
                self._resolve_error(ticket, exc, dispatch_started)
            return
        survivors: list[tuple[Ticket, GenerationCandidate]] = []
        decode_seconds: dict[int, float] = {}
        for row, (ticket, prompt) in enumerate(live):
            if self._resolve_if_expired(ticket, dispatch_started, "before decoding"):
                continue
            request = ticket.request
            row_distributions = {slot: matrix[row] for slot, matrix in distributions.items()}
            decode_started = time.monotonic()
            try:
                automaton = self.generator.compiler.compile(prompt) if compiled else None
                candidate = self.generator.decode_prompt(
                    prompt,
                    row_distributions,
                    greedy=request.greedy,
                    decoder=None if request.greedy else self._request_decoder(request.seed),
                    temperature=request.temperature,
                    top_k=request.top_k,
                    top_p=request.top_p,
                    automaton=automaton,
                )
            except ReproError as exc:
                self._resolve_error(ticket, exc, dispatch_started)
                continue
            decode_seconds[id(ticket)] = time.monotonic() - decode_started
            survivors.append((ticket, candidate))

        outcomes = self._execution_stage(survivors, dispatch_started, batch_size=len(live))
        for ticket, candidate in survivors:
            if id(ticket) not in outcomes and ticket.request.execute:
                continue  # already resolved with an execution error
            if self._resolve_if_expired(ticket, dispatch_started, "before the response was built"):
                continue
            payload = GeneratePayload.from_candidate(
                candidate, outcome=outcomes.get(id(ticket)), batch_size=len(live)
            )
            self._resolve_ok(
                ticket, payload, dispatch_started, decode_seconds=decode_seconds[id(ticket)]
            )

    def _nlp_stage(
        self, tickets: list[Ticket]
    ) -> list[tuple[Ticket, GenerationPrompt | None, ReproError | None]]:
        """Stages 1–2 for a ticket batch via the cache-assisted batched extractor."""
        rows: list[tuple[Ticket, FaultDescription, CodeContext | None, ReproError | None]] = []
        for ticket in tickets:
            request = ticket.request
            try:
                code = request.code
                if code is None and request.target is not None:
                    code = get_target(request.target).build_source()
                context = None
                if code and self.config.use_code_context:
                    context = self.analyzer.analyze(code)
                rows.append((ticket, FaultDescription(text=request.description, code=code), context, None))
            except ReproError as exc:
                rows.append((ticket, FaultDescription(text=request.description), None, exc))

        healthy = [(t, d, c) for t, d, c, e in rows if e is None]
        specs: list[FaultSpec | ReproError] = []
        try:
            specs = list(
                self.extractor.extract_batch([d for _, d, _ in healthy], contexts=[c for _, _, c in healthy])
            )
        except ReproError:
            # One bad description poisons the batched path; fall back to
            # per-ticket extraction so only the offender fails.
            specs = []
            for _ticket, description, context in healthy:
                try:
                    specs.append(self.extractor.extract(description, context=context))
                except ReproError as exc:
                    specs.append(exc)

        results: list[tuple[Ticket, GenerationPrompt | None, ReproError | None]] = []
        healthy_index = 0
        for ticket, _description, context, error in rows:
            if error is not None:
                results.append((ticket, None, error))
                continue
            spec = specs[healthy_index]
            healthy_index += 1
            if isinstance(spec, ReproError):
                results.append((ticket, None, spec))
                continue
            try:
                if context is not None:
                    self.analyzer.select_function(
                        context, ticket.request.description, hint=spec.target.function
                    )
                results.append((ticket, self.prompts.build(spec, context), None))
            except ReproError as exc:
                results.append((ticket, None, exc))
        return results

    def _execution_stage(
        self,
        survivors: list[tuple[Ticket, GenerationCandidate]],
        dispatch_started: float,
        batch_size: int = 1,
    ) -> dict[int, InjectionOutcome]:
        """Stages 5–6 for the batch: pooled sandbox runs grouped per target/mode.

        Each (target, mode) plane is guarded by its circuit breaker: while the
        breaker is open, generate tickets degrade gracefully — the generated
        fault is still returned (``status="degraded"``, ``outcome=None``)
        with an ``ErrorInfo(kind="unavailable")`` attached instead of queueing
        more work behind a failing plane.  Transient sandbox errors are
        retried under the engine's deterministic
        :class:`~repro.resilience.RetryPolicy`, and per-ticket deadlines
        clamp the sandbox task budget.
        """
        groups: dict[tuple[str, str], list[tuple[Ticket, GenerationCandidate]]] = {}
        for ticket, candidate in survivors:
            request = ticket.request
            if not request.execute:
                continue
            key = (request.target, self._resolve_mode(request.mode))
            groups.setdefault(key, []).append((ticket, candidate))

        outcomes: dict[int, InjectionOutcome] = {}
        for (target, mode), members in groups.items():
            live: list[tuple[Ticket, GenerationCandidate]] = []
            for ticket, candidate in members:
                if not self._resolve_if_expired(ticket, dispatch_started, "before sandbox execution"):
                    live.append((ticket, candidate))
            if not live:
                continue

            breaker = self._breakers.get(target, mode)
            if not breaker.allow():
                error = CircuitOpenError(
                    f"execution plane '{target}:{mode}' is failing fast; "
                    f"retry after {breaker.retry_after():.0f}s",
                    key=breaker.key,
                )
                for ticket, candidate in live:
                    self._resolve_degraded(ticket, candidate, error, dispatch_started, batch_size)
                continue

            deadlines = [t.deadline for t, _ in live if t.deadline is not None]
            tightest = min(deadlines, key=lambda d: d.expires_at) if deadlines else None
            timeout_override = tightest.clamp(self.config.integration.test_timeout_seconds) if tightest else None
            runner = self._runner_for(target)
            faults = [candidate.fault for _, candidate in live]
            try:
                batch = self._retry.run(
                    lambda: runner.run_many(faults, mode=mode, timeout_seconds=timeout_override),
                    key=f"{target}:{mode}",
                    retry_on=(ReproError,),
                    deadline=tightest,
                )
            except ReproError as exc:
                breaker.record_failure()
                for ticket, _candidate in live:
                    self._resolve_error(ticket, exc, dispatch_started)
                continue
            breaker.record_success()
            for (ticket, _candidate), record in zip(live, batch.records):
                outcomes[id(ticket)] = record.outcome
        return outcomes

    def _resolve_degraded(
        self,
        ticket: Ticket,
        candidate: GenerationCandidate,
        exc: BaseException,
        dispatch_started: float,
        batch_size: int,
    ) -> None:
        """Resolve a generate ticket whose execution plane is failing fast.

        Graceful degradation: the generated fault is still delivered
        (``payload`` with ``outcome=None``) under ``status="degraded"``, with
        the breaker's error attached so clients know execution was skipped.
        """
        ticket.handle._resolve(
            Response(
                request_id=ticket.handle.request_id,
                kind=ticket.request.kind,
                status="degraded",
                payload=GeneratePayload.from_candidate(candidate, outcome=None, batch_size=batch_size),
                error=ErrorInfo.from_exception(exc),
                timings=self._timings(ticket, dispatch_started),
            )
        )

    def _resolve_if_expired(self, ticket: Ticket, dispatch_started: float, where: str) -> bool:
        """Resolve a ticket whose deadline elapsed mid-pipeline; True if it did."""
        if not ticket.expired():
            return False
        self._resolve_error(
            ticket,
            DeadlineExceededError(f"deadline exceeded {where}"),
            dispatch_started,
        )
        return True

    def _process_single(self, ticket: Ticket) -> None:
        """Serve one heavyweight (dataset / campaign / RLHF) ticket."""
        dispatch_started = time.monotonic()
        request = ticket.request
        try:
            self._check_single_breaker(request)
            if isinstance(request, DatasetRequest):
                payload = self._run_dataset(request)
            elif isinstance(request, CampaignRequest):
                payload = self._run_campaign(request)
            elif isinstance(request, RLHFRequest):
                payload = self._run_rlhf_request(request)
            else:  # pragma: no cover - submit() already rejects unknown kinds
                raise RequestError(f"unsupported request kind {type(request).__name__}")
            if ticket.expired():
                raise DeadlineExceededError("deadline exceeded during execution")
        except ReproError as exc:
            self._resolve_error(ticket, exc, dispatch_started)
            return
        self._resolve_ok(ticket, payload, dispatch_started)

    def _check_single_breaker(self, request: Request) -> None:
        """Fail a heavyweight request fast when its execution plane's breaker
        is open.

        Only the fully-open state rejects — a half-open breaker lets the
        request through as its recovery probe would for generate batches.
        The state is compared directly (not via ``allow()``) so heavyweight
        tickets never consume the limited half-open probe slots.
        """
        target = getattr(request, "target", None)
        if not isinstance(request, (CampaignRequest, RLHFRequest)) or not target:
            return
        mode = self._resolve_mode(request.mode)
        breaker = self._breakers.get(target, mode)
        if breaker.state == OPEN:
            raise CircuitOpenError(
                f"execution plane '{target}:{mode}' is failing fast; "
                f"retry after {breaker.retry_after():.0f}s",
                key=breaker.key,
            )

    def _run_dataset(self, request: DatasetRequest) -> DatasetPayload:
        """Execute a dataset sweep (optionally streaming and/or running SFT)."""
        overrides = {}
        if request.samples_per_target is not None:
            overrides["samples_per_target"] = request.samples_per_target
        if request.validate_candidates is not None:
            overrides["validate_candidates"] = request.validate_candidates
        generator = self.dataset_generator
        if overrides:
            generator = DatasetGenerator(
                replace(self.config.dataset, **overrides),
                execution=self.config.execution,
                extractor=self.extractor,
                analyzer=self.analyzer,
                prompts=self.prompts,
                resilience=self.config.resilience,
            )
        targets = [get_target(name) for name in request.targets] or None
        try:
            if request.jsonl_path is not None:
                path = generator.generate_to_jsonl(request.jsonl_path, targets)
                swept = targets if targets is not None else all_targets()
                records = sum(generator.stats.per_target.get(t.name, 0) for t in swept)
                return DatasetPayload(
                    records=records, stats=generator.stats.to_dict(), jsonl_path=str(path)
                )
            dataset = generator.generate(targets)
            self.dataset = dataset
            sft = None
            if request.run_sft and len(dataset) > 0:
                examples = generator.to_sft_examples(dataset)
                self.sft_report = self.sft_trainer.train(examples)
                sft = self.sft_report.to_dict()
            return DatasetPayload(records=len(dataset), stats=generator.stats.to_dict(), sft=sft)
        finally:
            if generator is not self.dataset_generator:
                generator.close()

    def _run_campaign(self, request: CampaignRequest) -> CampaignPayload:
        """Execute the comparison campaign for the requested techniques."""
        from ..core.campaign import CampaignOrchestrator

        orchestrator = CampaignOrchestrator(self, request.target, mode=request.mode)
        scenarios = list(request.scenarios)
        defined = orchestrator.define_scenarios(scenarios)
        payload = CampaignPayload(target=request.target)
        if "neural" in request.techniques:
            result = orchestrator.run_neural(scenarios, defined=defined)
            payload.techniques["neural"] = result.to_dict()
        if "predefined-model" in request.techniques:
            result = orchestrator.run_predefined(scenarios, budget=request.budget, defined=defined)
            payload.techniques["predefined-model"] = result.to_dict()
        if "random" in request.techniques:
            result = orchestrator.run_random(scenarios, budget=request.budget, defined=defined)
            payload.techniques["random"] = result.to_dict()
        return payload

    def _run_rlhf_request(self, request: RLHFRequest) -> RLHFPayload:
        """Execute the RLHF loop for a typed request."""
        code = request.code
        if code is None and request.target is not None:
            code = get_target(request.target).build_source()
        prompts = []
        for text in request.descriptions:
            spec, context = self.define_fault(text, code=code)
            prompts.append(self.build_prompt(spec, context))
        overrides = {}
        if request.iterations is not None:
            overrides["iterations"] = request.iterations
        if request.candidates_per_iteration is not None:
            overrides["candidates_per_iteration"] = request.candidates_per_iteration
        rlhf_config = replace(self.config.rlhf, **overrides) if overrides else self.config.rlhf
        trainer = self._rlhf_trainer(
            target=request.target, mode=request.mode, rlhf_config=rlhf_config
        )
        self.rlhf_report = trainer.run(prompts)
        return RLHFPayload(report=self.rlhf_report.to_dict(), prompts=len(prompts))

    # -- internals ---------------------------------------------------------------------

    def _request_decoder(self, seed: int | None) -> Decoder:
        """A decoder seeded exactly like a fresh solo pipeline's decoder.

        The RNG chain mirrors ``SeededRNG(seed, "pipeline")`` →
        ``fork("generator")`` → ``fork("decoder")``.  With the default seed
        (``None`` → the pipeline seed), a sampled request therefore decodes
        bit-identically to the *first* sample drawn by a fresh
        :class:`NeuralFaultInjector` under the same config — no matter how
        requests were grouped.  An explicit per-request seed pins the
        request's own sample stream instead (identical between grouped and
        solo submission on the same engine); the policy weights still come
        from the pipeline seed.
        """
        effective = self.config.seed if seed is None else seed
        chain = SeededRNG(effective, namespace="pipeline").fork("generator").fork("decoder")
        return Decoder(self.config.model, rng=chain)

    def _resolve_mode(self, mode: str | None) -> str:
        """Default execution mode with the untrusted-fault promotion applied."""
        if mode is None:
            mode = self.config.execution.default_mode
            if mode == "inprocess":
                mode = "subprocess"
        return mode

    def _resolve_ok(
        self, ticket: Ticket, payload, dispatch_started: float, decode_seconds: float = 0.0
    ) -> None:
        ticket.handle._resolve(
            Response(
                request_id=ticket.handle.request_id,
                kind=ticket.request.kind,
                status="ok",
                payload=payload,
                timings=self._timings(ticket, dispatch_started, decode_seconds),
            )
        )

    def _resolve_error(self, ticket: Ticket, exc: BaseException, dispatch_started: float) -> None:
        ticket.handle._resolve(
            Response(
                request_id=ticket.handle.request_id,
                kind=ticket.request.kind,
                status="error",
                error=ErrorInfo.from_exception(exc),
                timings=self._timings(ticket, dispatch_started),
            )
        )

    @staticmethod
    def _timings(ticket: Ticket, dispatch_started: float, decode_seconds: float = 0.0) -> Timings:
        now = time.monotonic()
        return Timings(
            queued_seconds=max(0.0, dispatch_started - ticket.submitted_at),
            execution_seconds=max(0.0, now - dispatch_started),
            decode_seconds=max(0.0, decode_seconds),
        )

    def _runner_for(self, target: TargetSystem | str) -> ExperimentRunner:
        """The shared per-target experiment runner (created lazily)."""
        target_system = get_target(target) if isinstance(target, str) else target
        with self._lock:
            if target_system.name not in self._experiment_runners:
                self._experiment_runners[target_system.name] = ExperimentRunner(
                    target_system,
                    config=self.config.integration,
                    seed=self.config.seed,
                    execution=self.config.execution,
                    resilience=self.config.resilience,
                )
            return self._experiment_runners[target_system.name]

    @staticmethod
    def _critique(
        feedback: FeedbackProvider | SimulatedTester | None,
        spec: FaultSpec,
        candidate: GenerationCandidate,
    ) -> str | None:
        if feedback is None:
            return None
        if isinstance(feedback, SimulatedTester):
            review = feedback.review(spec, candidate)
            return None if review.accept else review.critique
        return feedback(spec, candidate)
