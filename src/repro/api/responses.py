"""The versioned response envelope of the fault-injection service layer.

Every request — whatever its kind and however it was submitted — resolves to
one :class:`Response`: a stable envelope carrying the request id, a status, a
typed payload, a structured error (never a raw traceback), and coarse serving
timings.  ``schema_version`` lets clients detect envelope evolution.

Payload float fields that derive from model arithmetic (log-probabilities)
are rounded to ``1e-9`` in :meth:`to_dict` — the library's established
numerical oracle tolerance — so envelopes are byte-stable across batched and
solo execution (batched matmuls may differ from solo matvecs in the last
float bit).  Wall-clock measurements (sandbox durations, envelope timings)
are inherently non-deterministic and are documented as such in docs/API.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import (
    AdmissionError,
    CircuitOpenError,
    DeadlineExceededError,
    EngineClosedError,
    RequestCancelledError,
    RequestError,
)
from ..llm.generator import GenerationCandidate
from ..types import GeneratedFault, InjectionOutcome

#: Version of the response envelope layout.
SCHEMA_VERSION = "1.0"

#: Exception type → machine-readable error kind.  Anything unmapped is a
#: plain ``"error"``; HTTP front-ends map kinds to status codes (timeout →
#: 504, overloaded → 429, unavailable → 503, cancelled → 499).
_ERROR_KINDS: tuple[tuple[type[BaseException], str], ...] = (
    (DeadlineExceededError, "timeout"),
    (RequestCancelledError, "cancelled"),
    (AdmissionError, "overloaded"),
    (CircuitOpenError, "unavailable"),
    (EngineClosedError, "unavailable"),
)


def error_kind_for(exc: BaseException) -> str:
    """The machine-readable error kind for a raised exception."""
    for exc_type, kind in _ERROR_KINDS:
        if isinstance(exc, exc_type):
            return kind
    return "error"

#: Decimal places used to quantize model-arithmetic floats in envelopes.
_LOGPROB_DECIMALS = 9


@dataclass(frozen=True)
class ErrorInfo:
    """A structured, client-safe error description.

    ``kind`` is the machine-readable failure class clients should branch on
    (``"error"``, ``"timeout"``, ``"cancelled"``, ``"overloaded"``,
    ``"unavailable"``); ``type`` names the originating exception class and is
    informational.
    """

    type: str
    message: str
    kind: str = "error"

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the error."""
        return {"type": self.type, "message": self.message, "kind": self.kind}

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorInfo":
        """Build an error record from a raised exception."""
        return cls(type=type(exc).__name__, message=str(exc), kind=error_kind_for(exc))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ErrorInfo":
        """Decode the wire view produced by :meth:`to_dict`."""
        return cls(
            type=str(data.get("type", "")),
            message=str(data.get("message", "")),
            kind=str(data.get("kind", "error")),
        )


@dataclass(frozen=True)
class Timings:
    """Coarse serving timings of one request (wall-clock, non-deterministic).

    ``decode_seconds`` is the slice of ``execution_seconds`` the engine spent
    in constrained decoding for this request (zero for request kinds that do
    not decode); it is a component breakdown, so the wire total remains
    ``queued + execution``.
    """

    queued_seconds: float = 0.0
    execution_seconds: float = 0.0
    decode_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.queued_seconds + self.execution_seconds

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the timings (microsecond precision).

        The wire total is derived from the *rounded* components — not from
        ``total_seconds`` directly — so decoding an envelope and re-encoding
        it (:meth:`from_dict` → :meth:`to_dict`) is byte-exact.
        """
        queued = round(self.queued_seconds, 6)
        execution = round(self.execution_seconds, 6)
        return {
            "queued_seconds": queued,
            "execution_seconds": execution,
            "decode_seconds": round(self.decode_seconds, 6),
            "total_seconds": round(queued + execution, 6),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Timings":
        """Decode the wire view (``total_seconds`` is derived, not stored)."""
        try:
            return cls(
                queued_seconds=float(data.get("queued_seconds", 0.0)),
                execution_seconds=float(data.get("execution_seconds", 0.0)),
                decode_seconds=float(data.get("decode_seconds", 0.0)),
            )
        except (TypeError, ValueError) as exc:
            raise RequestError(f"malformed timings: {exc}") from exc


@dataclass
class GeneratePayload:
    """Typed payload of a :class:`~repro.api.GenerateRequest`."""

    fault: GeneratedFault
    strategy: str
    logprob: float
    batch_size: int = 1
    outcome: InjectionOutcome | None = None

    @classmethod
    def from_candidate(
        cls,
        candidate: GenerationCandidate,
        outcome: InjectionOutcome | None = None,
        batch_size: int = 1,
    ) -> "GeneratePayload":
        """Build the payload from a generation candidate (+ optional outcome).

        Both the engine and the determinism tests build payloads through this
        constructor, so "engine output equals solo pipeline output" is pinned
        at the payload level.
        """
        return cls(
            fault=candidate.fault,
            strategy=candidate.fault.metadata.get("strategy", ""),
            logprob=candidate.logprob,
            batch_size=batch_size,
            outcome=outcome,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able payload with model-arithmetic floats quantized to 1e-9.

        ``batch_size`` (how many requests shared the forward pass) and the
        outcome's measured ``duration_seconds`` are serving observations, not
        part of the deterministic result; :meth:`deterministic_dict` excludes
        them.
        """
        data = self.deterministic_dict()
        data["batch_size"] = self.batch_size
        if self.outcome is not None:
            data["outcome"]["duration_seconds"] = self.outcome.duration_seconds
        return data

    def deterministic_dict(self) -> dict[str, Any]:
        """The payload fields pinned byte-identical across solo/batched runs."""
        fault = self.fault.to_dict()
        fault["logprob"] = round(fault["logprob"], _LOGPROB_DECIMALS)
        data: dict[str, Any] = {
            "fault": fault,
            "strategy": self.strategy,
            "logprob": round(self.logprob, _LOGPROB_DECIMALS),
            "outcome": None,
        }
        if self.outcome is not None:
            outcome = self.outcome.to_dict()
            outcome.pop("duration_seconds", None)
            data["outcome"] = outcome
        return data


@dataclass
class DatasetPayload:
    """Typed payload of a :class:`~repro.api.DatasetRequest`."""

    records: int
    stats: dict[str, Any]
    sft: dict[str, Any] | None = None
    jsonl_path: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-able payload (record counts and stats, not the records)."""
        return {
            "records": self.records,
            "stats": dict(self.stats),
            "sft": dict(self.sft) if self.sft is not None else None,
            "jsonl_path": self.jsonl_path,
        }


@dataclass
class CampaignPayload:
    """Typed payload of a :class:`~repro.api.CampaignRequest`."""

    target: str
    techniques: dict[str, dict[str, Any]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able payload: one comparison record per technique."""
        return {"target": self.target, "techniques": {k: dict(v) for k, v in self.techniques.items()}}


@dataclass
class RLHFPayload:
    """Typed payload of an :class:`~repro.api.RLHFRequest`."""

    report: dict[str, Any]
    prompts: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-able payload: the RLHF history plus the prompt count."""
        return {"report": dict(self.report), "prompts": self.prompts}


@dataclass(frozen=True)
class WirePayload:
    """A decoded payload as received off the wire (plain JSON data).

    Remote clients cannot rebuild the typed payload classes — those hold
    library objects (:class:`~repro.types.GeneratedFault`, outcomes) that the
    wire deliberately flattens.  :meth:`Response.from_dict` therefore wraps
    the payload object in this shim, which round-trips byte-identically
    through :meth:`to_dict`.
    """

    data: Mapping[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """The payload exactly as it appeared on the wire."""
        return dict(self.data)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]


@dataclass
class Response:
    """The versioned envelope every request resolves to."""

    request_id: str
    kind: str
    status: str
    payload: GeneratePayload | DatasetPayload | CampaignPayload | RLHFPayload | WirePayload | None = None
    error: ErrorInfo | None = None
    timings: Timings = field(default_factory=Timings)
    schema_version: str = SCHEMA_VERSION

    @property
    def ok(self) -> bool:
        """Whether the request succeeded."""
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the whole envelope."""
        return {
            "schema_version": self.schema_version,
            "request_id": self.request_id,
            "kind": self.kind,
            "status": self.status,
            "payload": self.payload.to_dict() if self.payload is not None else None,
            "error": self.error.to_dict() if self.error is not None else None,
            "timings": self.timings.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Response":
        """Decode a wire envelope (e.g. an HTTP response body) back into a
        :class:`Response`.

        The payload comes back as a :class:`WirePayload` (plain JSON data);
        everything else — ids, status, error, timings, schema version — is
        restored as typed objects.  ``Response.from_dict(r.to_dict())``
        round-trips the wire form exactly.

        Raises:
            RequestError: If ``data`` is not a JSON object or misses the
                envelope's required keys.
        """
        if not isinstance(data, Mapping):
            raise RequestError(f"envelope must be a JSON object, got {type(data).__name__}")
        missing = [key for key in ("request_id", "kind", "status") if key not in data]
        if missing:
            raise RequestError(f"envelope is missing required keys {missing}")
        payload = data.get("payload")
        if payload is not None and not isinstance(payload, Mapping):
            raise RequestError("envelope payload must be a JSON object or null")
        error = data.get("error")
        if error is not None and not isinstance(error, Mapping):
            raise RequestError("envelope error must be a JSON object or null")
        timings = data.get("timings") or {}
        if not isinstance(timings, Mapping):
            raise RequestError("envelope timings must be a JSON object")
        return cls(
            request_id=str(data["request_id"]),
            kind=str(data["kind"]),
            status=str(data["status"]),
            payload=WirePayload(dict(payload)) if payload is not None else None,
            error=ErrorInfo.from_dict(error) if error is not None else None,
            timings=Timings.from_dict(timings),
            schema_version=str(data.get("schema_version", SCHEMA_VERSION)),
        )
