"""The versioned response envelope of the fault-injection service layer.

Every request — whatever its kind and however it was submitted — resolves to
one :class:`Response`: a stable envelope carrying the request id, a status, a
typed payload, a structured error (never a raw traceback), and coarse serving
timings.  ``schema_version`` lets clients detect envelope evolution.

Payload float fields that derive from model arithmetic (log-probabilities)
are rounded to ``1e-9`` in :meth:`to_dict` — the library's established
numerical oracle tolerance — so envelopes are byte-stable across batched and
solo execution (batched matmuls may differ from solo matvecs in the last
float bit).  Wall-clock measurements (sandbox durations, envelope timings)
are inherently non-deterministic and are documented as such in docs/API.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import (
    AdmissionError,
    CircuitOpenError,
    DeadlineExceededError,
    EngineClosedError,
    RequestCancelledError,
    RequestError,
)
from ..llm.generator import GenerationCandidate
from ..types import GeneratedFault, InjectionOutcome

#: Version of the response envelope layout.
SCHEMA_VERSION = "1.0"

#: Exception type → machine-readable error kind.  Anything unmapped is a
#: plain ``"error"``; HTTP front-ends map kinds to status codes (timeout →
#: 504, overloaded → 429, unavailable → 503, cancelled → 499).
_ERROR_KINDS: tuple[tuple[type[BaseException], str], ...] = (
    (DeadlineExceededError, "timeout"),
    (RequestCancelledError, "cancelled"),
    (AdmissionError, "overloaded"),
    (CircuitOpenError, "unavailable"),
    (EngineClosedError, "unavailable"),
)


def error_kind_for(exc: BaseException) -> str:
    """The machine-readable error kind for a raised exception."""
    for exc_type, kind in _ERROR_KINDS:
        if isinstance(exc, exc_type):
            return kind
    return "error"

#: Decimal places used to quantize model-arithmetic floats in envelopes.
_LOGPROB_DECIMALS = 9


@dataclass(frozen=True)
class ErrorInfo:
    """A structured, client-safe error description.

    ``kind`` is the machine-readable failure class clients should branch on
    (``"error"``, ``"timeout"``, ``"cancelled"``, ``"overloaded"``,
    ``"unavailable"``); ``type`` names the originating exception class and is
    informational.
    """

    type: str
    message: str
    kind: str = "error"

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the error."""
        return {"type": self.type, "message": self.message, "kind": self.kind}

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorInfo":
        """Build an error record from a raised exception."""
        return cls(type=type(exc).__name__, message=str(exc), kind=error_kind_for(exc))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ErrorInfo":
        """Decode the wire view produced by :meth:`to_dict`."""
        return cls(
            type=str(data.get("type", "")),
            message=str(data.get("message", "")),
            kind=str(data.get("kind", "error")),
        )


@dataclass(frozen=True)
class Timings:
    """Coarse serving timings of one request (wall-clock, non-deterministic).

    ``decode_seconds`` is the slice of ``execution_seconds`` the engine spent
    in constrained decoding for this request (zero for request kinds that do
    not decode); it is a component breakdown, so the wire total remains
    ``queued + execution``.
    """

    queued_seconds: float = 0.0
    execution_seconds: float = 0.0
    decode_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.queued_seconds + self.execution_seconds

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the timings (microsecond precision).

        The wire total is derived from the *rounded* components — not from
        ``total_seconds`` directly — so decoding an envelope and re-encoding
        it (:meth:`from_dict` → :meth:`to_dict`) is byte-exact.
        """
        queued = round(self.queued_seconds, 6)
        execution = round(self.execution_seconds, 6)
        return {
            "queued_seconds": queued,
            "execution_seconds": execution,
            "decode_seconds": round(self.decode_seconds, 6),
            "total_seconds": round(queued + execution, 6),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Timings":
        """Decode the wire view (``total_seconds`` is derived, not stored)."""
        try:
            return cls(
                queued_seconds=float(data.get("queued_seconds", 0.0)),
                execution_seconds=float(data.get("execution_seconds", 0.0)),
                decode_seconds=float(data.get("decode_seconds", 0.0)),
            )
        except (TypeError, ValueError) as exc:
            raise RequestError(f"malformed timings: {exc}") from exc


@dataclass
class GeneratePayload:
    """Typed payload of a :class:`~repro.api.GenerateRequest`."""

    fault: GeneratedFault
    strategy: str
    logprob: float
    batch_size: int = 1
    outcome: InjectionOutcome | None = None

    @classmethod
    def from_candidate(
        cls,
        candidate: GenerationCandidate,
        outcome: InjectionOutcome | None = None,
        batch_size: int = 1,
    ) -> "GeneratePayload":
        """Build the payload from a generation candidate (+ optional outcome).

        Both the engine and the determinism tests build payloads through this
        constructor, so "engine output equals solo pipeline output" is pinned
        at the payload level.
        """
        return cls(
            fault=candidate.fault,
            strategy=candidate.fault.metadata.get("strategy", ""),
            logprob=candidate.logprob,
            batch_size=batch_size,
            outcome=outcome,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able payload with model-arithmetic floats quantized to 1e-9.

        ``batch_size`` (how many requests shared the forward pass) and the
        outcome's measured ``duration_seconds`` are serving observations, not
        part of the deterministic result; :meth:`deterministic_dict` excludes
        them.
        """
        data = self.deterministic_dict()
        data["batch_size"] = self.batch_size
        if self.outcome is not None:
            data["outcome"]["duration_seconds"] = self.outcome.duration_seconds
        return data

    def deterministic_dict(self) -> dict[str, Any]:
        """The payload fields pinned byte-identical across solo/batched runs."""
        fault = self.fault.to_dict()
        fault["logprob"] = round(fault["logprob"], _LOGPROB_DECIMALS)
        data: dict[str, Any] = {
            "fault": fault,
            "strategy": self.strategy,
            "logprob": round(self.logprob, _LOGPROB_DECIMALS),
            "outcome": None,
        }
        if self.outcome is not None:
            outcome = self.outcome.to_dict()
            outcome.pop("duration_seconds", None)
            data["outcome"] = outcome
        return data


@dataclass
class DatasetPayload:
    """Typed payload of a :class:`~repro.api.DatasetRequest`."""

    records: int
    stats: dict[str, Any]
    sft: dict[str, Any] | None = None
    jsonl_path: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-able payload (record counts and stats, not the records)."""
        return {
            "records": self.records,
            "stats": dict(self.stats),
            "sft": dict(self.sft) if self.sft is not None else None,
            "jsonl_path": self.jsonl_path,
        }


@dataclass
class CampaignPayload:
    """Typed payload of a :class:`~repro.api.CampaignRequest`."""

    target: str
    techniques: dict[str, dict[str, Any]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able payload: one comparison record per technique."""
        return {"target": self.target, "techniques": {k: dict(v) for k, v in self.techniques.items()}}


@dataclass
class RLHFPayload:
    """Typed payload of an :class:`~repro.api.RLHFRequest`."""

    report: dict[str, Any]
    prompts: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-able payload: the RLHF history plus the prompt count."""
        return {"report": dict(self.report), "prompts": self.prompts}


@dataclass(frozen=True)
class WirePayload:
    """A decoded payload as received off the wire (plain JSON data).

    Remote clients cannot rebuild the typed payload classes — those hold
    library objects (:class:`~repro.types.GeneratedFault`, outcomes) that the
    wire deliberately flattens.  :meth:`Response.from_dict` therefore wraps
    the payload object in this shim, which round-trips byte-identically
    through :meth:`to_dict`.
    """

    data: Mapping[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """The payload exactly as it appeared on the wire."""
        return dict(self.data)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]


def _reject_unknown_fields(cls_name: str, data: Mapping[str, Any], known: set[str]) -> None:
    """Strict wire-codec guard shared by the stats dataclasses.

    Raises:
        RequestError: Naming the unknown fields, mirroring the request
            codecs, so clients learn exactly which key they misspelled.
    """
    unknown = sorted(set(data) - known)
    if unknown:
        raise RequestError(
            f"unknown {cls_name} fields {unknown}; known fields: {sorted(known)}"
        )


def _require_mapping(cls_name: str, data: Any) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise RequestError(f"{cls_name} must be a JSON object, got {type(data).__name__}")
    return data


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one LRU cache in the shared cache-info layout.

    Every cache in the stack (NLP extraction, feature encoding, grammar
    rendering, compiled automatons) reports exactly these four counters, so
    the wire form round-trips byte-exactly through
    :meth:`from_dict`/:meth:`to_dict`.
    """

    hits: int = 0
    misses: int = 0
    size: int = 0
    max_size: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view (identical to the runtime ``cache_info()`` layout)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "max_size": self.max_size,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CacheStats":
        """Decode the wire view; unknown fields are rejected by name.

        Raises:
            RequestError: On non-object data, unknown fields, or
                non-integer counters.
        """
        data = _require_mapping("cache stats", data)
        _reject_unknown_fields("cache stats", data, {"hits", "misses", "size", "max_size"})
        try:
            return cls(
                hits=int(data.get("hits", 0)),
                misses=int(data.get("misses", 0)),
                size=int(data.get("size", 0)),
                max_size=int(data.get("max_size", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise RequestError(f"malformed cache stats: {exc}") from exc


@dataclass(frozen=True)
class ExecutionStats:
    """Execution-plane resilience observations of one engine.

    The typed form of ``engine.execution_stats()``: per-pool supervision
    counters, their monotonic totals, the distributed-plane gauges, and the
    circuit-breaker snapshots.  The nested counter mappings are carried as
    plain data (their keys are the supervision counters documented on
    :meth:`~repro.api.FaultInjectionEngine.execution_stats`), so the wire
    form round-trips byte-exactly.
    """

    pools: Mapping[str, Any] = field(default_factory=dict)
    totals: Mapping[str, Any] = field(default_factory=dict)
    distributed: Mapping[str, Any] = field(default_factory=dict)
    breakers: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view (the historical ``execution_stats()`` dict shape)."""
        return {
            "pools": {name: dict(counters) for name, counters in self.pools.items()},
            "totals": dict(self.totals),
            "distributed": dict(self.distributed),
            "breakers": {name: dict(snapshot) for name, snapshot in self.breakers.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionStats":
        """Decode the wire view; unknown fields are rejected by name.

        Raises:
            RequestError: On non-object data, unknown fields, or non-object
                sections.
        """
        data = _require_mapping("execution stats", data)
        _reject_unknown_fields(
            "execution stats", data, {"pools", "totals", "distributed", "breakers"}
        )
        sections = {}
        for key in ("pools", "totals", "distributed", "breakers"):
            sections[key] = _require_mapping(f"execution stats {key!r}", data.get(key, {}))
        return cls(
            pools=dict(sections["pools"]),
            totals=dict(sections["totals"]),
            distributed=dict(sections["distributed"]),
            breakers=dict(sections["breakers"]),
        )


@dataclass(frozen=True)
class ShardInfo:
    """One engine shard as seen by the sharded front-end (docs/SHARDING.md).

    ``respawns`` counts supervision restarts of this shard's worker process
    (the shard-level analogue of the pool's ``pool_rebuilds``); gauges
    (``queue_depth``, ``open_breakers``) are the shard's own at snapshot
    time.  ``stats`` optionally embeds the shard's full stats snapshot as
    plain wire data (``None`` when the shard was unreachable).
    """

    index: int
    url: str
    alive: bool = True
    respawns: int = 0
    queue_depth: int = 0
    draining: bool = False
    open_breakers: int = 0
    stats: Mapping[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view; ``stats`` is omitted when not captured."""
        data: dict[str, Any] = {
            "index": self.index,
            "url": self.url,
            "alive": self.alive,
            "respawns": self.respawns,
            "queue_depth": self.queue_depth,
            "draining": self.draining,
            "open_breakers": self.open_breakers,
        }
        if self.stats is not None:
            data["stats"] = dict(self.stats)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardInfo":
        """Decode the wire view; unknown fields are rejected by name.

        Raises:
            RequestError: On non-object data, unknown fields, or malformed
                field values.
        """
        data = _require_mapping("shard info", data)
        _reject_unknown_fields(
            "shard info",
            data,
            {"index", "url", "alive", "respawns", "queue_depth", "draining",
             "open_breakers", "stats"},
        )
        stats = data.get("stats")
        if stats is not None:
            stats = dict(_require_mapping("shard info 'stats'", stats))
        try:
            return cls(
                index=int(data.get("index", 0)),
                url=str(data.get("url", "")),
                alive=bool(data.get("alive", True)),
                respawns=int(data.get("respawns", 0)),
                queue_depth=int(data.get("queue_depth", 0)),
                draining=bool(data.get("draining", False)),
                open_breakers=int(data.get("open_breakers", 0)),
                stats=stats,
            )
        except (TypeError, ValueError) as exc:
            raise RequestError(f"malformed shard info: {exc}") from exc


@dataclass(frozen=True)
class StatsSnapshot:
    """The typed, versioned ``GET /v1/stats`` body.

    In the single-engine topology the snapshot carries the front-end's
    ``server`` counters plus the engine's ``scheduler``/``execution``/
    ``caches`` sections — byte-identical on the wire to the historical
    ad-hoc dict.  In the sharded topology the engine sections live inside
    each :class:`ShardInfo` instead, and ``aggregate`` carries the
    cross-shard view (monotonic counters accumulate across shard respawns;
    see docs/SHARDING.md).
    """

    server: Mapping[str, Any]
    scheduler: Mapping[str, Any] | None = None
    execution: ExecutionStats | None = None
    caches: Mapping[str, CacheStats] | None = None
    shards: tuple[ShardInfo, ...] = ()
    aggregate: Mapping[str, Any] | None = None
    schema_version: str = SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view; topology-absent sections are omitted entirely."""
        data: dict[str, Any] = {
            "schema_version": self.schema_version,
            "server": dict(self.server),
        }
        if self.scheduler is not None:
            data["scheduler"] = dict(self.scheduler)
        if self.execution is not None:
            data["execution"] = self.execution.to_dict()
        if self.caches is not None:
            data["caches"] = {name: cache.to_dict() for name, cache in self.caches.items()}
        if self.shards:
            data["shards"] = [shard.to_dict() for shard in self.shards]
        if self.aggregate is not None:
            data["aggregate"] = dict(self.aggregate)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StatsSnapshot":
        """Decode a wire stats body back into the typed snapshot.

        ``StatsSnapshot.from_dict(s.to_dict())`` round-trips byte-exactly in
        both topologies.

        Raises:
            RequestError: On non-object data, unknown fields, a missing
                ``server`` section, or malformed nested sections.
        """
        data = _require_mapping("stats snapshot", data)
        _reject_unknown_fields(
            "stats snapshot",
            data,
            {"schema_version", "server", "scheduler", "execution", "caches",
             "shards", "aggregate"},
        )
        if "server" not in data:
            raise RequestError("stats snapshot is missing its 'server' section")
        server = dict(_require_mapping("stats snapshot 'server'", data["server"]))
        scheduler = data.get("scheduler")
        if scheduler is not None:
            scheduler = dict(_require_mapping("stats snapshot 'scheduler'", scheduler))
        execution = data.get("execution")
        if execution is not None:
            execution = ExecutionStats.from_dict(execution)
        caches = data.get("caches")
        if caches is not None:
            caches = {
                str(name): CacheStats.from_dict(cache)
                for name, cache in _require_mapping("stats snapshot 'caches'", caches).items()
            }
        shards_data = data.get("shards", [])
        if not isinstance(shards_data, (list, tuple)):
            raise RequestError("stats snapshot 'shards' must be a JSON array")
        aggregate = data.get("aggregate")
        if aggregate is not None:
            aggregate = dict(_require_mapping("stats snapshot 'aggregate'", aggregate))
        return cls(
            server=server,
            scheduler=scheduler,
            execution=execution,
            caches=caches,
            shards=tuple(ShardInfo.from_dict(entry) for entry in shards_data),
            aggregate=aggregate,
            schema_version=str(data.get("schema_version", SCHEMA_VERSION)),
        )


@dataclass
class Response:
    """The versioned envelope every request resolves to."""

    request_id: str
    kind: str
    status: str
    payload: GeneratePayload | DatasetPayload | CampaignPayload | RLHFPayload | WirePayload | None = None
    error: ErrorInfo | None = None
    timings: Timings = field(default_factory=Timings)
    schema_version: str = SCHEMA_VERSION

    @property
    def ok(self) -> bool:
        """Whether the request succeeded."""
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the whole envelope."""
        return {
            "schema_version": self.schema_version,
            "request_id": self.request_id,
            "kind": self.kind,
            "status": self.status,
            "payload": self.payload.to_dict() if self.payload is not None else None,
            "error": self.error.to_dict() if self.error is not None else None,
            "timings": self.timings.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Response":
        """Decode a wire envelope (e.g. an HTTP response body) back into a
        :class:`Response`.

        The payload comes back as a :class:`WirePayload` (plain JSON data);
        everything else — ids, status, error, timings, schema version — is
        restored as typed objects.  ``Response.from_dict(r.to_dict())``
        round-trips the wire form exactly.

        Raises:
            RequestError: If ``data`` is not a JSON object or misses the
                envelope's required keys.
        """
        if not isinstance(data, Mapping):
            raise RequestError(f"envelope must be a JSON object, got {type(data).__name__}")
        missing = [key for key in ("request_id", "kind", "status") if key not in data]
        if missing:
            raise RequestError(f"envelope is missing required keys {missing}")
        payload = data.get("payload")
        if payload is not None and not isinstance(payload, Mapping):
            raise RequestError("envelope payload must be a JSON object or null")
        error = data.get("error")
        if error is not None and not isinstance(error, Mapping):
            raise RequestError("envelope error must be a JSON object or null")
        timings = data.get("timings") or {}
        if not isinstance(timings, Mapping):
            raise RequestError("envelope timings must be a JSON object")
        return cls(
            request_id=str(data["request_id"]),
            kind=str(data["kind"]),
            status=str(data["status"]),
            payload=WirePayload(dict(payload)) if payload is not None else None,
            error=ErrorInfo.from_dict(error) if error is not None else None,
            timings=Timings.from_dict(timings),
            schema_version=str(data.get("schema_version", SCHEMA_VERSION)),
        )
