"""Typed, validated request objects for the fault-injection service layer.

Each request is a frozen dataclass that validates itself at construction time,
so malformed requests fail at the client boundary — before they ever reach the
scheduler — with a :class:`~repro.errors.RequestError` naming the offending
field.  The four request kinds map onto the paper's workloads:

* :class:`GenerateRequest` — one Fig. 1 pass: description → spec → faulty
  code, optionally integrated and tested against a target;
* :class:`DatasetRequest` — an SFI dataset sweep (Section IV-1), optionally
  followed by supervised fine-tuning;
* :class:`CampaignRequest` — the neural-vs-baselines comparison campaign
  (Section V) over one target;
* :class:`RLHFRequest` — the iterative tester-feedback loop (Section III-B.3).

Requests are immutable and hashable, so they can be logged, retried, and
de-duplicated safely by serving frontends.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

from ..config import EXECUTION_MODES
from ..errors import RequestError
from ..targets import target_names
from ..targets.registry import TARGET_REGISTRY

#: Campaign techniques understood by :class:`CampaignRequest`.
CAMPAIGN_TECHNIQUES = ("neural", "predefined-model", "random")


def _decode(cls, data: Mapping[str, Any]):
    """Shared ``from_dict`` codec: a JSON object → one frozen request.

    The wire contract is strict: ``data`` must be a JSON object, a ``kind``
    key (if present) must match the request class, and unknown keys are
    rejected by name — a serving front-end should never silently drop a
    field a client thought it was setting.  Python-level type mismatches
    surface as :class:`~repro.errors.RequestError` too, so HTTP layers can
    map every malformed body to one status code.
    """
    if not isinstance(data, Mapping):
        raise RequestError(f"{cls.kind} request body must be a JSON object, got {type(data).__name__}")
    payload = dict(data)
    kind = payload.pop("kind", cls.kind)
    if kind != cls.kind:
        raise RequestError(f"kind mismatch: expected {cls.kind!r}, got {kind!r}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise RequestError(f"unknown {cls.kind} request fields {unknown}; known fields: {sorted(known)}")
    try:
        return cls(**payload)
    except RequestError:
        raise
    except TypeError as exc:
        raise RequestError(f"malformed {cls.kind} request: {exc}") from exc


def _require_target(name: str, field_name: str = "target") -> None:
    if name not in TARGET_REGISTRY:
        raise RequestError(
            f"{field_name}: unknown target system {name!r}; available: {target_names()}"
        )


def _require_mode(mode: str | None) -> None:
    if mode is not None and mode not in EXECUTION_MODES:
        raise RequestError(f"mode must be one of {EXECUTION_MODES}, got {mode!r}")


def _require_request_id(request_id: str | None) -> None:
    if request_id is not None and (not isinstance(request_id, str) or not request_id.strip()):
        raise RequestError("request_id must be a non-empty string when set")


def _require_deadline(deadline_seconds: float | None) -> None:
    if deadline_seconds is None:
        return
    if isinstance(deadline_seconds, bool) or not isinstance(deadline_seconds, (int, float)):
        raise RequestError("deadline_seconds must be a number when set")
    if deadline_seconds <= 0:
        raise RequestError("deadline_seconds must be positive when set")


def _as_tuple(value) -> tuple:
    if value is None:
        return ()
    if isinstance(value, (str, bytes)):
        raise RequestError("expected a sequence of strings, got a bare string")
    return tuple(value)


@dataclass(frozen=True)
class GenerateRequest:
    """Generate one faulty code snippet from a natural-language description.

    Attributes:
        description: The tester's natural-language fault description.
        target: Registered target-system name.  When set and ``code`` is not,
            the target's source is used as the code context; required when
            ``execute`` is set.
        code: Explicit target source code (overrides the target's source).
        greedy: Argmax decoding when true; sampling otherwise.
        temperature: Sampling temperature (sampled requests only).
        top_k: Top-k truncation (sampled requests only).
        top_p: Nucleus truncation (sampled requests only).
        seed: Per-request decode seed for sampled requests.  Grouping never
            changes a request's sample stream: results are identical to
            running the request alone through a fresh pipeline configured
            with this seed.  Defaults to the engine's pipeline seed.
        execute: Integrate the fault into ``target`` and run its workload.
        mode: Sandbox execution mode for ``execute``; defaults to the
            engine's execution config (``inprocess`` promoted to
            ``subprocess`` — generated faults are untrusted).
        request_id: Optional caller-chosen id echoed in the response
            envelope; assigned by the engine when omitted.
        deadline_seconds: End-to-end time budget for the request.  The
            deadline travels with the request through batching, engine
            stages, and sandbox task payloads; when it elapses the request
            resolves with a structured ``ErrorInfo(kind="timeout")``
            envelope (HTTP 504 at the serving front-end).
    """

    description: str
    target: str | None = None
    code: str | None = None
    greedy: bool = True
    temperature: float | None = None
    top_k: int | None = None
    top_p: float | None = None
    seed: int | None = None
    execute: bool = False
    mode: str | None = None
    request_id: str | None = None
    deadline_seconds: float | None = None

    kind = "generate"

    def __post_init__(self) -> None:
        if not isinstance(self.description, str) or not self.description.strip():
            raise RequestError("description must be a non-empty string")
        if self.target is not None:
            _require_target(self.target)
        if self.execute and self.target is None:
            raise RequestError("execute=True requires a target system")
        if self.greedy and (
            self.temperature is not None or self.top_k is not None or self.top_p is not None
        ):
            raise RequestError(
                "conflicting decode parameters: temperature/top_k/top_p require greedy=False"
            )
        if self.temperature is not None and self.temperature <= 0:
            raise RequestError("temperature must be positive when set")
        if self.top_k is not None and self.top_k <= 0:
            raise RequestError("top_k must be positive when set")
        if self.top_p is not None and not (0.0 < self.top_p <= 1.0):
            raise RequestError("top_p must be in (0, 1] when set")
        _require_mode(self.mode)
        _require_request_id(self.request_id)
        _require_deadline(self.deadline_seconds)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the request (used by logs and the CLI)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GenerateRequest":
        """Decode a JSON object into a validated request (strict fields)."""
        return _decode(cls, data)


@dataclass(frozen=True)
class DatasetRequest:
    """Generate an SFI fine-tuning dataset (optionally training the policy).

    Attributes:
        targets: Registered target names to sweep; empty/None sweeps every
            built-in target.
        samples_per_target: Override of ``DatasetConfig.samples_per_target``.
        validate_candidates: Override of ``DatasetConfig.validate_candidates``.
        run_sft: Fine-tune the engine's policy on the generated dataset
            (the :meth:`NeuralFaultInjector.prepare` behaviour).
        jsonl_path: Stream records to this JSONL file instead of keeping the
            dataset in memory.
        request_id: Optional caller-chosen id echoed in the response.
        deadline_seconds: End-to-end time budget; see
            :attr:`GenerateRequest.deadline_seconds`.
    """

    targets: tuple[str, ...] = ()
    samples_per_target: int | None = None
    validate_candidates: bool | None = None
    run_sft: bool = False
    jsonl_path: str | None = None
    request_id: str | None = None
    deadline_seconds: float | None = None

    kind = "dataset"

    def __post_init__(self) -> None:
        object.__setattr__(self, "targets", _as_tuple(self.targets))
        for name in self.targets:
            _require_target(name, field_name="targets")
        if self.samples_per_target is not None and self.samples_per_target <= 0:
            raise RequestError("samples_per_target must be positive when set")
        if self.run_sft and self.jsonl_path is not None:
            raise RequestError(
                "run_sft requires an in-memory dataset; drop jsonl_path (or fine-tune separately)"
            )
        _require_request_id(self.request_id)
        _require_deadline(self.deadline_seconds)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the request (used by logs and the CLI)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["targets"] = list(self.targets)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DatasetRequest":
        """Decode a JSON object into a validated request (strict fields)."""
        return _decode(cls, data)


@dataclass(frozen=True)
class CampaignRequest:
    """Run the neural-vs-baselines comparison campaign over one target.

    Attributes:
        target: Registered target-system name the campaign runs against.
        scenarios: Tester scenario descriptions (processed by the NLP engine
            once and shared across techniques).
        techniques: Which techniques to run; subset of
            ``("neural", "predefined-model", "random")``.
        budget: Fault budget for the baseline techniques; defaults to twice
            the scenario count.
        mode: Sandbox execution mode; defaults to the engine's execution
            config.
        request_id: Optional caller-chosen id echoed in the response.
        deadline_seconds: End-to-end time budget; see
            :attr:`GenerateRequest.deadline_seconds`.
    """

    target: str = ""
    scenarios: tuple[str, ...] = ()
    techniques: tuple[str, ...] = CAMPAIGN_TECHNIQUES
    budget: int | None = None
    mode: str | None = None
    request_id: str | None = None
    deadline_seconds: float | None = None

    kind = "campaign"

    def __post_init__(self) -> None:
        if not self.target:
            raise RequestError("target is required for a campaign")
        _require_target(self.target)
        object.__setattr__(self, "scenarios", _as_tuple(self.scenarios))
        object.__setattr__(self, "techniques", _as_tuple(self.techniques))
        if not self.scenarios or any(not s.strip() for s in self.scenarios):
            raise RequestError("scenarios must be a non-empty list of non-blank descriptions")
        if not self.techniques:
            raise RequestError("at least one technique is required")
        unknown = [t for t in self.techniques if t not in CAMPAIGN_TECHNIQUES]
        if unknown:
            raise RequestError(
                f"unknown techniques {unknown}; available: {list(CAMPAIGN_TECHNIQUES)}"
            )
        if self.budget is not None and self.budget <= 0:
            raise RequestError("budget must be positive when set")
        _require_mode(self.mode)
        _require_request_id(self.request_id)
        _require_deadline(self.deadline_seconds)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the request (used by logs and the CLI)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["scenarios"] = list(self.scenarios)
        data["techniques"] = list(self.techniques)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignRequest":
        """Decode a JSON object into a validated request (strict fields)."""
        return _decode(cls, data)


@dataclass(frozen=True)
class RLHFRequest:
    """Run the RLHF refinement loop over a set of fault descriptions.

    Attributes:
        descriptions: Fault descriptions turned into generation prompts by
            the NLP engine.
        target: Optional target; when set, every candidate round is executed
            against it as one sandbox batch and the evidence feeds the
            simulated testers' ratings.
        code: Explicit code context for the prompts (defaults to the
            target's source when ``target`` is set).
        iterations: Override of ``RLHFConfig.iterations``.
        candidates_per_iteration: Override of
            ``RLHFConfig.candidates_per_iteration``.
        mode: Sandbox execution mode for candidate rounds.
        request_id: Optional caller-chosen id echoed in the response.
        deadline_seconds: End-to-end time budget; see
            :attr:`GenerateRequest.deadline_seconds`.
    """

    descriptions: tuple[str, ...] = ()
    target: str | None = None
    code: str | None = None
    iterations: int | None = None
    candidates_per_iteration: int | None = None
    mode: str | None = None
    request_id: str | None = None
    deadline_seconds: float | None = None

    kind = "rlhf"

    def __post_init__(self) -> None:
        object.__setattr__(self, "descriptions", _as_tuple(self.descriptions))
        if not self.descriptions or any(not d.strip() for d in self.descriptions):
            raise RequestError("descriptions must be a non-empty list of non-blank strings")
        if self.target is not None:
            _require_target(self.target)
        if self.iterations is not None and self.iterations <= 0:
            raise RequestError("iterations must be positive when set")
        if self.candidates_per_iteration is not None and self.candidates_per_iteration <= 0:
            raise RequestError("candidates_per_iteration must be positive when set")
        _require_mode(self.mode)
        _require_request_id(self.request_id)
        _require_deadline(self.deadline_seconds)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the request (used by logs and the CLI)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["descriptions"] = list(self.descriptions)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RLHFRequest":
        """Decode a JSON object into a validated request (strict fields)."""
        return _decode(cls, data)


#: Every typed request kind the engine accepts.
Request = GenerateRequest | DatasetRequest | CampaignRequest | RLHFRequest

#: Wire name → request class, the dispatch table of the JSON codec.
REQUEST_KINDS: dict[str, type] = {
    GenerateRequest.kind: GenerateRequest,
    DatasetRequest.kind: DatasetRequest,
    CampaignRequest.kind: CampaignRequest,
    RLHFRequest.kind: RLHFRequest,
}


def request_from_dict(kind: str, data: Mapping[str, Any]) -> Request:
    """Decode a JSON object into the typed request named by ``kind``.

    Args:
        kind: Wire name of the request type (``generate`` / ``dataset`` /
            ``campaign`` / ``rlhf``), e.g. the tail of an HTTP route.
        data: The parsed JSON body.

    Returns:
        A validated frozen request of the matching class.

    Raises:
        RequestError: If ``kind`` is unknown or ``data`` fails validation.
    """
    try:
        cls = REQUEST_KINDS[kind]
    except KeyError:
        raise RequestError(
            f"unknown request kind {kind!r}; available: {sorted(REQUEST_KINDS)}"
        ) from None
    return cls.from_dict(data)
