"""The typed service layer: requests, responses, engine, and scheduler.

This package is the public serving surface of the library — the redesigned
API over the monolithic :class:`~repro.core.pipeline.NeuralFaultInjector`:

* :mod:`repro.api.requests` — frozen, validated request dataclasses;
* :mod:`repro.api.responses` — the versioned response envelope and typed
  payloads;
* :mod:`repro.api.engine` — :class:`FaultInjectionEngine`, the façade that
  owns one shared pipeline/worker-pool/cache stack;
* :mod:`repro.api.scheduler` — the continuous-batching request scheduler.

See docs/API.md for the request/response reference, scheduler semantics, and
the migration guide from ``NeuralFaultInjector``.
"""

from .engine import FaultInjectionEngine
from .requests import (
    CAMPAIGN_TECHNIQUES,
    REQUEST_KINDS,
    CampaignRequest,
    DatasetRequest,
    GenerateRequest,
    Request,
    RLHFRequest,
    request_from_dict,
)
from .responses import (
    SCHEMA_VERSION,
    CacheStats,
    CampaignPayload,
    DatasetPayload,
    ErrorInfo,
    ExecutionStats,
    GeneratePayload,
    Response,
    RLHFPayload,
    ShardInfo,
    StatsSnapshot,
    Timings,
    WirePayload,
    error_kind_for,
)
from .scheduler import ResponseHandle, Scheduler, SchedulerStats, Ticket

__all__ = [
    "CAMPAIGN_TECHNIQUES",
    "CacheStats",
    "CampaignPayload",
    "CampaignRequest",
    "DatasetPayload",
    "DatasetRequest",
    "ErrorInfo",
    "ExecutionStats",
    "FaultInjectionEngine",
    "GeneratePayload",
    "GenerateRequest",
    "REQUEST_KINDS",
    "RLHFPayload",
    "RLHFRequest",
    "Request",
    "Response",
    "ResponseHandle",
    "SCHEMA_VERSION",
    "Scheduler",
    "SchedulerStats",
    "ShardInfo",
    "StatsSnapshot",
    "Ticket",
    "Timings",
    "WirePayload",
    "error_kind_for",
    "request_from_dict",
]
