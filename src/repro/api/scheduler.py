"""Continuous batching of concurrent service requests.

The :class:`Scheduler` is the serving loop between the typed request API and
the batched substrates built in PRs 1-3.  Clients submit requests from any
thread and immediately receive a :class:`ResponseHandle`; a single dispatch
thread drains the queue and coalesces work, in the style of continuous
batching in LLM serving engines (sglang-like):

* requests are dispatched strictly FIFO, so results are reproducible and no
  request can starve;
* a contiguous run of :class:`~repro.api.GenerateRequest` tickets at the head
  of the queue is grouped into ONE model batch — a single
  ``forward_batch``-backed generation pass — up to
  ``EngineConfig.max_batch_size`` tickets, waiting at most
  ``EngineConfig.max_queue_delay_seconds`` after dispatch starts so
  concurrent clients can coalesce;
* within a batch, requests that ask for execution are grouped by target and
  run as pooled sandbox batches (``run_many``/``run_batch``), which is where
  the order-of-magnitude serving win comes from;
* dataset / campaign / RLHF tickets are heavyweight and run alone, in queue
  order.

Batching never changes results: greedy decoding is batch-invariant, sampled
requests decode from per-request seeded streams, and payload envelopes
quantize model-arithmetic floats to the library's 1e-9 oracle tolerance (see
:mod:`repro.api.responses`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import DeadlineExceededError, EngineClosedError, RequestCancelledError
from ..resilience import Deadline
from .requests import GenerateRequest, Request
from .responses import ErrorInfo, Response, Timings


class ResponseHandle:
    """An asynchronous handle to one submitted request."""

    def __init__(self, request_id: str, kind: str) -> None:
        self.request_id = request_id
        self.kind = kind
        self._future: "Future[Response]" = Future()
        self._scheduler: "Scheduler | None" = None

    def done(self) -> bool:
        """Whether the response is available."""
        return self._future.done()

    def result(self, timeout: float | None = None) -> Response:
        """Block until the response envelope is available and return it.

        A ``timeout`` that elapses never raises a raw
        :class:`concurrent.futures.TimeoutError` into client code: it
        returns a structured ``ErrorInfo(kind="timeout")`` envelope instead.
        The request itself stays in flight — the handle is *not* resolved,
        and a later :meth:`result` call (or the HTTP polling route) can still
        observe the real outcome.
        """
        try:
            return self._future.result(timeout=timeout)
        except FutureTimeoutError:
            return Response(
                request_id=self.request_id,
                kind=self.kind,
                status="error",
                error=ErrorInfo(
                    type="TimeoutError",
                    message=(
                        f"no response within {timeout:g}s; the request is still in flight "
                        "— call result() again to keep waiting"
                    ),
                    kind="timeout",
                ),
            )

    def cancel(self) -> bool:
        """Cancel the request if it is still queued (best-effort).

        Returns:
            ``True`` when the ticket was still waiting in the scheduler queue
            and was removed — the handle resolves immediately with a
            ``status="cancelled"`` envelope.  ``False`` when the request
            already started executing or finished (it cannot be recalled).
        """
        scheduler = self._scheduler
        if scheduler is None or self._future.done():
            return False
        return scheduler.try_cancel(self.request_id)

    def add_done_callback(self, callback: Callable[["ResponseHandle"], None]) -> None:
        """Invoke ``callback(handle)`` once the response is available."""
        self._future.add_done_callback(lambda _future: callback(self))

    def _resolve(self, response: Response) -> None:
        self._future.set_result(response)


@dataclass
class Ticket:
    """One queued request together with its delivery handle."""

    request: Request
    handle: ResponseHandle
    submitted_at: float = field(default_factory=time.monotonic)
    deadline: Deadline | None = None

    def expired(self) -> bool:
        """Whether the request's deadline elapsed before dispatch."""
        return self.deadline is not None and self.deadline.expired()


#: Most recent per-batch records retained by :class:`SchedulerStats`.
STATS_BATCH_WINDOW = 256


@dataclass
class SchedulerStats:
    """Observable batching behaviour, for tests and the serving benchmark.

    Aggregate counters cover the engine's whole lifetime; the per-batch
    detail is a sliding window of the last :data:`STATS_BATCH_WINDOW`
    dispatches, so a long-lived serving engine's stats stay O(1).
    """

    dispatched: int = 0
    batch_count: int = 0
    batches: deque = field(default_factory=lambda: deque(maxlen=STATS_BATCH_WINDOW))

    def record(self, kind: str, size: int, targets: list[str]) -> None:
        """Account one dispatch."""
        self.dispatched += size
        self.batch_count += 1
        self.batches.append({"kind": kind, "size": size, "targets": targets})

    @property
    def batch_sizes(self) -> list[int]:
        """Generate-batch sizes in dispatch order (recent window)."""
        return [b["size"] for b in self.batches if b["kind"] == "generate"]

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the stats (per-batch detail: recent window)."""
        return {
            "dispatched": self.dispatched,
            "batch_count": self.batch_count,
            "batches": [dict(b) for b in self.batches],
        }


class Scheduler:
    """FIFO request queue with continuous batching of generate requests.

    The scheduler does not know how to execute requests; the owning
    :class:`~repro.api.FaultInjectionEngine` passes the two dispatch
    callbacks.  The dispatch thread is started lazily on first submit and
    torn down by :meth:`close`.
    """

    def __init__(
        self,
        dispatch_batch: Callable[[list[Ticket]], None],
        dispatch_single: Callable[[Ticket], None],
        max_batch_size: int,
        max_queue_delay_seconds: float,
    ) -> None:
        """Initialise the scheduler.

        Args:
            dispatch_batch: Callback executing a coalesced list of generate
                tickets (it must resolve every ticket's handle).
            dispatch_single: Callback executing one non-generate ticket.
            max_batch_size: Most generate tickets coalesced per dispatch.
            max_queue_delay_seconds: How long a dispatch waits for more
                arrivals after the first ticket is picked up.
        """
        self._dispatch_batch = dispatch_batch
        self._dispatch_single = dispatch_single
        self._max_batch_size = max(1, int(max_batch_size))
        self._max_queue_delay = max(0.0, float(max_queue_delay_seconds))
        self._queue: deque[Ticket] = deque()
        self._cond = threading.Condition()
        self._thread: threading.Thread | None = None
        self._closed = False
        self.stats = SchedulerStats()

    # -- client side ----------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Tickets currently waiting in the queue (serving observability)."""
        with self._cond:
            return len(self._queue)

    def submit(self, ticket: Ticket) -> None:
        """Enqueue a ticket (thread-safe); starts the dispatch thread lazily.

        Raises:
            EngineClosedError: If the scheduler has been closed.
        """
        with self._cond:
            if self._closed:
                raise EngineClosedError("scheduler is closed; no further requests are accepted")
            ticket.handle._scheduler = self
            self._queue.append(ticket)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-scheduler", daemon=True
                )
                self._thread.start()
            self._cond.notify_all()

    def try_cancel(self, request_id: str) -> bool:
        """Remove a still-queued ticket and resolve it as cancelled.

        Args:
            request_id: The id the ticket's handle carries.

        Returns:
            ``True`` when the ticket was found in the queue (its handle now
            holds a ``status="cancelled"`` envelope); ``False`` when it
            already left the queue — executing work is never interrupted.
        """
        with self._cond:
            found = None
            for ticket in self._queue:
                if ticket.handle.request_id == request_id:
                    found = ticket
                    break
            if found is None:
                return False
            self._queue.remove(found)
        found.handle._resolve(
            Response(
                request_id=found.handle.request_id,
                kind=found.request.kind,
                status="cancelled",
                error=ErrorInfo.from_exception(
                    RequestCancelledError("request cancelled while queued")
                ),
                timings=Timings(queued_seconds=time.monotonic() - found.submitted_at),
            )
        )
        return True

    def close(self) -> None:
        """Drain the queue, stop the dispatch thread, and reject new submits.

        Already-queued tickets are still executed (close is graceful), so
        every handle obtained before ``close`` resolves.  Idempotent.
        """
        with self._cond:
            if self._closed:
                thread = self._thread
            else:
                self._closed = True
                thread = self._thread
                self._cond.notify_all()
        if thread is not None and thread is not threading.current_thread():
            thread.join()

    # -- dispatch loop ---------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return
                head = self._queue.popleft()
            if head.expired():
                self._resolve_expired(head)
                continue
            if isinstance(head.request, GenerateRequest):
                batch = [t for t in self._collect(head) if not self._expire(t)]
                if not batch:
                    continue
                self.stats.record(
                    "generate", len(batch), sorted({t.request.target or "" for t in batch})
                )
                self._dispatch(self._dispatch_batch, batch)
            else:
                self.stats.record(head.request.kind, 1, [])
                self._dispatch(lambda tickets: self._dispatch_single(tickets[0]), [head])

    def _expire(self, ticket: Ticket) -> bool:
        """Resolve a ticket whose deadline elapsed while it queued."""
        if not ticket.expired():
            return False
        self._resolve_expired(ticket)
        return True

    def _resolve_expired(self, ticket: Ticket) -> None:
        ticket.handle._resolve(
            Response(
                request_id=ticket.handle.request_id,
                kind=ticket.request.kind,
                status="error",
                error=ErrorInfo.from_exception(
                    DeadlineExceededError("deadline exceeded while the request was queued")
                ),
                timings=Timings(queued_seconds=time.monotonic() - ticket.submitted_at),
            )
        )

    def _dispatch(self, callback: Callable[[list[Ticket]], None], tickets: list[Ticket]) -> None:
        """Run a dispatch callback, resolving stranded handles on failure.

        Expected errors are turned into error envelopes inside the engine's
        callbacks; this is the last line of defence so an unexpected
        exception can never kill the dispatch thread or leave a client
        blocked on an unresolved handle forever.
        """
        try:
            callback(tickets)
        except Exception as exc:  # noqa: BLE001 - serving loop must survive anything
            for ticket in tickets:
                if not ticket.handle.done():
                    ticket.handle._resolve(
                        Response(
                            request_id=ticket.handle.request_id,
                            kind=ticket.request.kind,
                            status="error",
                            error=ErrorInfo.from_exception(exc),
                        )
                    )

    def _collect(self, head: Ticket) -> list[Ticket]:
        """Coalesce a contiguous run of generate tickets behind ``head``.

        Collection stops at ``max_batch_size`` tickets, when the coalescing
        window expires with an empty queue, or when a non-generate ticket
        reaches the head of the queue (FIFO is never violated).
        """
        batch = [head]
        deadline = time.monotonic() + self._max_queue_delay
        while len(batch) < self._max_batch_size:
            with self._cond:
                remaining = deadline - time.monotonic()
                while not self._queue and remaining > 0 and not self._closed:
                    self._cond.wait(remaining)
                    remaining = deadline - time.monotonic()
                if self._queue and isinstance(self._queue[0].request, GenerateRequest):
                    batch.append(self._queue.popleft())
                    continue
                break
        return batch
