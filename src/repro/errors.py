"""Exception hierarchy for the neural fault injection library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class at the pipeline boundary.  Subsystem-specific
errors carry enough context (subsystem, offending artefact) to be actionable
in reports without needing a traceback.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SpecificationError(ReproError):
    """A natural-language fault description could not be turned into a spec."""

    def __init__(self, message: str, description: str | None = None) -> None:
        super().__init__(message)
        self.description = description


class CodeAnalysisError(ReproError):
    """The supplied target code could not be parsed or analysed."""

    def __init__(self, message: str, source_path: str | None = None) -> None:
        super().__init__(message)
        self.source_path = source_path


class GenerationError(ReproError):
    """The model failed to produce a valid faulty code snippet."""


class GrammarError(GenerationError):
    """A grammar action sequence could not be rendered into code."""


class ModelError(ReproError):
    """A neural model was used with inconsistent dimensions or state."""


class CheckpointError(ModelError):
    """A model checkpoint could not be saved or restored."""


class FeedbackError(ReproError):
    """Tester feedback was malformed or referenced an unknown candidate."""


class RewardModelError(ReproError):
    """The reward model was queried before training or with bad features."""


class InjectionError(ReproError):
    """A fault operator could not be applied to the target code."""

    def __init__(self, message: str, operator: str | None = None) -> None:
        super().__init__(message)
        self.operator = operator


class NoInjectionPointError(InjectionError):
    """No suitable location exists in the target code for the requested fault."""


class PatchError(ReproError):
    """A patch could not be applied to or reverted from the target source."""


class IntegrationError(ReproError):
    """Generated faulty code could not be integrated into the codebase."""


class SandboxError(ReproError):
    """The sandboxed workspace or test execution environment failed."""


class ExperimentError(ReproError):
    """A fault-injection experiment could not be executed or observed."""


class DatasetError(ReproError):
    """Dataset generation, serialisation, or splitting failed."""


class TargetError(ReproError):
    """A target system misbehaved outside of an injected fault."""


class RequestError(ReproError):
    """A typed service request failed validation at construction time."""


class EngineClosedError(ReproError):
    """A request was submitted to a :class:`FaultInjectionEngine` after close()."""


class DeadlineExceededError(ReproError):
    """A request's ``deadline_seconds`` budget elapsed before it completed.

    Surfaces as a structured ``ErrorInfo(kind="timeout")`` envelope and as
    HTTP 504 at the serving front-end.
    """


class RequestCancelledError(ReproError):
    """A queued request was cancelled via :meth:`ResponseHandle.cancel`."""


class CircuitOpenError(ReproError):
    """A circuit breaker is open: the protected dependency is failing fast.

    Carries the breaker key so clients and logs can tell which (target,
    mode) execution plane tripped.  Surfaces as ``ErrorInfo(kind=
    "unavailable")`` / HTTP 503 with a ``Retry-After`` hint.
    """

    def __init__(self, message: str, key: str | None = None) -> None:
        super().__init__(message)
        self.key = key


class AdmissionError(ReproError):
    """The serving front-end shed a request because the queue is saturated.

    Surfaces as ``ErrorInfo(kind="overloaded")`` / HTTP 429 with a
    ``Retry-After`` hint; the request never reached the engine.
    """


class QuarantineError(ReproError):
    """A poison task was quarantined after repeatedly killing pool workers."""
