"""Baseline fault-injection techniques used by the comparative analysis.

* :class:`PredefinedModelInjector` — conventional predefined-fault-model SFI;
* :class:`RandomInjector` — uninformed random mutation;
* :class:`ManualEffortModel` — analytical tester-effort model for efficiency.
"""

from .manual_effort import EffortAssumptions, EffortEstimate, ManualEffortModel
from .predefined import (
    PREDEFINED_FAULT_MODEL,
    PREDEFINED_FAULT_TYPES,
    BaselineCampaignPlan,
    PredefinedModelInjector,
    RandomInjector,
)

__all__ = [
    "BaselineCampaignPlan",
    "EffortAssumptions",
    "EffortEstimate",
    "ManualEffortModel",
    "PREDEFINED_FAULT_MODEL",
    "PREDEFINED_FAULT_TYPES",
    "PredefinedModelInjector",
    "RandomInjector",
]
