"""The conventional baseline: fault injection from a predefined fault model.

This is the approach the paper argues against in Section II: a fixed library
of fault operators (a G-SWFIT-style fault model) applied wherever the code
happens to offer a matching location.  The tester cannot express *scenarios*
("a timeout in the payment step that is retried twice and then gives up") —
only pick operators and locations — which is exactly the coverage and
customisation gap the comparative benchmark quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..injection import InjectionPointLocator, ProgrammableInjector
from ..injection.operators import AppliedFault, get_operator
from ..rng import SeededRNG
from ..types import FaultSpec, FaultType, HandlingStyle, TriggerKind

#: The classic predefined fault model: the operator families reported by
#: field studies of representative software faults (missing constructs, wrong
#: values, wrong conditions), without scenario-level faults such as timeouts of
#: specific dependencies, intermittent triggers, or tailored handling.
PREDEFINED_FAULT_MODEL: tuple[str, ...] = (
    "remove_if_guard",
    "negate_condition",
    "remove_call",
    "wrong_argument",
    "wrong_value_assignment",
    "remove_assignment",
    "wrong_return_value",
    "remove_return",
    "off_by_one",
    "swallow_exception",
)

#: Fault types the predefined model can express (derived from its operators).
PREDEFINED_FAULT_TYPES: frozenset[FaultType] = frozenset(
    get_operator(name).fault_type for name in PREDEFINED_FAULT_MODEL
)


@dataclass
class BaselineCampaignPlan:
    """The faults a baseline technique selected for one target."""

    technique: str
    faults: list[AppliedFault] = field(default_factory=list)
    configuration_actions: int = 0

    def __len__(self) -> int:
        return len(self.faults)


class PredefinedModelInjector:
    """Applies the predefined fault model exhaustively (or up to a budget)."""

    technique_name = "predefined-model"

    def __init__(self, rng: SeededRNG | None = None) -> None:
        self._rng = rng or SeededRNG(53, namespace="predefined")
        self._operators = [get_operator(name) for name in PREDEFINED_FAULT_MODEL]
        self._locator = InjectionPointLocator(self._operators)

    def plan(self, source: str, budget: int | None = None) -> BaselineCampaignPlan:
        """Select up to ``budget`` faults by sweeping the predefined operators."""
        plan = BaselineCampaignPlan(technique=self.technique_name)
        points = self._locator.scan(source).points
        points = self._rng.shuffle(points)
        for point in points:
            if budget is not None and len(plan.faults) >= budget:
                break
            operator = get_operator(point.operator)
            try:
                applied = operator.apply(source, point, rng=self._rng.fork(f"{point.operator}:{point.lineno}"))
            except Exception:
                continue
            plan.faults.append(applied)
            # Each fault requires the tester to pick an operator and a location:
            # two configuration actions in the effort model.
            plan.configuration_actions += 2
        return plan

    def can_express(self, spec: FaultSpec) -> bool:
        """Whether the predefined model can realise the *scenario* a spec asks for.

        The predefined model only supports always-on, unhandled structural
        faults drawn from its operator list; scenario-level requirements
        (probabilistic or call-count triggers, retry/fallback handling,
        timeout/network/leak semantics) are outside the model.
        """
        if spec.fault_type not in PREDEFINED_FAULT_TYPES:
            return False
        if spec.trigger.kind is not TriggerKind.ALWAYS:
            return False
        if spec.handling is not HandlingStyle.UNHANDLED:
            return False
        if spec.directives.get("wants_retry") or spec.directives.get("wants_fallback"):
            return False
        return True


class RandomInjector:
    """Uninformed baseline: random operator at a random location."""

    technique_name = "random"

    def __init__(self, rng: SeededRNG | None = None) -> None:
        self._rng = rng or SeededRNG(59, namespace="random-baseline")
        self._injector = ProgrammableInjector(rng=self._rng.fork("injector"))

    def plan(self, source: str, budget: int = 20) -> BaselineCampaignPlan:
        plan = BaselineCampaignPlan(technique=self.technique_name)
        mutants = self._injector.exhaustive_mutants(source)
        mutants = self._rng.shuffle(mutants)
        plan.faults = mutants[:budget]
        plan.configuration_actions = len(plan.faults)
        return plan

    def can_express(self, spec: FaultSpec) -> bool:
        """Random injection targets nothing in particular; it never *expresses* a scenario."""
        return False
