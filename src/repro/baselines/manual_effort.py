"""Analytical model of tester effort for the efficiency comparison.

The paper's central efficiency claim is qualitative: natural-language fault
definition plus automated generation "significantly reduce[s] the manual effort
involved in crafting fault scenarios".  To make the comparison quantitative the
benchmark uses an explicit effort model with documented assumptions; the
absolute minute counts are illustrative, but the *ratios* are what the
benchmark reports and they are insensitive to reasonable changes of the
constants (conventional effort scales with the number of faults and with
expertise-heavy configuration steps, neural effort scales with the number of
sentences and feedback rounds).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EffortAssumptions:
    """Minutes of tester effort assumed per elementary action."""

    write_description_minutes: float = 1.5
    review_candidate_minutes: float = 1.0
    feedback_round_minutes: float = 1.5
    select_operator_minutes: float = 3.0
    locate_injection_point_minutes: float = 4.0
    implement_custom_fault_minutes: float = 25.0
    configure_tool_minutes: float = 10.0
    expertise_overhead_factor_conventional: float = 1.3
    expertise_overhead_factor_neural: float = 1.0


@dataclass
class EffortEstimate:
    """Total manual effort attributed to a technique for one campaign."""

    technique: str
    scenarios: int
    minutes: float

    @property
    def minutes_per_scenario(self) -> float:
        return self.minutes / self.scenarios if self.scenarios else 0.0

    @property
    def scenarios_per_hour(self) -> float:
        return (self.scenarios / self.minutes) * 60.0 if self.minutes else 0.0

    def to_dict(self) -> dict:
        return {
            "technique": self.technique,
            "scenarios": self.scenarios,
            "minutes": round(self.minutes, 2),
            "minutes_per_scenario": round(self.minutes_per_scenario, 2),
            "scenarios_per_hour": round(self.scenarios_per_hour, 2),
        }


class ManualEffortModel:
    """Computes effort estimates for the neural and conventional workflows."""

    def __init__(self, assumptions: EffortAssumptions | None = None) -> None:
        self.assumptions = assumptions or EffortAssumptions()

    def neural(self, scenarios: int, feedback_rounds_per_scenario: float = 1.0) -> EffortEstimate:
        """Effort of the neural workflow: describe, review, give feedback."""
        a = self.assumptions
        per_scenario = (
            a.write_description_minutes
            + a.review_candidate_minutes
            + feedback_rounds_per_scenario * (a.feedback_round_minutes + a.review_candidate_minutes)
        )
        minutes = scenarios * per_scenario * a.expertise_overhead_factor_neural
        return EffortEstimate(technique="neural", scenarios=scenarios, minutes=minutes)

    def conventional(
        self,
        scenarios: int,
        expressible_fraction: float,
        configuration_actions_per_fault: int = 2,
    ) -> EffortEstimate:
        """Effort of the conventional workflow.

        Scenarios expressible by the predefined model cost operator selection
        plus injection-point location (``configuration_actions_per_fault``
        actions) and one tool-configuration step; scenarios outside the model
        must be implemented by hand as custom fault code.
        """
        a = self.assumptions
        expressible = scenarios * max(0.0, min(1.0, expressible_fraction))
        custom = scenarios - expressible
        per_expressible = (
            a.configure_tool_minutes
            + configuration_actions_per_fault
            * (a.select_operator_minutes + a.locate_injection_point_minutes)
            / 2.0
        )
        minutes = (
            expressible * per_expressible + custom * a.implement_custom_fault_minutes
        ) * a.expertise_overhead_factor_conventional
        return EffortEstimate(technique="conventional", scenarios=scenarios, minutes=minutes)

    def speedup(self, neural: EffortEstimate, conventional: EffortEstimate) -> float:
        """How many times less effort the neural workflow takes."""
        if neural.minutes <= 0:
            return float("inf")
        return conventional.minutes / neural.minutes
