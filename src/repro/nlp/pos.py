"""Rule-based part-of-speech tagging for fault descriptions.

A full statistical tagger is unnecessary for the restricted register testers
use; a lexicon plus suffix heuristics reaches the accuracy the downstream
relation extraction needs, stays dependency-free, and is fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from . import lexicon
from .tokenizer import Token, Tokenizer


class PosTag(str, Enum):
    """Coarse part-of-speech categories used by the relation extractor."""

    NOUN = "noun"
    VERB = "verb"
    ADJ = "adj"
    ADV = "adv"
    DET = "det"
    PREP = "prep"
    CONJ = "conj"
    PRON = "pron"
    NUM = "num"
    IDENT = "ident"
    PUNCT = "punct"
    OTHER = "other"


@dataclass(frozen=True)
class TaggedToken:
    """A token together with its part-of-speech tag."""

    token: Token
    tag: PosTag

    @property
    def text(self) -> str:
        return self.token.text

    @property
    def lower(self) -> str:
        return self.token.lower


_DETERMINERS = frozenset({"a", "an", "the", "this", "that", "these", "those", "each", "every", "any", "some", "no"})
_PREPOSITIONS = frozenset(
    {
        "in", "on", "at", "to", "for", "from", "by", "with", "within", "into",
        "during", "after", "before", "under", "over", "between", "of", "via",
        "through", "inside", "across", "against", "without",
    }
)
_CONJUNCTIONS = frozenset({"and", "or", "but", "because", "so", "while", "when", "whenever", "if", "although", "since", "once"})
_PRONOUNS = frozenset({"it", "its", "they", "their", "we", "our", "you", "your", "i", "he", "she", "him", "her"})
_AUX_VERBS = frozenset(
    {
        "is", "are", "was", "were", "be", "been", "being", "has", "have", "had",
        "do", "does", "did", "can", "could", "should", "would", "will", "shall",
        "may", "might", "must",
    }
)
_COMMON_VERBS = frozenset(lexicon.ACTION_WORDS) | frozenset(
    {
        "fails", "failing", "failed", "causes", "causing", "caused", "occurs",
        "occurring", "happens", "becomes", "leads", "results", "throws",
        "raises", "returns", "handles", "handling", "processes", "processing",
        "completes", "commits", "rolls", "loses", "drops", "misses", "times",
        "exceeds", "grows", "spins", "waits", "blocks", "locks", "releases",
        "acquires", "closes", "opens", "reads", "writes", "sends", "receives",
        "logs", "logging", "simulating", "introducing", "injecting",
    }
)
_ADJECTIVES = frozenset(
    {
        "unhandled", "uncaught", "wrong", "incorrect", "invalid", "missing",
        "silent", "transient", "intermittent", "slow", "stale", "corrupted",
        "partial", "concurrent", "critical", "faulty", "broken", "empty",
        "full", "unavailable", "unreachable", "residual", "subtle", "specific",
        "graceful", "sophisticated", "realistic", "new", "next", "last",
        "first", "second", "third",
    }
)
_ADVERBS = frozenset(
    {
        "silently", "randomly", "occasionally", "sometimes", "intermittently",
        "always", "never", "immediately", "eventually", "gracefully",
        "repeatedly", "instead", "just", "only", "also", "directly",
    }
)


class PosTagger:
    """Deterministic lexicon + suffix part-of-speech tagger."""

    def __init__(self, tokenizer: Tokenizer | None = None) -> None:
        self._tokenizer = tokenizer or Tokenizer()

    def tag(self, text: str) -> list[TaggedToken]:
        """Tag every token in ``text``."""
        return [TaggedToken(token=token, tag=self._tag_token(token)) for token in self._tokenizer.tokenize(text)]

    def tag_tokens(self, tokens: list[Token]) -> list[TaggedToken]:
        """Tag an already tokenised sequence."""
        return [TaggedToken(token=token, tag=self._tag_token(token)) for token in tokens]

    def _tag_token(self, token: Token) -> PosTag:
        text = token.text
        lower = token.lower
        if not any(character.isalnum() for character in text):
            return PosTag.PUNCT
        if token.is_number:
            return PosTag.NUM
        if token.is_identifier:
            return PosTag.IDENT
        if lower in _DETERMINERS:
            return PosTag.DET
        if lower in _PREPOSITIONS:
            return PosTag.PREP
        if lower in _CONJUNCTIONS:
            return PosTag.CONJ
        if lower in _PRONOUNS:
            return PosTag.PRON
        if lower in _AUX_VERBS or lower in _COMMON_VERBS:
            return PosTag.VERB
        if lower in _ADVERBS or (lower.endswith("ly") and len(lower) > 4):
            return PosTag.ADV
        if lower in _ADJECTIVES:
            return PosTag.ADJ
        if lower in lexicon.NUMBER_WORDS:
            return PosTag.NUM
        if text in lexicon.KNOWN_EXCEPTIONS:
            return PosTag.IDENT
        # Suffix heuristics for open-class words.
        if lower.endswith(("ing", "ize", "ise", "ated", "ates")):
            return PosTag.VERB
        if lower.endswith(("tion", "sion", "ment", "ness", "ance", "ence", "ity", "er", "or", "ism")):
            return PosTag.NOUN
        if lower.endswith(("ous", "ful", "less", "able", "ible", "ive", "al", "ic")):
            return PosTag.ADJ
        if lower.endswith("ed") and len(lower) > 4:
            return PosTag.VERB
        if lower in lexicon.COMPONENT_WORDS or lower in lexicon.RESOURCE_WORDS:
            return PosTag.NOUN
        return PosTag.NOUN


def content_words(tagged: list[TaggedToken]) -> list[TaggedToken]:
    """Tokens carrying content (nouns, verbs, adjectives, identifiers, numbers)."""
    keep = {PosTag.NOUN, PosTag.VERB, PosTag.ADJ, PosTag.IDENT, PosTag.NUM}
    return [item for item in tagged if item.tag in keep and item.lower not in lexicon.STOPWORDS]
