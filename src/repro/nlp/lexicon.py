"""Domain lexicon for the fault-description language.

The lexicon encodes the vocabulary testers use when describing fault scenarios
("timeout", "race condition", "retry", "when the cart is empty", ...) and maps
it onto the structured concepts of the library: fault types, handling styles,
trigger kinds, and entity labels.  It is deliberately data-only so that the
tagger, the NER, and the spec extractor can share one source of truth and so
tests can probe it directly.
"""

from __future__ import annotations

from ..types import FaultType, HandlingStyle, TriggerKind

# ---------------------------------------------------------------------------
# Fault-type keywords.  Multi-word phrases are matched before single words by
# the entity recogniser; scores express how strongly a phrase indicates the
# fault type when several candidates compete.
# ---------------------------------------------------------------------------

FAULT_TYPE_PHRASES: dict[str, tuple[FaultType, float]] = {
    "race condition": (FaultType.RACE_CONDITION, 3.0),
    "data race": (FaultType.RACE_CONDITION, 3.0),
    "lost update": (FaultType.RACE_CONDITION, 2.5),
    "concurrent access": (FaultType.RACE_CONDITION, 2.0),
    "missing lock": (FaultType.RACE_CONDITION, 2.5),
    "deadlock": (FaultType.DEADLOCK, 3.0),
    "memory leak": (FaultType.MEMORY_LEAK, 3.0),
    "leaks memory": (FaultType.MEMORY_LEAK, 3.0),
    "unbounded growth": (FaultType.MEMORY_LEAK, 2.5),
    "resource leak": (FaultType.RESOURCE_LEAK, 3.0),
    "connection leak": (FaultType.RESOURCE_LEAK, 2.8),
    "file handle leak": (FaultType.RESOURCE_LEAK, 2.8),
    "never closed": (FaultType.RESOURCE_LEAK, 2.2),
    "not released": (FaultType.RESOURCE_LEAK, 2.2),
    "off by one": (FaultType.OFF_BY_ONE, 3.0),
    "off-by-one": (FaultType.OFF_BY_ONE, 3.0),
    "boundary error": (FaultType.OFF_BY_ONE, 2.0),
    "fencepost": (FaultType.OFF_BY_ONE, 2.0),
    "skips the last": (FaultType.OFF_BY_ONE, 2.2),
    "timeout": (FaultType.TIMEOUT, 2.5),
    "times out": (FaultType.TIMEOUT, 2.5),
    "time out": (FaultType.TIMEOUT, 2.5),
    "timed out": (FaultType.TIMEOUT, 2.5),
    "deadline exceeded": (FaultType.TIMEOUT, 2.2),
    "unhandled exception": (FaultType.EXCEPTION, 2.5),
    "uncaught exception": (FaultType.EXCEPTION, 2.5),
    "throws an exception": (FaultType.EXCEPTION, 2.0),
    "raises an exception": (FaultType.EXCEPTION, 2.0),
    "crash": (FaultType.EXCEPTION, 1.5),
    "crashes": (FaultType.EXCEPTION, 1.5),
    "swallowed exception": (FaultType.SWALLOWED_EXCEPTION, 3.0),
    "silently ignores": (FaultType.SWALLOWED_EXCEPTION, 2.5),
    "swallows the error": (FaultType.SWALLOWED_EXCEPTION, 2.8),
    "error is ignored": (FaultType.SWALLOWED_EXCEPTION, 2.5),
    "infinite loop": (FaultType.INFINITE_LOOP, 3.0),
    "never terminates": (FaultType.INFINITE_LOOP, 2.5),
    "hangs": (FaultType.INFINITE_LOOP, 1.8),
    "spins forever": (FaultType.INFINITE_LOOP, 2.5),
    "wrong value": (FaultType.WRONG_VALUE, 2.0),
    "incorrect value": (FaultType.WRONG_VALUE, 2.0),
    "wrong parameter": (FaultType.WRONG_VALUE, 2.2),
    "wrong argument": (FaultType.WRONG_VALUE, 2.2),
    "wrong condition": (FaultType.WRONG_CONDITION, 2.5),
    "inverted condition": (FaultType.WRONG_CONDITION, 2.5),
    "negate the condition": (FaultType.WRONG_CONDITION, 2.8),
    "negate the branch": (FaultType.WRONG_CONDITION, 2.8),
    "negated condition": (FaultType.WRONG_CONDITION, 2.8),
    "inverts its control flow": (FaultType.WRONG_CONDITION, 2.5),
    "wrong branch": (FaultType.WRONG_CONDITION, 2.2),
    "branch condition": (FaultType.WRONG_CONDITION, 1.8),
    "logic error": (FaultType.WRONG_CONDITION, 1.8),
    "missing check": (FaultType.MISSING_CHECK, 2.8),
    "missing validation": (FaultType.MISSING_CHECK, 2.8),
    "skips validation": (FaultType.MISSING_CHECK, 2.5),
    "does not validate": (FaultType.MISSING_CHECK, 2.5),
    "without checking": (FaultType.MISSING_CHECK, 2.2),
    "remove the validation": (FaultType.MISSING_CHECK, 2.8),
    "remove the check": (FaultType.MISSING_CHECK, 2.8),
    "remove the overdraft validation": (FaultType.MISSING_CHECK, 3.0),
    "validation check": (FaultType.MISSING_CHECK, 1.5),
    "skip its input validation": (FaultType.MISSING_CHECK, 2.8),
    "accepts invalid input": (FaultType.MISSING_CHECK, 2.2),
    "missing call": (FaultType.MISSING_CALL, 2.8),
    "forgets to call": (FaultType.MISSING_CALL, 2.8),
    "never calls": (FaultType.MISSING_CALL, 2.5),
    "omits the call": (FaultType.MISSING_CALL, 2.5),
    "missing return": (FaultType.MISSING_RETURN, 2.8),
    "forgets to return": (FaultType.MISSING_RETURN, 2.8),
    "returns nothing": (FaultType.MISSING_RETURN, 2.2),
    "wrong return": (FaultType.WRONG_RETURN, 2.5),
    "returns the wrong": (FaultType.WRONG_RETURN, 2.5),
    "return the wrong": (FaultType.WRONG_RETURN, 2.5),
    "returns an incorrect": (FaultType.WRONG_RETURN, 2.5),
    "return an incorrect": (FaultType.WRONG_RETURN, 2.5),
    "data corruption": (FaultType.DATA_CORRUPTION, 2.8),
    "corrupted data": (FaultType.DATA_CORRUPTION, 2.8),
    "corrupts": (FaultType.DATA_CORRUPTION, 2.0),
    "silent corruption": (FaultType.DATA_CORRUPTION, 3.0),
    "silently corrupt": (FaultType.DATA_CORRUPTION, 3.0),
    "corrupt the": (FaultType.DATA_CORRUPTION, 2.2),
    "wrong results": (FaultType.DATA_CORRUPTION, 1.8),
    "buffer overflow": (FaultType.DATA_CORRUPTION, 2.0),
    "network failure": (FaultType.NETWORK_FAILURE, 2.8),
    "network outage": (FaultType.NETWORK_FAILURE, 2.8),
    "connection refused": (FaultType.NETWORK_FAILURE, 2.5),
    "connection error": (FaultType.NETWORK_FAILURE, 2.3),
    "network partition": (FaultType.NETWORK_FAILURE, 2.8),
    "unreachable": (FaultType.NETWORK_FAILURE, 1.8),
    "service outage": (FaultType.NETWORK_FAILURE, 2.0),
    "disk failure": (FaultType.DISK_FAILURE, 2.8),
    "disk full": (FaultType.DISK_FAILURE, 2.5),
    "i/o error": (FaultType.DISK_FAILURE, 2.3),
    "io error": (FaultType.DISK_FAILURE, 2.3),
    "write failure": (FaultType.DISK_FAILURE, 2.2),
    "slow response": (FaultType.DELAY, 2.2),
    "latency spike": (FaultType.DELAY, 2.5),
    "high latency": (FaultType.DELAY, 2.3),
    "slowdown": (FaultType.DELAY, 2.0),
    "delay": (FaultType.DELAY, 1.5),
    "transient failure": (FaultType.TIMEOUT, 1.8),
}

# Single-word fallbacks used when no phrase matched.
FAULT_TYPE_WORDS: dict[str, tuple[FaultType, float]] = {
    "timeout": (FaultType.TIMEOUT, 2.0),
    "exception": (FaultType.EXCEPTION, 1.2),
    "unhandled": (FaultType.EXCEPTION, 1.2),
    "uncaught": (FaultType.EXCEPTION, 1.2),
    "raise": (FaultType.EXCEPTION, 0.8),
    "raises": (FaultType.EXCEPTION, 0.8),
    "error": (FaultType.EXCEPTION, 0.6),
    "fail": (FaultType.EXCEPTION, 0.6),
    "fails": (FaultType.EXCEPTION, 0.6),
    "failure": (FaultType.EXCEPTION, 0.6),
    "leak": (FaultType.RESOURCE_LEAK, 1.5),
    "leaks": (FaultType.RESOURCE_LEAK, 1.5),
    "hang": (FaultType.INFINITE_LOOP, 1.5),
    "hangs": (FaultType.INFINITE_LOOP, 1.5),
    "deadlock": (FaultType.DEADLOCK, 2.5),
    "race": (FaultType.RACE_CONDITION, 1.5),
    "corruption": (FaultType.DATA_CORRUPTION, 1.8),
    "slow": (FaultType.DELAY, 1.0),
    "latency": (FaultType.DELAY, 1.5),
    "crash": (FaultType.EXCEPTION, 1.2),
    "overflow": (FaultType.DATA_CORRUPTION, 1.2),
}

# ---------------------------------------------------------------------------
# Handling-style cues (also used to parse RLHF feedback critiques).
# ---------------------------------------------------------------------------

HANDLING_PHRASES: dict[str, HandlingStyle] = {
    "retry mechanism": HandlingStyle.RETRY,
    "retry logic": HandlingStyle.RETRY,
    "retrying": HandlingStyle.RETRY,
    "retries": HandlingStyle.RETRY,
    "retry": HandlingStyle.RETRY,
    "instead of just logging": HandlingStyle.RETRY,
    "fallback": HandlingStyle.FALLBACK,
    "fall back": HandlingStyle.FALLBACK,
    "default value": HandlingStyle.FALLBACK,
    "degrade gracefully": HandlingStyle.FALLBACK,
    "graceful degradation": HandlingStyle.FALLBACK,
    "re-raise": HandlingStyle.RERAISE,
    "reraise": HandlingStyle.RERAISE,
    "propagate the error": HandlingStyle.RERAISE,
    "propagate the exception": HandlingStyle.RERAISE,
    "bubble up": HandlingStyle.RERAISE,
    "just logging": HandlingStyle.LOGGED_ONLY,
    "only logs": HandlingStyle.LOGGED_ONLY,
    "log the error": HandlingStyle.LOGGED_ONLY,
    "logs the error": HandlingStyle.LOGGED_ONLY,
    "logging the error": HandlingStyle.LOGGED_ONLY,
    "unhandled": HandlingStyle.UNHANDLED,
    "uncaught": HandlingStyle.UNHANDLED,
    "no error handling": HandlingStyle.UNHANDLED,
    "without handling": HandlingStyle.UNHANDLED,
    "not handled": HandlingStyle.UNHANDLED,
}

# ---------------------------------------------------------------------------
# Trigger cues.
# ---------------------------------------------------------------------------

TRIGGER_CONDITIONAL_MARKERS: tuple[str, ...] = (
    "when",
    "whenever",
    "if",
    "in case",
    "once",
    "as soon as",
    "while",
)

TRIGGER_PROBABILISTIC_MARKERS: tuple[str, ...] = (
    "sometimes",
    "occasionally",
    "intermittently",
    "randomly",
    "of the time",
    "percent of",
    "% of",
    "with probability",
)

TRIGGER_NTH_CALL_MARKERS: tuple[str, ...] = (
    "every",
    "nth call",
    "each time after",
    "th call",
    "rd call",
    "nd call",
    "st call",
    "after the first",
)

# ---------------------------------------------------------------------------
# Entity cues.
# ---------------------------------------------------------------------------

COMPONENT_WORDS: frozenset[str] = frozenset(
    {
        "database", "db", "cache", "queue", "broker", "service", "microservice",
        "server", "client", "api", "endpoint", "gateway", "storage", "disk",
        "network", "socket", "connection", "transaction", "session", "thread",
        "process", "worker", "scheduler", "dispatcher", "handler", "listener",
        "producer", "consumer", "publisher", "subscriber", "replica", "shard",
        "node", "cluster", "pipeline", "buffer", "pool", "ledger", "inventory",
        "cart", "checkout", "payment", "order", "account", "balance", "message",
        "topic", "partition", "table", "index", "lock", "mutex", "semaphore",
        "file", "filesystem", "bucket", "cloud", "container", "pod",
    }
)

RESOURCE_WORDS: frozenset[str] = frozenset(
    {
        "connection", "file", "handle", "socket", "lock", "cursor", "session",
        "descriptor", "buffer", "memory", "thread", "channel", "stream",
    }
)

ACTION_WORDS: frozenset[str] = frozenset(
    {
        "introduce", "inject", "simulate", "emulate", "cause", "trigger",
        "generate", "create", "add", "insert", "remove", "drop", "delete",
        "corrupt", "delay", "fail", "raise", "throw", "skip", "omit", "forget",
        "swallow", "ignore", "leak", "block", "hang", "crash", "abort",
        "retry", "return", "make",
    }
)

STOPWORDS: frozenset[str] = frozenset(
    {
        "a", "an", "the", "of", "in", "on", "at", "to", "for", "from", "by",
        "with", "within", "into", "is", "are", "was", "were", "be", "been",
        "being", "it", "its", "this", "that", "these", "those", "and", "or",
        "but", "so", "because", "due", "as", "such", "where", "which", "who",
        "should", "would", "could", "can", "may", "might", "will", "shall",
        "do", "does", "did", "not", "no", "we", "i", "you", "they", "there",
        "here", "function", "method", "between",
    }
)

# Common exception class names recognised as entities and usable as generation
# parameters ("raise a KeyError", "fails with ConnectionError").
KNOWN_EXCEPTIONS: frozenset[str] = frozenset(
    {
        "Exception", "RuntimeError", "ValueError", "TypeError", "KeyError",
        "IndexError", "AttributeError", "TimeoutError", "ConnectionError",
        "ConnectionResetError", "ConnectionRefusedError", "OSError", "IOError",
        "FileNotFoundError", "PermissionError", "MemoryError", "OverflowError",
        "ZeroDivisionError", "StopIteration", "NotImplementedError",
        "InterruptedError", "BrokenPipeError", "LookupError", "ArithmeticError",
    }
)

FAULT_TYPE_DEFAULT_EXCEPTIONS: dict[FaultType, str] = {
    FaultType.TIMEOUT: "TimeoutError",
    FaultType.EXCEPTION: "RuntimeError",
    FaultType.NETWORK_FAILURE: "ConnectionError",
    FaultType.DISK_FAILURE: "OSError",
}

NUMBER_WORDS: dict[str, int] = {
    "zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
    "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10, "twice": 2,
    "first": 1, "second": 2, "third": 3, "fourth": 4, "fifth": 5,
}

TIME_UNIT_SECONDS: dict[str, float] = {
    "second": 1.0, "seconds": 1.0, "sec": 1.0, "secs": 1.0, "s": 1.0,
    "millisecond": 0.001, "milliseconds": 0.001, "ms": 0.001,
    "minute": 60.0, "minutes": 60.0, "min": 60.0, "mins": 60.0,
}


def fault_type_vocabulary() -> list[str]:
    """All phrases and words that signal a fault type (for feature hashing)."""
    return sorted(set(FAULT_TYPE_PHRASES) | set(FAULT_TYPE_WORDS))


def handling_vocabulary() -> list[str]:
    """All phrases that signal a handling style."""
    return sorted(HANDLING_PHRASES)
