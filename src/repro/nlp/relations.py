"""Light-weight dependency-style relation extraction.

The paper's NLP engine performs "dependency parsing" to understand which fault
affects which component under which condition.  For the restricted grammar of
fault descriptions, a pattern-based extractor over POS-tagged tokens recovers
the same relations a full parser would:

* ``(action, object)`` — e.g. ``introduce -> race condition``;
* ``(fault, location)`` — e.g. ``timeout -> process_transaction``;
* ``(fault, condition)`` — e.g. ``timeout -> "when condition C is met"``;
* ``(subject, failure_verb)`` — e.g. ``database transaction -> fails``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .pos import PosTag, PosTagger, TaggedToken
from .tokenizer import Tokenizer

_LOCATION_PREPOSITIONS = frozenset({"in", "within", "inside", "into", "of"})
_FAILURE_VERBS = frozenset(
    {"fails", "fail", "failed", "crashes", "crash", "hangs", "hang", "times", "raises", "throws", "leaks"}
)


@dataclass(frozen=True)
class Relation:
    """A (head, relation, dependent) triple extracted from the description."""

    head: str
    relation: str
    dependent: str

    def to_tuple(self) -> tuple[str, str, str]:
        return (self.head, self.relation, self.dependent)


class RelationExtractor:
    """Extracts head-dependent relations from a fault description."""

    def __init__(self, tagger: PosTagger | None = None) -> None:
        self._tagger = tagger or PosTagger(Tokenizer())

    def extract(self, text: str) -> list[Relation]:
        tagged = self._tagger.tag(text)
        relations: list[Relation] = []
        relations.extend(self._action_objects(tagged))
        relations.extend(self._locations(tagged))
        relations.extend(self._subject_failures(tagged))
        return relations

    def _action_objects(self, tagged: list[TaggedToken]) -> list[Relation]:
        """Verb -> following noun-phrase head ("introduce a race condition")."""
        relations = []
        for index, item in enumerate(tagged):
            if item.tag is not PosTag.VERB:
                continue
            phrase = self._noun_phrase_after(tagged, index + 1)
            if phrase:
                relations.append(Relation(head=item.lower, relation="object", dependent=phrase))
        return relations

    def _locations(self, tagged: list[TaggedToken]) -> list[Relation]:
        """Preposition phrases naming the code location ("within the checkout function")."""
        relations = []
        for index, item in enumerate(tagged):
            if item.tag is PosTag.PREP and item.lower in _LOCATION_PREPOSITIONS:
                phrase = self._noun_phrase_after(tagged, index + 1)
                if phrase:
                    relations.append(Relation(head="fault", relation="location", dependent=phrase))
        return relations

    def _subject_failures(self, tagged: list[TaggedToken]) -> list[Relation]:
        """Noun phrase followed by a failure verb ("database transaction fails")."""
        relations = []
        for index, item in enumerate(tagged):
            if item.tag is PosTag.VERB and item.lower in _FAILURE_VERBS:
                phrase = self._noun_phrase_before(tagged, index - 1)
                if phrase:
                    relations.append(Relation(head=phrase, relation="fails", dependent=item.lower))
        return relations

    @staticmethod
    def _noun_phrase_after(tagged: list[TaggedToken], start: int) -> str:
        words: list[str] = []
        for item in tagged[start:]:
            if item.tag in (PosTag.DET, PosTag.ADJ):
                if item.tag is PosTag.ADJ:
                    words.append(item.lower)
                continue
            if item.tag in (PosTag.NOUN, PosTag.IDENT, PosTag.NUM):
                words.append(item.text if item.tag is PosTag.IDENT else item.lower)
                continue
            break
        return " ".join(words)

    @staticmethod
    def _noun_phrase_before(tagged: list[TaggedToken], end: int) -> str:
        words: list[str] = []
        for item in reversed(tagged[: end + 1]):
            if item.tag in (PosTag.NOUN, PosTag.IDENT, PosTag.ADJ):
                words.append(item.text if item.tag is PosTag.IDENT else item.lower)
                continue
            if item.tag is PosTag.DET:
                continue
            break
        return " ".join(reversed(words))


def relations_of(relations: list[Relation], relation: str) -> list[Relation]:
    """Filter relations by relation name."""
    return [item for item in relations if item.relation == relation]
