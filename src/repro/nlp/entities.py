"""Named-entity recognition for the fault domain.

Entities recognised:

* ``FAULT_KEYWORD`` — phrases signalling the fault type ("race condition");
* ``COMPONENT`` — system components ("database", "payment service");
* ``FUNCTION`` — code identifiers naming the injection target;
* ``RESOURCE`` — leakable resources ("connection", "file handle");
* ``CONDITION`` — trigger clauses ("when the cart is empty");
* ``ACTION`` — injection verbs ("introduce", "simulate");
* ``QUANTITY`` — numbers with optional units ("5 seconds", "30%");
* ``EXCEPTION_NAME`` — Python exception class names ("TimeoutError").

This is the "named entity recognition" capability the paper attributes to its
NLP engine (Section III-B.1).
"""

from __future__ import annotations

import re

from ..types import Entity, EntityLabel
from . import lexicon
from .tokenizer import Token, Tokenizer

_EXCEPTION_PATTERN = re.compile(r"\b[A-Z][A-Za-z]*(?:Error|Exception|Timeout|Warning)\b")
_CONDITION_PATTERN = re.compile(
    r"\b(?:when|whenever|if|in case|once|as soon as)\b(?P<clause>[^,.;]*)", re.IGNORECASE
)
_QUANTITY_PATTERN = re.compile(
    r"\b(?P<value>\d+(?:\.\d+)?)\s*(?P<unit>%|percent|seconds?|secs?|ms|milliseconds?|minutes?|times?|calls?)?\b",
    re.IGNORECASE,
)


class EntityRecognizer:
    """Rule- and lexicon-based NER over fault descriptions."""

    def __init__(self, tokenizer: Tokenizer | None = None) -> None:
        self._tokenizer = tokenizer or Tokenizer()

    def recognize(self, text: str, known_functions: list[str] | None = None) -> list[Entity]:
        """Extract all entities from ``text``.

        ``known_functions`` (from the code analyser) lets plain words such as
        "checkout" be recognised as function references when they match the
        target code, which the paper's dual-input strategy explicitly enables.
        """
        entities: list[Entity] = []
        entities.extend(self._fault_keywords(text))
        entities.extend(self._exception_names(text))
        entities.extend(self._conditions(text))
        entities.extend(self._quantities(text))
        entities.extend(self._token_entities(text, known_functions or []))
        return _deduplicate(entities)

    # -- individual recognisers -------------------------------------------------

    def _fault_keywords(self, text: str) -> list[Entity]:
        lowered = text.lower()
        found: list[Entity] = []
        for phrase in sorted(lexicon.FAULT_TYPE_PHRASES, key=len, reverse=True):
            start = lowered.find(phrase)
            while start != -1:
                found.append(
                    Entity(
                        text=text[start : start + len(phrase)],
                        label=EntityLabel.FAULT_KEYWORD,
                        start=start,
                        end=start + len(phrase),
                    )
                )
                start = lowered.find(phrase, start + 1)
        return found

    def _exception_names(self, text: str) -> list[Entity]:
        return [
            Entity(
                text=match.group(0),
                label=EntityLabel.EXCEPTION_NAME,
                start=match.start(),
                end=match.end(),
            )
            for match in _EXCEPTION_PATTERN.finditer(text)
        ]

    def _conditions(self, text: str) -> list[Entity]:
        entities = []
        for match in _CONDITION_PATTERN.finditer(text):
            clause = match.group("clause").strip()
            if clause:
                entities.append(
                    Entity(
                        text=match.group(0).strip(),
                        label=EntityLabel.CONDITION,
                        start=match.start(),
                        end=match.end(),
                    )
                )
        return entities

    def _quantities(self, text: str) -> list[Entity]:
        entities = []
        for match in _QUANTITY_PATTERN.finditer(text):
            if match.group("unit") is None:
                continue
            entities.append(
                Entity(
                    text=match.group(0).strip(),
                    label=EntityLabel.QUANTITY,
                    start=match.start(),
                    end=match.end(),
                )
            )
        return entities

    def _token_entities(self, text: str, known_functions: list[str]) -> list[Entity]:
        known_lookup = {name.lower(): name for name in known_functions}
        known_bare = {name.split(".")[-1].lower(): name for name in known_functions}
        entities = []
        for token in self._tokenizer.tokenize(text):
            lower = token.lower.rstrip("()")
            if token.is_identifier or lower in known_lookup or lower in known_bare:
                label = EntityLabel.FUNCTION
            elif lower in lexicon.RESOURCE_WORDS:
                label = EntityLabel.RESOURCE
            elif lower in lexicon.COMPONENT_WORDS:
                label = EntityLabel.COMPONENT
            elif lower in lexicon.ACTION_WORDS:
                label = EntityLabel.ACTION
            else:
                continue
            entities.append(Entity(text=token.text, label=label, start=token.start, end=token.end))
        return entities


def _deduplicate(entities: list[Entity]) -> list[Entity]:
    """Drop entities fully contained inside an identical-label entity."""
    result: list[Entity] = []
    for entity in sorted(entities, key=lambda e: (e.start, -(e.end - e.start))):
        contained = any(
            other.label == entity.label and other.start <= entity.start and entity.end <= other.end
            for other in result
        )
        if not contained:
            result.append(entity)
    return result


def entities_by_label(entities: list[Entity]) -> dict[EntityLabel, list[Entity]]:
    """Group entities by their label for convenient downstream access."""
    grouped: dict[EntityLabel, list[Entity]] = {}
    for entity in entities:
        grouped.setdefault(entity.label, []).append(entity)
    return grouped
