"""The NLP engine: from natural-language fault descriptions to structured specs.

Pipeline stages (Section III-B.1 of the paper):

1. :class:`Tokenizer` / :class:`PosTagger` — tokenisation and tagging;
2. :class:`EntityRecognizer` — fault-domain named entities;
3. :class:`RelationExtractor` — dependency-style relations;
4. :class:`CodeAnalyzer` — structural analysis of the supplied target code;
5. :class:`FaultSpecExtractor` — assembly of the structured fault spec;
6. :class:`PromptBuilder` — packaging spec + code context for the model.
"""

from .code_analyzer import CodeAnalyzer
from .entities import EntityRecognizer, entities_by_label
from .pos import PosTag, PosTagger, TaggedToken, content_words
from .prompt_builder import GenerationPrompt, PromptBuilder, entity_counts
from .relations import Relation, RelationExtractor, relations_of
from .spec_extractor import FaultSpecExtractor
from .tokenizer import Token, Tokenizer, normalize

__all__ = [
    "CodeAnalyzer",
    "EntityRecognizer",
    "FaultSpecExtractor",
    "GenerationPrompt",
    "PosTag",
    "PosTagger",
    "PromptBuilder",
    "Relation",
    "RelationExtractor",
    "TaggedToken",
    "Token",
    "Tokenizer",
    "content_words",
    "entities_by_label",
    "entity_counts",
    "normalize",
    "relations_of",
]
