"""Prompt construction: packaging the fault spec and code context for the model.

With a hosted LLM this stage would emit a text prompt; with the offline policy
model it emits both a human-readable prompt (useful for logging and for the
examples) and a flat feature dictionary consumed by the feature encoder.  The
structure mirrors the "detailed, integrated input that encapsulates both the
fault's conceptual framework and its practical implementation context" the
paper describes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..types import CodeContext, EntityLabel, FaultSpec


@dataclass
class GenerationPrompt:
    """The packaged input handed to the fault-generation model."""

    spec: FaultSpec
    context: CodeContext | None = None
    feedback_directives: dict[str, Any] = field(default_factory=dict)

    @property
    def target_function(self) -> str | None:
        if self.spec.target.class_name and self.spec.target.function:
            return f"{self.spec.target.class_name}.{self.spec.target.function}"
        return self.spec.target.function

    def cache_key(self) -> str:
        """Stable digest of everything the model layer reads from this prompt.

        Covers the full spec, the merged directives, the code context source,
        and the selected function, so two prompts with equal keys encode to
        identical feature vectors and render identically for the same decision
        vector.  Campaigns and RLHF loops re-submit the same prompts thousands
        of times; this key is what the encoder and grammar caches index on.
        Computed once and memoized — prompts are treated as immutable after
        construction (``PromptBuilder.refine`` builds new instances).
        """
        cached = getattr(self, "_cache_key", None)
        if cached is not None:
            return cached
        selected = self.context.selected if self.context is not None else None
        payload = json.dumps(
            {
                "spec": self.spec.to_dict(),
                "feedback_directives": self.feedback_directives,
                "context_source": self.context.source if self.context is not None else None,
                "selected": selected.qualified_name if selected is not None else None,
            },
            sort_keys=True,
            default=repr,
        )
        key = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        self._cache_key = key
        return key

    def to_features(self) -> dict[str, Any]:
        """Flatten the prompt into the feature dictionary the encoder consumes."""
        features: dict[str, Any] = {
            "fault_type": self.spec.fault_type.value,
            "trigger_kind": self.spec.trigger.kind.value,
            "handling": self.spec.handling.value,
            "has_condition": self.spec.trigger.condition is not None,
            "has_probability": self.spec.trigger.probability is not None,
            "has_target_function": self.spec.target.function is not None,
            "confidence": self.spec.confidence,
            "description_words": self.spec.description.lower().split(),
            "entity_labels": [entity.label.value for entity in self.spec.entities],
            "parameters": dict(self.spec.parameters),
            "directives": {**self.spec.directives, **self.feedback_directives},
        }
        if self.context is not None:
            selected = self.context.selected or (self.context.functions[0] if self.context.functions else None)
            features["code"] = {
                "has_code": True,
                "function_count": len(self.context.functions),
                "selected_has_try": bool(selected.has_try) if selected else False,
                "selected_has_loop": bool(selected.has_loop) if selected else False,
                "selected_has_return": bool(selected.has_return) if selected else False,
                "selected_calls": list(selected.calls) if selected else [],
                "selected_args": list(selected.args) if selected else [],
            }
        else:
            features["code"] = {"has_code": False}
        return features

    def to_text(self) -> str:
        """Render a human-readable prompt (what would be sent to a hosted LLM)."""
        lines = [
            "### Fault generation request",
            f"Fault type: {self.spec.fault_type.value}",
            f"Target function: {self.target_function or 'unspecified'}",
            f"Trigger: {self.spec.trigger.kind.value}"
            + (f" ({self.spec.trigger.condition})" if self.spec.trigger.condition else ""),
            f"Handling style: {self.spec.handling.value}",
            f"Parameters: {self.spec.parameters}",
            f"Directives: {dict(self.spec.directives, **self.feedback_directives)}",
            "",
            "Tester description:",
            self.spec.description,
        ]
        if self.spec.entities:
            lines.append("")
            lines.append("Recognised entities:")
            for entity in self.spec.entities:
                lines.append(f"  - [{entity.label.value}] {entity.text}")
        if self.context is not None:
            lines.append("")
            lines.append("Target code:")
            lines.append(self.context.source.rstrip())
        return "\n".join(lines)


class PromptBuilder:
    """Builds :class:`GenerationPrompt` objects, merging feedback directives."""

    def build(
        self,
        spec: FaultSpec,
        context: CodeContext | None = None,
        feedback_directives: dict[str, Any] | None = None,
    ) -> GenerationPrompt:
        return GenerationPrompt(
            spec=spec,
            context=context,
            feedback_directives=dict(feedback_directives or {}),
        )

    def refine(self, prompt: GenerationPrompt, feedback_directives: dict[str, Any]) -> GenerationPrompt:
        """Fold a new round of feedback directives into an existing prompt."""
        merged = dict(prompt.feedback_directives)
        merged.update(feedback_directives)
        return GenerationPrompt(spec=prompt.spec, context=prompt.context, feedback_directives=merged)


def entity_counts(spec: FaultSpec) -> dict[str, int]:
    """Count recognised entities per label (used by reports and benchmarks)."""
    counts: dict[str, int] = {label.value: 0 for label in EntityLabel}
    for entity in spec.entities:
        counts[entity.label.value] += 1
    return counts
