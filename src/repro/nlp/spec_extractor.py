"""From natural language to a structured fault specification.

The :class:`FaultSpecExtractor` is the "data processing" stage of Fig. 1: it
dissects the tester's description with the tokenizer, tagger, NER, and relation
extractor, and restructures it into a :class:`~repro.types.FaultSpec` that the
generation model can consume.
"""

from __future__ import annotations

import dataclasses
import hashlib
import re
import threading
from collections import OrderedDict

from ..errors import SpecificationError
from ..types import (
    CodeContext,
    Entity,
    EntityLabel,
    FaultDescription,
    FaultSpec,
    FaultType,
    HandlingStyle,
    TargetLocation,
    TriggerKind,
    TriggerSpec,
)
from . import lexicon
from .code_analyzer import CodeAnalyzer
from .entities import EntityRecognizer, entities_by_label
from .relations import RelationExtractor, relations_of
from .tokenizer import Tokenizer, normalize

_SECONDS_PATTERN = re.compile(
    r"(\d+(?:\.\d+)?)\s*(seconds?|secs?|ms|milliseconds?|minutes?)", re.IGNORECASE
)
_PERCENT_PATTERN = re.compile(r"(\d+(?:\.\d+)?)\s*(?:%|percent)", re.IGNORECASE)
_NTH_CALL_PATTERN = re.compile(
    r"every\s+(\d+|\w+)(?:st|nd|rd|th)?\s+(?:call|invocation|request|time)", re.IGNORECASE
)
_RETRY_COUNT_PATTERN = re.compile(r"(\d+|\w+)\s+(?:retries|attempts|times)", re.IGNORECASE)


class FaultSpecExtractor:
    """Turns a :class:`FaultDescription` into a structured :class:`FaultSpec`.

    Extraction is deterministic pure Python, and serving workloads submit the
    same descriptions over and over (many clients requesting the same failure
    scenario), so results are memoized under a hash of the description text
    and the grounding code context — an LRU cache of at most ``cache_size``
    entries (``0`` disables caching).  Cache hits return a fresh spec copy
    with copied mutable containers, so feedback-driven spec rewrites can never
    corrupt a cached entry.
    """

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        recognizer: EntityRecognizer | None = None,
        relation_extractor: RelationExtractor | None = None,
        code_analyzer: CodeAnalyzer | None = None,
        cache_size: int = 1024,
    ) -> None:
        self._tokenizer = tokenizer or Tokenizer()
        self._recognizer = recognizer or EntityRecognizer(self._tokenizer)
        self._relations = relation_extractor or RelationExtractor()
        self._analyzer = code_analyzer or CodeAnalyzer()
        self._cache_size = max(0, int(cache_size))
        self._cache: "OrderedDict[str, FaultSpec]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._cache_hits = 0
        self._cache_misses = 0

    # -- cache management --------------------------------------------------------

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters of the description-hash extraction cache."""
        with self._cache_lock:
            return {
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "size": len(self._cache),
                "max_size": self._cache_size,
            }

    def clear_cache(self) -> None:
        """Drop all memoized specs (counters included)."""
        with self._cache_lock:
            self._cache.clear()
            self._cache_hits = 0
            self._cache_misses = 0

    def export_cache(self) -> dict[str, FaultSpec]:
        """A snapshot of the extraction cache for cross-process persistence."""
        with self._cache_lock:
            return dict(self._cache)

    def import_cache(self, entries: dict[str, FaultSpec]) -> int:
        """Merge previously exported entries, respecting the LRU bound.

        Returns:
            The number of entries actually installed.
        """
        if self._cache_size <= 0:
            return 0
        installed = 0
        with self._cache_lock:
            for key, spec in entries.items():
                if key not in self._cache:
                    self._cache[key] = spec
                    installed += 1
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return installed

    @staticmethod
    def _cache_key(text: str, context: CodeContext | None) -> str:
        payload = "\x1f".join(
            (
                text,
                context.source if context is not None else "",
                (context.path or "") if context is not None else "",
                (context.module_name or "") if context is not None else "",
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @staticmethod
    def _fresh_copy(spec: FaultSpec) -> FaultSpec:
        """A shallow spec copy with fresh mutable containers (lists/dicts)."""
        return dataclasses.replace(
            spec,
            entities=list(spec.entities),
            parameters=dict(spec.parameters),
            directives=dict(spec.directives),
        )

    # -- public API --------------------------------------------------------------

    def extract(self, description: FaultDescription, context: CodeContext | None = None) -> FaultSpec:
        """Extract a fault specification, optionally grounded in target code."""
        if self._cache_size <= 0:
            return self._extract_uncached(description, context)
        key = self._cache_key(description.text, context)
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache_hits += 1
                self._cache.move_to_end(key)
                return self._fresh_copy(cached)
            self._cache_misses += 1
        spec = self._extract_uncached(description, context)
        with self._cache_lock:
            self._cache[key] = self._fresh_copy(spec)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return spec

    def extract_batch(
        self,
        descriptions: list[FaultDescription],
        contexts: list[CodeContext | None] | None = None,
    ) -> list[FaultSpec]:
        """Extract specs for many descriptions (cache-assisted).

        Args:
            descriptions: Fault descriptions to process.
            contexts: Optional per-description code contexts, aligned with
                ``descriptions``; ``None`` (or a ``None`` entry) extracts
                without code grounding.

        Returns:
            One :class:`FaultSpec` per description, in input order.  Repeated
            (description, context) pairs — the common shape of concurrent
            serving traffic — are extracted once and served from the LRU
            cache afterwards.

        Raises:
            SpecificationError: If ``contexts`` is given but not aligned with
                ``descriptions``, or any description is empty.
        """
        if contexts is not None and len(contexts) != len(descriptions):
            raise SpecificationError(
                f"contexts ({len(contexts)}) must align with descriptions ({len(descriptions)})"
            )
        return [
            self.extract(description, context=contexts[index] if contexts else None)
            for index, description in enumerate(descriptions)
        ]

    def _extract_uncached(
        self, description: FaultDescription, context: CodeContext | None = None
    ) -> FaultSpec:
        """The full (uncached) NLP extraction pipeline."""
        text = normalize(description.text)
        if not text:
            raise SpecificationError("empty fault description", description=description.text)
        known_functions = [info.qualified_name for info in context.functions] if context else []
        entities = self._recognizer.recognize(text, known_functions=known_functions)
        relations = self._relations.extract(text)

        fault_type, type_score = self._classify_fault_type(text)
        trigger = self._extract_trigger(text, entities)
        handling = self._extract_handling(text, fault_type)
        target = self._extract_target(text, entities, relations, context)
        parameters = self._extract_parameters(text, entities, fault_type)
        directives = self._extract_directives(text)
        confidence = self._confidence(type_score, target, entities)

        return FaultSpec(
            fault_type=fault_type,
            target=target,
            trigger=trigger,
            handling=handling,
            entities=entities,
            parameters=parameters,
            directives=directives,
            description=text,
            confidence=confidence,
        )

    def extract_from_text(self, text: str, code: str | None = None) -> FaultSpec:
        """Convenience wrapper building the description and code context."""
        description = FaultDescription(text=text, code=code)
        context = None
        if code:
            context = self._analyzer.analyze(code)
        spec = self.extract(description, context=context)
        if context is not None and spec.target.function:
            self._analyzer.select_function(context, text, hint=spec.target.function)
        return spec

    # -- components --------------------------------------------------------------

    def _classify_fault_type(self, text: str) -> tuple[FaultType, float]:
        """Score every fault type against phrase and word cues; return the best."""
        lowered = text.lower()
        scores: dict[FaultType, float] = {}
        for phrase, (fault_type, weight) in lexicon.FAULT_TYPE_PHRASES.items():
            occurrences = lowered.count(phrase)
            if occurrences:
                scores[fault_type] = scores.get(fault_type, 0.0) + weight * occurrences
        if not scores:
            for word in self._tokenizer.words(lowered):
                if word in lexicon.FAULT_TYPE_WORDS:
                    fault_type, weight = lexicon.FAULT_TYPE_WORDS[word]
                    scores[fault_type] = scores.get(fault_type, 0.0) + weight
        if not scores:
            return FaultType.UNKNOWN, 0.0
        best = max(scores.items(), key=lambda item: item[1])
        return best[0], best[1]

    def _extract_trigger(self, text: str, entities: list[Entity]) -> TriggerSpec:
        lowered = text.lower()
        percent = _PERCENT_PATTERN.search(lowered)
        if percent:
            probability = min(1.0, float(percent.group(1)) / 100.0)
            return TriggerSpec(kind=TriggerKind.PROBABILISTIC, probability=probability)
        if any(marker in lowered for marker in lexicon.TRIGGER_PROBABILISTIC_MARKERS):
            return TriggerSpec(kind=TriggerKind.PROBABILISTIC, probability=0.5)
        nth = _NTH_CALL_PATTERN.search(lowered)
        if nth:
            raw = nth.group(1).lower()
            value = int(raw) if raw.isdigit() else lexicon.NUMBER_WORDS.get(raw, 2)
            return TriggerSpec(kind=TriggerKind.ON_NTH_CALL, nth_call=max(2, value))
        conditions = entities_by_label(entities).get(EntityLabel.CONDITION, [])
        if conditions:
            clause = conditions[0].text
            for marker in lexicon.TRIGGER_CONDITIONAL_MARKERS:
                if clause.lower().startswith(marker):
                    clause = clause[len(marker):].strip()
                    break
            if clause:
                return TriggerSpec(kind=TriggerKind.CONDITIONAL, condition=clause)
        return TriggerSpec(kind=TriggerKind.ALWAYS)

    def _extract_handling(self, text: str, fault_type: FaultType) -> HandlingStyle:
        lowered = text.lower()
        for phrase in sorted(lexicon.HANDLING_PHRASES, key=len, reverse=True):
            if phrase in lowered:
                return lexicon.HANDLING_PHRASES[phrase]
        return HandlingStyle.UNHANDLED

    def _extract_target(
        self,
        text: str,
        entities: list[Entity],
        relations,
        context: CodeContext | None,
    ) -> TargetLocation:
        grouped = entities_by_label(entities)
        function_name: str | None = None
        for entity in grouped.get(EntityLabel.FUNCTION, []):
            candidate = entity.text.rstrip("()").strip()
            if context and (context.function(candidate) or context.function(candidate.split(".")[-1])):
                info = context.function(candidate) or context.function(candidate.split(".")[-1])
                function_name = info.qualified_name if info else candidate
                break
            if function_name is None:
                function_name = candidate
        if function_name is None:
            for relation in relations_of(relations, "location"):
                candidate = relation.dependent.replace(" ", "_")
                if context and context.function(candidate):
                    function_name = candidate
                    break
        if function_name is None and context is not None:
            analyzer = self._analyzer
            selected = analyzer.select_function(context, text)
            function_name = selected.selected_function
        module = context.module_name if context else None
        class_name = None
        if function_name and "." in function_name:
            class_name, function_name = function_name.rsplit(".", 1)
        return TargetLocation(module=module, function=function_name, class_name=class_name)

    def _extract_parameters(self, text: str, entities: list[Entity], fault_type: FaultType) -> dict:
        parameters: dict = {}
        lowered = text.lower()
        seconds_match = _SECONDS_PATTERN.search(lowered)
        if seconds_match:
            value = float(seconds_match.group(1))
            unit = seconds_match.group(2).lower()
            factor = lexicon.TIME_UNIT_SECONDS.get(unit, lexicon.TIME_UNIT_SECONDS.get(unit.rstrip("s"), 1.0))
            parameters["seconds"] = value * factor
        retry_match = _RETRY_COUNT_PATTERN.search(lowered)
        if retry_match:
            raw = retry_match.group(1).lower()
            parameters["retries"] = int(raw) if raw.isdigit() else lexicon.NUMBER_WORDS.get(raw, 3)
        exceptions = [e.text for e in entities if e.label == EntityLabel.EXCEPTION_NAME]
        if exceptions:
            parameters["exception"] = exceptions[0]
        elif fault_type in lexicon.FAULT_TYPE_DEFAULT_EXCEPTIONS:
            parameters["exception"] = lexicon.FAULT_TYPE_DEFAULT_EXCEPTIONS[fault_type]
        components = [e.text.lower() for e in entities if e.label == EntityLabel.COMPONENT]
        if components:
            parameters["components"] = sorted(set(components))
        resources = [e.text.lower() for e in entities if e.label == EntityLabel.RESOURCE]
        if resources:
            parameters["resources"] = sorted(set(resources))
        return parameters

    def _extract_directives(self, text: str) -> dict:
        """Boolean directives that steer generation (also used for feedback)."""
        lowered = text.lower()
        directives: dict = {}
        if any(phrase in lowered for phrase in ("retry", "retries", "retrying")):
            directives["wants_retry"] = True
        if any(phrase in lowered for phrase in ("log", "logging", "logs")):
            directives["wants_logging"] = True
        if any(phrase in lowered for phrase in ("unhandled", "uncaught", "not handled", "no error handling")):
            directives["wants_unhandled"] = True
        if any(phrase in lowered for phrase in ("fallback", "default value", "degrade")):
            directives["wants_fallback"] = True
        if "instead of" in lowered:
            directives["replaces_previous_behaviour"] = True
        return directives

    @staticmethod
    def _confidence(type_score: float, target: TargetLocation, entities: list[Entity]) -> float:
        """Heuristic confidence in [0, 1] used by reports and the benchmarks."""
        confidence = 0.0
        confidence += min(type_score / 3.0, 1.0) * 0.5
        if target.function:
            confidence += 0.3
        if entities:
            confidence += min(len(entities) / 8.0, 1.0) * 0.2
        return round(min(confidence, 1.0), 3)
