"""Tokenisation of natural-language fault descriptions.

The tokeniser keeps character offsets for every token so that downstream named
entities can point back into the original description, and it recognises code
identifiers (``process_transaction``, ``OrderService.place_order``) as single
tokens, which is essential for locating the target function.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

_TOKEN_PATTERN = re.compile(
    r"""
    [A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)+   # dotted identifiers
    | [A-Za-z_][A-Za-z0-9_]*\(\)                          # call-style identifiers foo()
    | [A-Za-z][A-Za-z0-9]*(?:_[A-Za-z0-9]+)+              # snake_case identifiers
    | [0-9]+(?:\.[0-9]+)?%?                               # numbers, decimals, percentages
    | [A-Za-z]+(?:'[a-z]+)?                               # plain words (with apostrophes)
    | [^\sA-Za-z0-9]                                      # punctuation, one char at a time
    """,
    re.VERBOSE,
)

_SENTENCE_BOUNDARY = re.compile(r"(?<=[.!?;])\s+")


@dataclass(frozen=True)
class Token:
    """A single token with its span in the original text."""

    text: str
    start: int
    end: int

    @property
    def lower(self) -> str:
        return self.text.lower()

    @property
    def is_identifier(self) -> bool:
        """Whether the token looks like a code identifier rather than prose."""
        stripped = self.text[:-2] if self.text.endswith("()") else self.text
        if "." in stripped:
            return all(part.isidentifier() for part in stripped.split("."))
        return stripped.isidentifier() and ("_" in stripped or self.text.endswith("()"))

    @property
    def is_number(self) -> bool:
        text = self.text.rstrip("%")
        try:
            float(text)
            return True
        except ValueError:
            return False

    @property
    def is_percentage(self) -> bool:
        return self.text.endswith("%") and self.is_number

    def numeric_value(self) -> float | None:
        """The numeric value of the token, if it is a number."""
        if not self.is_number:
            return None
        return float(self.text.rstrip("%"))


class Tokenizer:
    """Regex-based tokenizer with offsets and sentence segmentation."""

    def tokenize(self, text: str) -> list[Token]:
        """Split ``text`` into tokens, preserving character offsets."""
        return [
            Token(text=match.group(0), start=match.start(), end=match.end())
            for match in _TOKEN_PATTERN.finditer(text)
        ]

    def sentences(self, text: str) -> list[str]:
        """Split ``text`` into sentences on terminal punctuation."""
        parts = [part.strip() for part in _SENTENCE_BOUNDARY.split(text)]
        return [part for part in parts if part]

    def words(self, text: str) -> list[str]:
        """Lower-cased word texts with punctuation removed."""
        return [token.lower for token in self.tokenize(text) if any(c.isalnum() for c in token.text)]

    def ngrams(self, text: str, max_n: int = 3) -> Iterator[str]:
        """Yield all lower-cased word n-grams up to length ``max_n``."""
        words = self.words(text)
        for n in range(1, max_n + 1):
            for start in range(0, len(words) - n + 1):
                yield " ".join(words[start : start + n])


def normalize(text: str) -> str:
    """Normalise whitespace and quotes in a description for stable hashing."""
    text = text.replace("“", '"').replace("”", '"')
    text = text.replace("‘", "'").replace("’", "'")
    return re.sub(r"\s+", " ", text).strip()
