"""Static analysis of the target code supplied with a fault description.

The paper's dual-input strategy requires the NLP engine to "analyze the
provided code to understand its structure, dependencies, and operational
logic".  The :class:`CodeAnalyzer` builds a :class:`~repro.types.CodeContext`
summarising exactly that: the functions defined, their arguments, the calls
they make, the exceptions they raise, and whether they already contain
try/except, loops, or returns — the features the generation grammar needs to
place a fault plausibly.
"""

from __future__ import annotations

import ast

from ..errors import CodeAnalysisError
from ..execution.cache import get_cache
from ..injection import ast_utils
from ..types import CodeContext, FunctionInfo

#: Memoizes (functions, imports) summaries by source hash, so N scenarios
#: against one target analyse its code once.  ``misses`` counts real analyses.
ANALYSIS_CACHE = get_cache("code-analysis")


class CodeAnalyzer:
    """Builds :class:`CodeContext` objects from raw Python source."""

    def analyze(self, source: str, path: str | None = None, module_name: str | None = None) -> CodeContext:
        """Parse and summarise ``source`` into a :class:`CodeContext`.

        The per-function summaries are memoized by source hash; each call
        still returns a fresh :class:`CodeContext` so mutable selection state
        (``selected_function``) never bleeds between scenarios.
        """
        functions, imports = ANALYSIS_CACHE.get_or_compute(
            ANALYSIS_CACHE.key_for(source, path),
            lambda: self._summarise(source, path),
        )
        return CodeContext(
            source=source,
            path=path,
            module_name=module_name,
            functions=list(functions),
            imports=list(imports),
        )

    def _summarise(self, source: str, path: str | None) -> tuple[list[FunctionInfo], list[str]]:
        tree = ast_utils.parse_module(source, path=path, mutable=False)
        functions = [
            self._function_info(node, class_name) for node, class_name in ast_utils.iter_functions(tree)
        ]
        return functions, self._imports(tree)

    def select_function(self, context: CodeContext, description: str, hint: str | None = None) -> CodeContext:
        """Pick the function the description most plausibly targets.

        Selection order: an explicit hint (from the spec extractor), an exact
        identifier mention in the description, then lexical overlap between the
        description and each function's name, arguments, calls, and docstring.
        Single-function modules fall back to that function.
        """
        if not context.functions:
            raise CodeAnalysisError("target code defines no functions to inject into", source_path=context.path)
        chosen: str | None = None
        if hint:
            info = context.function(hint) or context.function(hint.split(".")[-1])
            if info:
                chosen = info.qualified_name
        if chosen is None:
            chosen = self._match_by_mention(context, description)
        if chosen is None:
            chosen = self._match_by_overlap(context, description)
        if chosen is None:
            chosen = context.functions[0].qualified_name
        context.selected_function = chosen
        return context

    # -- helpers ---------------------------------------------------------------

    def _function_info(self, node: ast_utils.FunctionNode, class_name: str | None) -> FunctionInfo:
        raises = []
        for child in ast.walk(node):
            if isinstance(child, ast.Raise) and child.exc is not None:
                call = child.exc
                if isinstance(call, ast.Call) and isinstance(call.func, ast.Name):
                    raises.append(call.func.id)
                elif isinstance(call, ast.Name):
                    raises.append(call.id)
        return FunctionInfo(
            name=node.name,
            lineno=node.lineno,
            end_lineno=getattr(node, "end_lineno", node.lineno),
            args=[arg.arg for arg in node.args.args if arg.arg not in ("self", "cls")],
            calls=sorted(set(ast_utils.call_names(node))),
            raises=sorted(set(raises)),
            has_try=ast_utils.contains_node_type(node, ast.Try),
            has_loop=ast_utils.contains_node_type(node, ast.For) or ast_utils.contains_node_type(node, ast.While),
            has_return=any(
                isinstance(child, ast.Return) and child.value is not None for child in ast.walk(node)
            ),
            docstring=ast.get_docstring(node),
            class_name=class_name,
        )

    @staticmethod
    def _imports(tree: ast.Module) -> list[str]:
        imports: list[str] = []
        for node in tree.body:
            if isinstance(node, ast.Import):
                imports.extend(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module:
                imports.append(node.module)
        return sorted(set(imports))

    @staticmethod
    def _match_by_mention(context: CodeContext, description: str) -> str | None:
        lowered = description.lower()
        best: tuple[int, str] | None = None
        for info in context.functions:
            for candidate in (info.qualified_name, info.name):
                position = lowered.find(candidate.lower())
                if position != -1 and (best is None or len(candidate) > best[0]):
                    best = (len(candidate), info.qualified_name)
        return best[1] if best else None

    @staticmethod
    def _match_by_overlap(context: CodeContext, description: str) -> str | None:
        words = {word for word in description.lower().replace("_", " ").split() if len(word) > 2}
        best_score = 0.0
        best_name: str | None = None
        for info in context.functions:
            vocabulary = set(info.name.lower().split("_"))
            vocabulary.update(part for arg in info.args for part in arg.lower().split("_"))
            vocabulary.update(part for call in info.calls for part in call.lower().replace(".", "_").split("_"))
            if info.docstring:
                vocabulary.update(info.docstring.lower().split())
            score = len(words & vocabulary)
            if score > best_score:
                best_score = score
                best_name = info.qualified_name
        return best_name if best_score > 0 else None
