"""Consistent-hash sharding of the serving plane (docs/SHARDING.md).

``python -m repro serve --shards N`` turns the front-end into a router over
N *shard worker processes*, each running the classic single-engine server
(`python -m repro serve` with the shard topology baked into its config) on a
loopback ephemeral port.  The pieces here:

* :class:`HashRing` — a deterministic consistent-hash ring (sha256 points,
  virtual nodes).  Routing is a pure function of ``(shard count, key)``, so
  the same target lands on the same shard across requests *and* restarts —
  per-target worker pools, memoized analyses, and prompt caches stay hot in
  exactly one shard.
* :func:`routing_key` — the request-body → ring-key rule (the target when
  present, else the first dataset target, else the description).
* :class:`ShardManager` — shard lifecycle: spawn, readiness, HTTP proxying,
  supervision (dead shards are respawned and counted in ``shard_respawns``,
  the shard-level analogue of ``pool_rebuilds``), stats aggregation with
  retired-counter accumulation (aggregates stay monotonic across respawns),
  and SIGINT drain fan-out on close.

The manager is deliberately engine-agnostic: it only speaks the public HTTP
surface of its shards, which is what keeps ``--shards 1`` byte-identical to
the historical single-engine server — that topology never constructs any of
this machinery.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from bisect import bisect_right
from typing import Any, Mapping

from ..api import ShardInfo
from ..config import PipelineConfig, ServerConfig
from ..errors import ReproError

#: Virtual nodes per shard on the ring.  Together with the salt this is a
#: pinned constant: changing either remaps targets across shards (cold
#: caches after an upgrade) and breaks the routing-stability tests.
RING_REPLICAS = 64

#: Hash salt for ring points and keys.  Chosen (with RING_REPLICAS) so the
#: builtin targets spread across all shards at the common shard counts —
#: ``tests/test_sharding.py`` pins that property.
RING_SALT = "repro-shard-68"

#: Environment variable carrying the full pipeline config JSON to shard
#: worker processes (read by ``python -m repro serve``).
SHARD_CONFIG_ENV = "REPRO_SERVE_CONFIG"

#: How long the manager waits for one shard worker to print its banner.
_SPAWN_TIMEOUT_SECONDS = 60.0

#: Supervision poll interval: dead shard processes are respawned this fast.
_SUPERVISE_INTERVAL_SECONDS = 0.5

#: Per-proxy-call HTTP timeout towards a shard.
_PROXY_TIMEOUT_SECONDS = 120.0

#: Monotonic counters folded into the cross-shard aggregate (and into the
#: retired ledger when a shard incarnation dies).
_MONOTONIC_KEYS = (
    "requests_total",
    "dispatched",
    "batch_count",
    "tasks_executed",
    "pool_rebuilds",
    "retries",
    "quarantined",
)


class ShardUnavailableError(ReproError):
    """A shard worker could not be reached (dead or mid-respawn)."""


class HashRing:
    """A deterministic consistent-hash ring over ``shards`` buckets.

    Points are sha256 hashes of ``salt:index:replica``; keys hash to
    ``salt|key:<key>`` and route to the next point clockwise.  Everything is
    derived from the constructor arguments, so two rings built with the same
    shard count always agree — the property the routing tests pin.
    """

    def __init__(self, shards: int, replicas: int = RING_REPLICAS, salt: str = RING_SALT) -> None:
        """Build the ring.

        Args:
            shards: Bucket count (positive).
            replicas: Virtual nodes per bucket.
            salt: Hash salt shared by points and keys.
        """
        if shards <= 0:
            raise ReproError("hash ring needs at least one shard")
        if replicas <= 0:
            raise ReproError("hash ring needs at least one replica per shard")
        self.shards = shards
        self._salt = salt
        points: list[tuple[int, int]] = []
        for index in range(shards):
            for replica in range(replicas):
                points.append((self._hash(f"{salt}:{index}:{replica}"), index))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    @staticmethod
    def _hash(text: str) -> int:
        return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")

    def route(self, key: str) -> int:
        """The shard index owning ``key`` (stable across ring instances)."""
        value = self._hash(f"{self._salt}|key:{key}")
        index = bisect_right(self._hashes, value) % len(self._hashes)
        return self._owners[index]


def routing_key(kind: str, data: Any) -> str:
    """The consistent-hash key of one decoded request body.

    The rule (docs/SHARDING.md): route by ``target`` when the body names
    one, else by the first entry of a ``targets`` list (dataset requests),
    else by the ``description`` text (keyless generates spread over shards
    but identical descriptions stay cache-hot on one), else by the request
    kind.  The key only depends on the body, so retries and async polls of
    the same logical request land on the same shard.
    """
    if isinstance(data, Mapping):
        target = data.get("target")
        if isinstance(target, str) and target:
            return target
        targets = data.get("targets")
        if isinstance(targets, (list, tuple)) and targets and isinstance(targets[0], str):
            return targets[0]
        description = data.get("description")
        if isinstance(description, str) and description:
            return description
        descriptions = data.get("descriptions")
        if (
            isinstance(descriptions, (list, tuple))
            and descriptions
            and isinstance(descriptions[0], str)
        ):
            return descriptions[0]
    return kind


def _shard_environment(config_json: str) -> dict[str, str]:
    """A child environment that can import :mod:`repro` and read its config."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    parts = [package_root] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    env[SHARD_CONFIG_ENV] = config_json
    return env


class _Shard:
    """One shard slot: the current worker incarnation plus its history."""

    __slots__ = ("index", "process", "url", "respawns", "last_stats", "alive")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: subprocess.Popen | None = None
        self.url: str = ""
        self.respawns = 0
        self.last_stats: dict | None = None
        self.alive = False


class ShardManager:
    """Owns the shard worker fleet behind a sharded front-end.

    Spawn/drain, supervision with respawn accounting, request proxying, and
    cross-shard stats aggregation all live here; the HTTP handler layer only
    ever calls the public methods.
    """

    def __init__(self, config: PipelineConfig, server_config: ServerConfig) -> None:
        """Prepare the fleet (nothing spawns until :meth:`start`).

        Args:
            config: The front-end's pipeline configuration; each shard runs
                an identical copy with the server section swapped for
                :meth:`~repro.config.ServerConfig.shard_child`.
            server_config: The front-end's server configuration (shard
                count, drain timeout, per-shard queue depth).
        """
        from dataclasses import replace

        self.server_config = server_config
        self.shards = server_config.shards
        child_config = replace(config, server=server_config.shard_child())
        self._child_config_json = json.dumps(child_config.to_dict(), sort_keys=True)
        self._ring = HashRing(self.shards)
        self._slots = [_Shard(index) for index in range(self.shards)]
        self._lock = threading.Lock()
        self._closed = False
        self._retired = {key: 0 for key in _MONOTONIC_KEYS}
        self._supervisor: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ShardManager":
        """Spawn every shard worker and block until all are serving.

        Raises:
            ReproError: When any worker fails to come up; already-started
                workers are torn down first.
        """
        try:
            processes = [self._spawn_process() for _ in self._slots]
            for slot, process in zip(self._slots, processes):
                slot.process = process
                slot.url = self._await_banner(process)
                slot.alive = True
        except Exception:
            self.close()
            raise
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-shard-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def close(self) -> None:
        """Drain fan-out: SIGINT every shard concurrently, then reap.

        Each worker runs the classic graceful drain (in-flight exchanges
        finish, queued tickets resolve, engine closes); workers that outlive
        ``drain_timeout_seconds`` are killed.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        deadline = time.monotonic() + self.server_config.drain_timeout_seconds
        for slot in self._slots:
            process = slot.process
            if process is not None and process.poll() is None:
                try:
                    process.send_signal(signal.SIGINT)
                except OSError:  # pragma: no cover - already reaped
                    pass
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
            slot.alive = False

    def _spawn_process(self) -> subprocess.Popen:
        # A fresh session detaches workers from the controlling terminal:
        # a Ctrl-C against the front-end must reach each worker exactly once
        # (the drain fan-out below), not also via the foreground process
        # group mid-drain.
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve"],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            start_new_session=True,
            env=_shard_environment(self._child_config_json),
        )

    @staticmethod
    def _await_banner(process: subprocess.Popen) -> str:
        """Block until the worker prints ``serving on <url>``; drain after.

        The banner may be preceded by interpreter warnings; once it appears
        a daemon thread keeps consuming stderr so the pipe never fills.
        """
        deadline = time.monotonic() + _SPAWN_TIMEOUT_SECONDS
        seen: list[str] = []
        while True:
            if time.monotonic() > deadline:
                process.kill()
                raise ReproError(f"shard worker never became ready; stderr was {seen!r}")
            line = process.stderr.readline()
            if not line:
                process.wait(timeout=10)
                raise ReproError(
                    f"shard worker exited with code {process.returncode} "
                    f"before serving; stderr was {seen!r}"
                )
            if "serving on " in line:
                url = line.split("serving on ")[1].split(" ")[0].strip()
                drain = threading.Thread(
                    target=ShardManager._drain_stderr, args=(process,), daemon=True
                )
                drain.start()
                return url
            seen.append(line.rstrip())

    @staticmethod
    def _drain_stderr(process: subprocess.Popen) -> None:
        try:
            for _line in process.stderr:
                pass
        except (ValueError, OSError):  # pragma: no cover - stream closed mid-read
            pass

    # -- supervision -------------------------------------------------------------

    def _supervise(self) -> None:
        """Respawn dead shard workers until :meth:`close`."""
        while True:
            time.sleep(_SUPERVISE_INTERVAL_SECONDS)
            with self._lock:
                if self._closed:
                    return
            for slot in self._slots:
                process = slot.process
                if process is not None and process.poll() is None:
                    continue
                with self._lock:
                    if self._closed:
                        return
                    self._retire_locked(slot)
                try:
                    replacement = self._spawn_process()
                    url = self._await_banner(replacement)
                except ReproError:
                    continue  # next tick tries again
                with self._lock:
                    if self._closed:
                        replacement.send_signal(signal.SIGINT)
                        continue
                    slot.process = replacement
                    slot.url = url
                    slot.alive = True
                    slot.respawns += 1

    def _retire_locked(self, slot: _Shard) -> None:
        """Fold a dead incarnation's last-known counters into the ledger.

        The retired ledger is what keeps aggregate counters monotonic across
        respawns: a fresh worker restarts its own counters at zero, so the
        aggregate adds the best (last successfully polled) view of every
        incarnation that died.  Counter increments between the last poll and
        the death are lost — the documented accuracy bound.
        """
        slot.alive = False
        stats = slot.last_stats
        slot.last_stats = None
        if not stats:
            return
        for key, value in _monotonic_counters(stats).items():
            self._retired[key] += value

    # -- routing and proxying ----------------------------------------------------

    def shard_for(self, key: str) -> int:
        """The shard index the ring assigns to ``key``."""
        return self._ring.route(key)

    def request(
        self,
        index: int,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str = "application/json",
    ) -> tuple[int, dict[str, str], bytes]:
        """One proxied HTTP exchange against shard ``index``.

        Returns:
            ``(status, headers, body_bytes)`` — the shard's response
            verbatim (the router never re-encodes payload bytes).

        Raises:
            ShardUnavailableError: When the shard cannot be reached (its
                worker died or is mid-respawn — the supervisor notices and
                restarts it); the caller maps this to a 503 with
                ``Retry-After``.
        """
        slot = self._slots[index]
        url = slot.url
        process = slot.process
        if not url or process is None or process.poll() is not None:
            raise ShardUnavailableError(f"shard {index} is restarting")
        host, port = url.removeprefix("http://").rsplit(":", 1)
        connection = http.client.HTTPConnection(host, int(port), timeout=_PROXY_TIMEOUT_SECONDS)
        try:
            connection.request(
                method, path, body=body, headers={"Content-Type": content_type}
            )
            response = connection.getresponse()
            payload = response.read()
            headers = {name: value for name, value in response.getheaders()}
            return response.status, headers, payload
        except (ConnectionError, http.client.HTTPException, OSError) as exc:
            raise ShardUnavailableError(f"shard {index} is unreachable: {exc}") from exc
        finally:
            connection.close()

    def request_json(self, index: int, method: str, path: str) -> dict | None:
        """A proxied JSON GET/DELETE; ``None`` when the shard is unreachable."""
        try:
            status, _headers, body = self.request(index, method, path)
        except ShardUnavailableError:
            return None
        if status != 200:
            return None
        try:
            return json.loads(body)
        except (ValueError, UnicodeDecodeError):  # pragma: no cover - shard bug
            return None

    # -- observability -----------------------------------------------------------

    def health(self) -> list[dict | None]:
        """Every shard's ``/healthz`` body (``None`` for unreachable shards)."""
        return [self.request_json(slot.index, "GET", "/healthz") for slot in self._slots]

    def snapshots(self) -> list[dict | None]:
        """Every shard's ``/v1/stats`` body, updating the retired ledger's
        last-known counters (``None`` for unreachable shards)."""
        results: list[dict | None] = []
        for slot in self._slots:
            snapshot = self.request_json(slot.index, "GET", "/v1/stats")
            if snapshot is not None:
                slot.last_stats = snapshot
            results.append(snapshot)
        return results

    def shard_infos(
        self, snapshots: list[dict | None], include_stats: bool = True
    ) -> tuple[ShardInfo, ...]:
        """Typed per-shard sections for the aggregated stats snapshot."""
        infos = []
        for slot, snapshot in zip(self._slots, snapshots):
            alive = snapshot is not None
            server = (snapshot or {}).get("server", {})
            scheduler = (snapshot or {}).get("scheduler", {})
            execution = (snapshot or {}).get("execution", {})
            open_breakers = sum(
                1
                for state in execution.get("breakers", {}).values()
                if isinstance(state, Mapping) and state.get("state") == "open"
            )
            infos.append(
                ShardInfo(
                    index=slot.index,
                    url=slot.url,
                    alive=alive,
                    respawns=slot.respawns,
                    queue_depth=int(scheduler.get("queue_depth", 0)),
                    draining=bool(server.get("draining", False)),
                    open_breakers=open_breakers,
                    stats=snapshot if include_stats else None,
                )
            )
        return tuple(infos)

    def aggregate(self, infos: tuple[ShardInfo, ...]) -> dict[str, Any]:
        """The cross-shard view: monotonic counters plus topology gauges.

        Monotonic counters are ``retired ledger + sum over live shards``, so
        they never go backwards when a shard is respawned with fresh
        counters; ``queue_depth``/``open_breakers`` are gauges summed over
        reachable shards.
        """
        with self._lock:
            aggregate: dict[str, Any] = {key: self._retired[key] for key in _MONOTONIC_KEYS}
        for info in infos:
            if info.stats is None:
                continue
            for key, value in _monotonic_counters(info.stats).items():
                aggregate[key] += value
        aggregate["queue_depth"] = sum(info.queue_depth for info in infos)
        aggregate["open_breakers"] = sum(info.open_breakers for info in infos)
        aggregate["shards"] = self.shards
        aggregate["alive_shards"] = sum(1 for info in infos if info.alive)
        aggregate["degraded_shards"] = self.shards - aggregate["alive_shards"]
        aggregate["shard_respawns"] = sum(info.respawns for info in infos)
        return aggregate


def _monotonic_counters(snapshot: Mapping[str, Any]) -> dict[str, int]:
    """Extract one shard snapshot's monotonic counters (absent keys → 0)."""
    server = snapshot.get("server", {})
    scheduler = snapshot.get("scheduler", {})
    totals = snapshot.get("execution", {}).get("totals", {})
    sources = {
        "requests_total": server,
        "dispatched": scheduler,
        "batch_count": scheduler,
        "tasks_executed": totals,
        "pool_rebuilds": totals,
        "retries": totals,
        "quarantined": totals,
    }
    counters = {}
    for key, section in sources.items():
        value = section.get(key, 0) if isinstance(section, Mapping) else 0
        counters[key] = int(value) if isinstance(value, (int, float)) else 0
    return counters
