"""HTTP/JSON serving front-end over the :class:`~repro.api.FaultInjectionEngine`.

This package puts a real socket server in front of the typed service layer —
the envelope was already wire-shaped, and the CLI proved the contract; the
server makes it reachable by out-of-process clients:

* ``POST /v1/generate|dataset|campaign|rlhf`` — JSON bodies decoded onto the
  frozen request dataclasses via the :func:`~repro.api.request_from_dict`
  codec, served synchronously (the response envelope) or asynchronously
  (``?async=1`` → a ticket to poll);
* ``GET /v1/requests/<id>`` — poll a submitted async ticket;
* ``GET /healthz`` and ``GET /v1/stats`` — liveness plus scheduler queue
  depth, cache hit rates, and request counters;
* structured JSON errors reusing :class:`~repro.api.ErrorInfo` — clients
  never see a traceback;
* graceful drain on shutdown: in-flight HTTP requests finish, queued engine
  tickets resolve, then the shared engine stack closes.

The implementation is stdlib-only (:class:`http.server.ThreadingHTTPServer`)
— concurrent HTTP clients coalesce through the engine's continuous-batching
scheduler exactly like in-process ``submit()`` callers, which is where the
serving throughput comes from (see ``benchmarks/bench_http_serving.py``).
Run it with ``python -m repro serve`` or embed :class:`FaultInjectionServer`;
docs/SERVING.md is the endpoint reference.

With ``ServerConfig(shards=N)`` (``python -m repro serve --shards N``) the
same front-end becomes a consistent-hash router over N engine worker
processes — each owning a full engine/scheduler/pool stack — so per-target
state stays hot on exactly one shard and heavyweight bursts saturate one
shard's queue without delaying traffic routed elsewhere.  docs/SHARDING.md
covers the routing rule, drain fan-out, supervision, and stats aggregation;
``benchmarks/bench_sharded_serving.py`` pins the scaling.
"""

from .http_server import FaultInjectionServer, serve
from .sharding import HashRing, ShardManager, ShardUnavailableError, routing_key

__all__ = [
    "FaultInjectionServer",
    "HashRing",
    "ShardManager",
    "ShardUnavailableError",
    "routing_key",
    "serve",
]
