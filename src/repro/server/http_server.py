"""The stdlib HTTP server mapping JSON requests onto the typed engine API.

One :class:`FaultInjectionServer` owns (or borrows) one
:class:`~repro.api.FaultInjectionEngine` and exposes it over a
:class:`http.server.ThreadingHTTPServer`.  Every handler thread submits
straight into the engine's continuous-batching scheduler, so N concurrent
HTTP clients get the same coalescing (one ``forward_batch`` pass, pooled
sandbox batches) as N in-process ``submit()`` callers.

Error contract (docs/SERVING.md):

========================  ======================================================
HTTP status               Meaning
========================  ======================================================
200                       Envelope with ``status: ok``, ``degraded`` (fault
                          generated, execution skipped behind an open
                          breaker), or ``cancelled`` (client-requested)
202                       Async ticket accepted / still pending
400                       Malformed JSON or request validation failure
404                       Unknown route or unknown ticket id
405                       Known route, wrong method (``Allow`` header set)
409                       Duplicate async ``request_id`` / cancel refused
413                       Body larger than ``ServerConfig.max_body_bytes``
429                       Load shed: scheduler queue at ``max_queue_depth``
                          (``Retry-After`` header set)
500                       Envelope with a non-request server-side error
503                       Server draining / engine closed / circuit breaker
                          open (``Retry-After`` header set)
504                       Request ``deadline_seconds`` exceeded
========================  ======================================================

Non-2xx statuses are derived from the envelope error's machine-readable
``kind`` (``timeout`` → 504, ``overloaded`` → 429, ``unavailable`` → 503)
before falling back to the exception type.  Every non-200 body carries the
same structured shape as an error envelope: ``{"status": "error", "error":
{"type": ..., "message": ..., "kind": ...}, ...}`` built from
:class:`~repro.api.ErrorInfo` — clients parse one schema everywhere.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..api import (
    REQUEST_KINDS,
    ErrorInfo,
    FaultInjectionEngine,
    ResponseHandle,
    Response,
    SCHEMA_VERSION,
    StatsSnapshot,
    request_from_dict,
)
from ..config import PipelineConfig, ServerConfig
from ..errors import AdmissionError, ConfigurationError, EngineClosedError, ReproError, RequestError
from .sharding import ShardManager, ShardUnavailableError, routing_key

#: Error types that map to client-fault HTTP statuses.
_STATUS_BY_ERROR_TYPE = {
    RequestError.__name__: 400,
    EngineClosedError.__name__: 503,
}

#: Machine-readable error kinds that map to HTTP statuses (checked first).
_STATUS_BY_ERROR_KIND = {
    "timeout": 504,
    "overloaded": 429,
    "unavailable": 503,
}

#: Envelope statuses delivered under HTTP 200: success, graceful degradation
#: (the fault was generated but execution was skipped behind an open
#: breaker), and client-requested cancellation.
_OK_ENVELOPE_STATUSES = ("ok", "degraded", "cancelled")

#: Query-string values accepted as "true" for the ``async`` flag.
_TRUTHY = ("1", "true", "yes", "on")


class _DuplicateTicketError(RequestError):
    """An async ``request_id`` is already tracked (HTTP 409, not 400)."""


class _Reservation:
    """Placeholder tracked between id reservation and engine submission."""

    __slots__ = ("request_id", "kind")

    def __init__(self, request_id: str, kind: str) -> None:
        self.request_id = request_id
        self.kind = kind


def _http_status(response: Response) -> int:
    """The HTTP status an envelope travels under (see module docstring)."""
    if response.status in _OK_ENVELOPE_STATUSES:
        return 200
    kind_status = _STATUS_BY_ERROR_KIND.get(response.error.kind)
    if kind_status is not None:
        return kind_status
    return _STATUS_BY_ERROR_TYPE.get(response.error.type, 500)


class _TicketStore:
    """Async tickets by request id, with bounded retention of finished ones.

    Pending tickets are never evicted (a client must always be able to poll
    a submission to completion); completed envelopes beyond the retention
    bound are dropped oldest-first, so a long-lived server stays O(1).
    """

    def __init__(self, retention: int) -> None:
        self._retention = max(1, int(retention))
        self._handles: "OrderedDict[str, ResponseHandle | _Reservation]" = OrderedDict()
        self._lock = threading.Lock()

    def reserve(self, request_id: str, kind: str) -> None:
        """Atomically claim a client-chosen id before the engine submission.

        Raises:
            _DuplicateTicketError: If the id is already being tracked — the
                client reused a ``request_id`` while the previous ticket is
                still pollable.
        """
        with self._lock:
            if request_id in self._handles:
                raise _DuplicateTicketError(
                    f"request_id {request_id!r} is already tracked; "
                    "poll it or choose a fresh id"
                )
            self._handles[request_id] = _Reservation(request_id, kind)

    def release(self, request_id: str) -> None:
        """Drop a reservation whose engine submission failed."""
        with self._lock:
            if isinstance(self._handles.get(request_id), _Reservation):
                del self._handles[request_id]

    def attach(self, handle: ResponseHandle) -> None:
        """Track a submitted ticket (replacing its reservation, if any)."""
        with self._lock:
            self._handles[handle.request_id] = handle
            self._handles.move_to_end(handle.request_id)
            done = [
                rid
                for rid, entry in self._handles.items()
                if isinstance(entry, ResponseHandle) and entry.done()
            ]
            for rid in done[: max(0, len(done) - self._retention)]:
                del self._handles[rid]

    def get(self, request_id: str) -> "ResponseHandle | _Reservation | None":
        """The tracked entry, or ``None`` for unknown/evicted ids."""
        with self._lock:
            return self._handles.get(request_id)

    def counts(self) -> dict[str, int]:
        """``{"pending": ..., "completed": ...}`` ticket counts."""
        with self._lock:
            done = sum(
                1
                for entry in self._handles.values()
                if isinstance(entry, ResponseHandle) and entry.done()
            )
            return {"pending": len(self._handles) - done, "completed": done}

    def pending_handles(self) -> list[ResponseHandle]:
        """Handles that have not resolved yet (drain bookkeeping)."""
        with self._lock:
            return [
                entry
                for entry in self._handles.values()
                if isinstance(entry, ResponseHandle) and not entry.done()
            ]


class _EngineHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a reference back to the front-end."""

    daemon_threads = True
    allow_reuse_address = True

    app: "FaultInjectionServer"


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP exchanges onto the owning :class:`FaultInjectionServer`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    # Response headers and body are written as separate TCP segments; with
    # Nagle enabled the body segment stalls behind the peer's delayed ACK
    # (~40ms per exchange), which dwarfs a generate-only request.  TCP_NODELAY
    # is the standard HTTP-server setting.
    disable_nagle_algorithm = True

    # The request handler is chatty by default; serving logs belong to the
    # deployment (systemd, container runtime), not stderr noise per request.
    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        pass

    @property
    def app(self) -> "FaultInjectionServer":
        return self.server.app  # type: ignore[attr-defined]

    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")

    def do_DELETE(self) -> None:
        self._route("DELETE")

    # -- routing -----------------------------------------------------------------

    def _route(self, method: str) -> None:
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        with self.app._track() as accepted:
            if not accepted:
                self._send_json(
                    503,
                    self._error_body(
                        ErrorInfo("EngineClosedError", "server is draining", kind="unavailable")
                    ),
                    headers=self.app._retry_after_headers(),
                )
                return
            try:
                self._dispatch(method, path, query)
            except BrokenPipeError:  # client went away mid-response
                self.close_connection = True
            except Exception as exc:  # noqa: BLE001 - handler threads must not die loudly
                try:
                    self._send_json(500, self._error_body(ErrorInfo.from_exception(exc)))
                except Exception:  # pragma: no cover - socket already unusable
                    self.close_connection = True

    def _dispatch(self, method: str, path: str, query: dict) -> None:
        if path == "/healthz":
            self._require(method, "GET") and self._send_json(200, self.app.health())
            return
        if path == "/v1/stats":
            self._require(method, "GET") and self._send_json(200, self.app.stats())
            return
        if path.startswith("/v1/requests/"):
            request_id = path.removeprefix("/v1/requests/")
            if method in ("GET", "DELETE") and self.app.sharded:
                self._proxy_ticket(method, request_id)
            elif method == "GET":
                self._poll(request_id)
            elif method == "DELETE":
                self._cancel(request_id)
            else:
                self._send_json(
                    405,
                    self._error_body(ErrorInfo("RequestError", f"method {method} not allowed")),
                    headers={"Allow": "GET, DELETE"},
                )
            return
        if path.startswith("/v1/"):
            kind = path.removeprefix("/v1/")
            if kind in REQUEST_KINDS:
                if self._require(method, "POST"):
                    self._submit(kind, query)
                return
        self._send_json(
            404,
            self._error_body(ErrorInfo("RequestError", f"unknown route {path!r}")),
        )

    def _require(self, method: str, expected: str) -> bool:
        if method == expected:
            return True
        self._send_json(
            405,
            self._error_body(ErrorInfo("RequestError", f"method {method} not allowed")),
            headers={"Allow": expected},
        )
        return False

    # -- endpoints ---------------------------------------------------------------

    def _submit(self, kind: str, query: dict) -> None:
        """POST /v1/<kind>: decode, validate, and serve one typed request."""
        body = self._read_body()
        if body is None:
            return
        try:
            data = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(
                400, self._error_body(ErrorInfo("RequestError", f"invalid JSON body: {exc}"))
            )
            return
        wants_async = any(
            value.lower() in _TRUTHY for value in query.get("async", [])
        )
        if self.app.sharded:
            self._proxy_submit(kind, body, data, wants_async)
            return
        try:
            self.app._admit()
            request = request_from_dict(kind, data)
            if wants_async:
                # Reserve a client-chosen id atomically BEFORE submitting,
                # so a racing duplicate can never reach the engine twice
                # and then be left untracked.  Engine-assigned ids come
                # from a process-unique counter and need no reservation.
                if request.request_id is not None:
                    self.app._tickets.reserve(request.request_id, kind)
                try:
                    handle = self.app.engine.submit(request)
                except BaseException:
                    if request.request_id is not None:
                        self.app._tickets.release(request.request_id)
                    raise
                self.app._tickets.attach(handle)
            else:
                response = self.app.engine.run(request)
        except AdmissionError as exc:
            self._send_json(
                429,
                self._error_body(ErrorInfo.from_exception(exc), kind=kind),
                headers=self.app._retry_after_headers(),
            )
            return
        except _DuplicateTicketError as exc:
            self._send_json(
                409, self._error_body(ErrorInfo("RequestError", str(exc)), kind=kind)
            )
            return
        except RequestError as exc:
            self._send_json(400, self._error_body(ErrorInfo.from_exception(exc), kind=kind))
            return
        except EngineClosedError as exc:
            self._send_json(
                503,
                self._error_body(ErrorInfo.from_exception(exc), kind=kind),
                headers=self.app._retry_after_headers(),
            )
            return
        except ReproError as exc:
            self._send_json(500, self._error_body(ErrorInfo.from_exception(exc), kind=kind))
            return
        if wants_async:
            self._send_json(202, self._ticket_body(handle))
            return
        self._send_envelope(response)

    def _poll(self, request_id: str) -> None:
        """GET /v1/requests/<id>: the envelope when done, the ticket while not."""
        entry = self.app._tickets.get(request_id)
        if entry is None:
            self._send_json(
                404,
                self._error_body(
                    ErrorInfo("RequestError", f"unknown request id {request_id!r}"),
                ),
            )
            return
        if isinstance(entry, _Reservation) or not entry.done():
            self._send_json(202, self._ticket_body(entry))
            return
        self._send_envelope(entry.result())

    def _cancel(self, request_id: str) -> None:
        """DELETE /v1/requests/<id>: cancel a still-queued async request.

        Cancellation is best-effort and queued-only: 200 with the
        ``status="cancelled"`` envelope when the ticket was recalled, 409
        when it already started executing or finished (poll it instead),
        404 for unknown ids.
        """
        entry = self.app._tickets.get(request_id)
        if entry is None:
            self._send_json(
                404,
                self._error_body(
                    ErrorInfo("RequestError", f"unknown request id {request_id!r}"),
                ),
            )
            return
        if isinstance(entry, _Reservation) or not entry.cancel():
            self._send_json(
                409,
                self._error_body(
                    ErrorInfo(
                        "RequestError",
                        f"request {request_id!r} is executing or finished and cannot "
                        "be cancelled; poll it instead",
                    ),
                ),
            )
            return
        self._send_envelope(entry.result())

    # -- sharded proxying --------------------------------------------------------

    def _proxy_submit(self, kind: str, body: bytes, data, wants_async: bool) -> None:
        """Route one submission to its shard and relay the response verbatim.

        The shard is picked by consistent hash of the request's routing key
        (docs/SHARDING.md), so per-target state stays hot on one engine.
        Admission control is per shard: a saturated shard's 429 travels back
        unchanged while other shards keep accepting.  Async submissions
        without a ``request_id`` get a router-assigned one (engine-assigned
        ids are only unique within one shard), and accepted tickets are
        remembered so polls go straight to the owning shard.
        """
        key = routing_key(kind, data)
        index = self.app._shards.shard_for(key)
        request_id = data.get("request_id") if isinstance(data, dict) else None
        if wants_async and isinstance(data, dict) and not data.get("request_id"):
            request_id = self.app._next_routed_id()
            data = dict(data)
            data["request_id"] = request_id
            body = json.dumps(data).encode("utf-8")
        path = f"/v1/{kind}" + ("?async=1" if wants_async else "")
        try:
            status, headers, payload = self.app._shards.request(index, "POST", path, body)
        except ShardUnavailableError as exc:
            self._send_json(
                503,
                self._error_body(
                    ErrorInfo("EngineClosedError", str(exc), kind="unavailable"), kind=kind
                ),
                headers=self.app._retry_after_headers(),
            )
            return
        if wants_async and status == 202 and isinstance(request_id, str):
            self.app._remember_route(request_id, index)
        self._relay(status, headers, payload)

    def _proxy_ticket(self, method: str, request_id: str) -> None:
        """Route a ticket poll/cancel to its shard (fan-out when unknown).

        The router remembers which shard accepted each async id; ids it no
        longer knows (evicted route, router restart) fan out across all
        shards in index order — the owning shard answers non-404, and a
        uniform 404 means no shard tracks the ticket.
        """
        known = self.app._route_for(request_id)
        order = list(range(self.app.server_config.shards))
        if known is not None:
            order.remove(known)
            order.insert(0, known)
        not_found = None
        unreachable = 0
        for index in order:
            try:
                status, headers, payload = self.app._shards.request(
                    index, method, f"/v1/requests/{request_id}"
                )
            except ShardUnavailableError:
                unreachable += 1
                continue
            if status == 404:
                not_found = (status, headers, payload)
                continue
            if status == 200:
                # Final envelope delivered (poll) or ticket cancelled
                # (DELETE) — the route entry is no longer needed.
                self.app._forget_route(request_id)
            self._relay(status, headers, payload)
            return
        if not_found is not None:
            self._relay(*not_found)
            return
        self._send_json(
            503,
            self._error_body(
                ErrorInfo(
                    "EngineClosedError",
                    f"no shard could be reached for request {request_id!r} "
                    f"({unreachable} unreachable)",
                    kind="unavailable",
                )
            ),
            headers=self.app._retry_after_headers(),
        )

    def _relay(self, status: int, headers: dict, body: bytes) -> None:
        """Forward a shard's response bytes verbatim (byte-identity path)."""
        if status >= 400:
            self.app._count_error()
        self.send_response(status)
        self.send_header("Content-Type", headers.get("Content-Type", "application/json"))
        self.send_header("Content-Length", str(len(body)))
        for name in ("Retry-After", "Allow"):
            if name in headers:
                self.send_header(name, headers[name])
        self.end_headers()
        self.wfile.write(body)

    # -- plumbing ----------------------------------------------------------------

    def _send_envelope(self, response: Response) -> None:
        """Send an engine envelope under its mapped HTTP status."""
        status = _http_status(response)
        headers = self.app._retry_after_headers() if status in (429, 503) else None
        self._send_json(status, response.to_dict(), headers=headers)

    def _read_body(self) -> bytes | None:
        """The request body, or ``None`` after replying 400/413 to a bad one."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True
            self._send_json(
                400,
                self._error_body(ErrorInfo("RequestError", "malformed Content-Length header")),
            )
            return None
        limit = self.app.server_config.max_body_bytes
        if length > limit:
            # Discard the declared body in bounded chunks first — replying
            # while the client is still sending breaks its pipe mid-write —
            # then close the connection (the stream is not worth keeping).
            remaining = min(length, 64 * limit)
            while remaining > 0:
                chunk = self.rfile.read(min(65536, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
            self.close_connection = True
            self._send_json(
                413,
                self._error_body(
                    ErrorInfo(
                        "RequestError",
                        f"request body of {length} bytes exceeds the {limit}-byte limit",
                    )
                ),
            )
            return None
        return self.rfile.read(length) if length else b""

    @staticmethod
    def _ticket_body(ticket: "ResponseHandle | _Reservation") -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "request_id": ticket.request_id,
            "kind": ticket.kind,
            "status": "pending",
            "poll": f"/v1/requests/{ticket.request_id}",
        }

    @staticmethod
    def _error_body(error: ErrorInfo, kind: str | None = None) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "status": "error",
            "kind": kind,
            "error": error.to_dict(),
        }

    def _send_json(self, status: int, body: dict, headers: dict | None = None) -> None:
        encoded = json.dumps(body, sort_keys=True).encode("utf-8")
        if status >= 400:
            self.app._count_error()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(encoded)


class FaultInjectionServer:
    """The HTTP/JSON front-end over one shared fault-injection engine.

    The server either owns a fresh engine built from ``config`` or borrows
    an existing one (``engine=...``) — borrowed engines are *not* closed on
    shutdown, so several front-ends (or in-process callers) can share one
    stack.  ``server_config`` defaults to ``config.server``.

    Use as a context manager, or pair :meth:`start` with :meth:`close`::

        with FaultInjectionServer(server_config=ServerConfig(port=0)) as server:
            print(server.url)  # port 0 picks an ephemeral port
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        engine: FaultInjectionEngine | None = None,
        server_config: ServerConfig | None = None,
    ) -> None:
        """Bind the listening socket (serving starts with :meth:`start`).

        Args:
            config: Pipeline configuration for an owned engine; ignored when
                ``engine`` is passed (its config wins).
            engine: An existing engine to serve; stays open after shutdown.
            server_config: Host/port and serving limits; defaults to the
                effective pipeline config's ``server`` section.
        """
        self.config = engine.config if engine is not None else (config or PipelineConfig())
        self.server_config = server_config or self.config.server
        self.sharded = self.server_config.shards > 1
        if self.sharded and engine is not None:
            raise ConfigurationError(
                "a borrowed engine cannot be served sharded; shards own their engines"
            )
        self._shards: ShardManager | None = None
        self._owns_engine = engine is None and not self.sharded
        #: ``None`` in the sharded topology — engines live in shard workers.
        self.engine = (
            None if self.sharded else (engine or FaultInjectionEngine(self.config))
        )
        self._tickets = _TicketStore(self.server_config.request_retention)
        self._routes: "OrderedDict[str, int]" = OrderedDict()
        self._route_lock = threading.Lock()
        self._route_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._inflight = 0
        self._idle = threading.Condition(self._lock)
        self._draining = False
        self._closed = False
        self._requests_total = 0
        self._http_errors_total = 0
        self._thread: threading.Thread | None = None
        self._httpd = _EngineHTTPServer(
            (self.server_config.host, self.server_config.port), _Handler
        )
        self._httpd.app = self
        if self.sharded:
            try:
                self._shards = ShardManager(self.config, self.server_config).start()
            except BaseException:
                self._httpd.server_close()
                raise

    # -- addresses ---------------------------------------------------------------

    @property
    def host(self) -> str:
        """The bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when configured with port 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the serving endpoint."""
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "FaultInjectionServer":
        """Serve in a background thread and return immediately."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-http", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or interrupt)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Gracefully drain and shut down.

        The sequence: stop accepting connections, let in-flight HTTP
        exchanges finish (bounded by ``drain_timeout_seconds``), resolve
        queued async tickets, and — for owned engines — close the shared
        engine stack (its own close is graceful too).  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._draining = True
        self._httpd.shutdown()
        self._httpd.server_close()
        deadline = time.monotonic() + self.server_config.drain_timeout_seconds
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(remaining)
        if self._shards is not None:
            # Drain fan-out: every shard worker gets SIGINT concurrently and
            # runs its own graceful drain before the router gives up on it.
            self._shards.close()
        elif self._owns_engine:
            # Graceful: queued tickets (async submissions included) resolve
            # before the scheduler thread and worker pools go away.
            self.engine.close()
        else:
            for handle in self._tickets.pending_handles():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    handle.result(timeout=remaining)
                except Exception:  # pragma: no cover - drain is best-effort
                    break

    def __enter__(self) -> "FaultInjectionServer":
        return self.start()

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- observability -----------------------------------------------------------

    def health(self) -> dict:
        """The ``GET /healthz`` body: liveness plus routing signals.

        Beyond bare liveness, a front-end or load balancer gets what it needs
        to route around a saturated shard: the scheduler's current
        ``queue_depth``, whether this server is ``draining`` (graceful
        shutdown in progress), and how many circuit breakers are currently
        ``open`` (execution planes failing fast).  In the sharded topology
        the gauges aggregate across every shard — ``open_breakers`` is the
        fleet-wide sum, not one engine's — and the body additionally carries
        ``shards``/``degraded_shards`` (a shard mid-respawn is degraded);
        ``status`` turns ``"degraded"`` while any shard is unreachable.
        """
        with self._lock:
            draining = self._draining
        if self._shards is not None:
            shard_health = self._shards.health()
            alive = [body for body in shard_health if body is not None]
            degraded = len(shard_health) - len(alive)
            return {
                "status": "ok" if degraded == 0 else "degraded",
                "schema_version": SCHEMA_VERSION,
                "queue_depth": sum(int(body.get("queue_depth", 0)) for body in alive),
                "draining": draining,
                "open_breakers": sum(int(body.get("open_breakers", 0)) for body in alive),
                "shards": self.server_config.shards,
                "degraded_shards": degraded,
            }
        return {
            "status": "ok",
            "schema_version": SCHEMA_VERSION,
            "queue_depth": self.engine.queue_depth,
            "draining": draining,
            "open_breakers": self.engine.open_breakers(),
        }

    def stats_snapshot(self) -> StatsSnapshot:
        """The typed ``GET /v1/stats`` body (see :class:`~repro.api.StatsSnapshot`).

        Single-engine topology: front-end counters plus the engine's
        scheduler/execution/cache sections.  Sharded topology: per-shard
        sections (each embedding that shard's own snapshot) plus the
        monotonic cross-shard ``aggregate``.
        """
        with self._lock:
            server = {
                "requests_total": self._requests_total,
                "http_errors_total": self._http_errors_total,
                "inflight": self._inflight,
                "draining": self._draining,
            }
        if self._shards is not None:
            with self._route_lock:
                server["tickets"] = {"routed": len(self._routes)}
            infos = self._shards.shard_infos(self._shards.snapshots())
            return StatsSnapshot(
                server=server,
                shards=infos,
                aggregate=self._shards.aggregate(infos),
            )
        server["tickets"] = self._tickets.counts()
        return StatsSnapshot(
            server=server,
            scheduler=self.engine.serving_stats(),
            execution=self.engine.execution_snapshot(),
            caches=self.engine.cache_stats(),
        )

    def stats(self) -> dict:
        """Serving counters, scheduler behaviour, and cache hit rates."""
        return self.stats_snapshot().to_dict()

    # -- sharded routing bookkeeping ---------------------------------------------

    def _next_routed_id(self) -> str:
        """A router-unique id for async submissions that did not bring one.

        Engine-assigned ids (``req-NNNNNN``) are only unique within one
        shard process, so the router must mint the id before the submission
        leaves for a shard.
        """
        return f"req-r{next(self._route_ids):06d}"

    def _remember_route(self, request_id: str, index: int) -> None:
        """Map an accepted async ticket to its owning shard (bounded).

        Retention mirrors the single-engine ticket store: the map is bounded
        at ``request_retention`` entries per shard; evicted ids fall back to
        the poll fan-out (the owning shard still holds the ticket).
        """
        bound = max(1, self.server_config.request_retention) * self.server_config.shards
        with self._route_lock:
            self._routes[request_id] = index
            self._routes.move_to_end(request_id)
            while len(self._routes) > bound:
                self._routes.popitem(last=False)

    def _route_for(self, request_id: str) -> int | None:
        with self._route_lock:
            return self._routes.get(request_id)

    def _forget_route(self, request_id: str) -> None:
        with self._route_lock:
            self._routes.pop(request_id, None)

    # -- handler hooks -----------------------------------------------------------

    def _track(self) -> "_ExchangeTracker":
        """Context manager accounting one HTTP exchange (False while draining)."""
        return _ExchangeTracker(self)

    def _count_error(self) -> None:
        with self._lock:
            self._http_errors_total += 1

    def _admit(self) -> None:
        """Load shedding: reject new submissions while the queue is saturated.

        Raises:
            AdmissionError: When the scheduler's queue depth has reached
                ``ServerConfig.max_queue_depth`` (the handler maps it to
                HTTP 429 with a ``Retry-After`` header).  A limit of 0
                disables shedding.
        """
        limit = self.server_config.max_queue_depth
        if limit <= 0:
            return
        depth = self.engine.queue_depth
        if depth >= limit:
            raise AdmissionError(
                f"scheduler queue depth {depth} is at capacity ({limit}); "
                "retry after the queue drains"
            )

    def _retry_after_headers(self) -> dict:
        """The ``Retry-After`` header attached to 429/503 responses."""
        return {"Retry-After": str(max(1, round(self.server_config.retry_after_seconds)))}


class _ExchangeTracker:
    """Accounts one HTTP exchange against the server's in-flight counter.

    ``__enter__`` returns ``False`` (without counting) while the server is
    draining, which the handler turns into a 503.
    """

    __slots__ = ("_server", "_accepted")

    def __init__(self, server: FaultInjectionServer) -> None:
        self._server = server
        self._accepted = False

    def __enter__(self) -> bool:
        with self._server._lock:
            if self._server._draining:
                return False
            self._accepted = True
            self._server._inflight += 1
            self._server._requests_total += 1
            return True

    def __exit__(self, *_exc_info) -> None:
        if self._accepted:
            with self._server._idle:
                self._server._inflight -= 1
                self._server._idle.notify_all()


def serve(
    config: PipelineConfig | None = None,
    server_config: ServerConfig | None = None,
) -> FaultInjectionServer:
    """Build and start a server in one call (the embedding-friendly helper).

    Args:
        config: Pipeline configuration for the owned engine.
        server_config: Overrides ``config.server`` (e.g. ``port=0`` in tests).

    Returns:
        The started server; call :meth:`FaultInjectionServer.close` (or use
        it as a context manager) to drain and shut down.
    """
    return FaultInjectionServer(config=config, server_config=server_config).start()
