"""Core datatypes shared across every subsystem.

The pipeline of the paper (Fig. 1) passes a small number of artefacts between
stages:

* the tester's *fault definition* — natural language plus target code
  (:class:`FaultDescription`, :class:`CodeContext`);
* the structured *fault specification* produced by the NLP engine
  (:class:`FaultSpec`, :class:`Entity`, :class:`TriggerSpec`);
* the *generated fault* produced by the LLM (:class:`GeneratedFault`,
  :class:`Patch`);
* tester *feedback* consumed by the RLHF mechanism (:class:`Feedback`);
* the *injection outcome* observed by the automated integration and testing
  tool (:class:`InjectionOutcome`, :class:`FailureMode`).

Keeping these in one module avoids circular imports between subsystems and
gives downstream users a single, documented vocabulary.
"""

from __future__ import annotations

import difflib
import hashlib
import json
from dataclasses import dataclass, field, asdict
from enum import Enum
from typing import Any, Mapping, Sequence


class FaultType(str, Enum):
    """Taxonomy of software fault types the system can describe and inject.

    The taxonomy merges the fault classes named in the paper (race conditions,
    memory leaks, buffer overflow analogues, logic errors, timeouts) with the
    classic G-SWFIT / ODC operator families used by programmable SFI tools.
    """

    EXCEPTION = "exception"
    TIMEOUT = "timeout"
    DELAY = "delay"
    RACE_CONDITION = "race_condition"
    DEADLOCK = "deadlock"
    MEMORY_LEAK = "memory_leak"
    RESOURCE_LEAK = "resource_leak"
    OFF_BY_ONE = "off_by_one"
    WRONG_VALUE = "wrong_value"
    WRONG_CONDITION = "wrong_condition"
    MISSING_CALL = "missing_call"
    MISSING_CHECK = "missing_check"
    MISSING_RETURN = "missing_return"
    WRONG_RETURN = "wrong_return"
    SWALLOWED_EXCEPTION = "swallowed_exception"
    INFINITE_LOOP = "infinite_loop"
    DATA_CORRUPTION = "data_corruption"
    NETWORK_FAILURE = "network_failure"
    DISK_FAILURE = "disk_failure"
    UNKNOWN = "unknown"

    @classmethod
    def concrete(cls) -> list["FaultType"]:
        """All fault types except the UNKNOWN placeholder."""
        return [member for member in cls if member is not cls.UNKNOWN]


class FailureMode(str, Enum):
    """Observed system-level failure mode after activating an injected fault."""

    NO_FAILURE = "no_failure"
    CRASH = "crash"
    HANG = "hang"
    SILENT_DATA_CORRUPTION = "silent_data_corruption"
    ERROR_DETECTED = "error_detected"
    DEGRADED = "degraded"

    @property
    def is_failure(self) -> bool:
        """Whether the mode represents an externally visible failure."""
        return self is not FailureMode.NO_FAILURE


class TriggerKind(str, Enum):
    """When an injected fault activates."""

    ALWAYS = "always"
    CONDITIONAL = "conditional"
    PROBABILISTIC = "probabilistic"
    ON_NTH_CALL = "on_nth_call"


class HandlingStyle(str, Enum):
    """How the generated fault interacts with error handling, per feedback."""

    UNHANDLED = "unhandled"
    LOGGED_ONLY = "logged_only"
    RETRY = "retry"
    RERAISE = "reraise"
    FALLBACK = "fallback"


class PlacementStyle(str, Enum):
    """Where in the target function the fault is placed."""

    BODY_START = "body_start"
    BEFORE_RETURN = "before_return"
    WRAP_BODY = "wrap_body"
    INSIDE_LOOP = "inside_loop"


class EntityLabel(str, Enum):
    """Named-entity labels used by the fault-domain NER."""

    FAULT_KEYWORD = "fault_keyword"
    COMPONENT = "component"
    FUNCTION = "function"
    RESOURCE = "resource"
    CONDITION = "condition"
    ACTION = "action"
    QUANTITY = "quantity"
    EXCEPTION_NAME = "exception_name"


@dataclass(frozen=True)
class Entity:
    """A named entity recognised in the tester's natural-language description."""

    text: str
    label: EntityLabel
    start: int
    end: int

    def to_dict(self) -> dict[str, Any]:
        return {"text": self.text, "label": self.label.value, "start": self.start, "end": self.end}


@dataclass(frozen=True)
class TriggerSpec:
    """Activation condition of a fault.

    ``condition`` holds the raw condition text for CONDITIONAL triggers,
    ``probability`` the activation probability for PROBABILISTIC triggers and
    ``nth_call`` the 1-based call index for ON_NTH_CALL triggers.
    """

    kind: TriggerKind = TriggerKind.ALWAYS
    condition: str | None = None
    probability: float | None = None
    nth_call: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind.value,
            "condition": self.condition,
            "probability": self.probability,
            "nth_call": self.nth_call,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TriggerSpec":
        return cls(
            kind=TriggerKind(data.get("kind", TriggerKind.ALWAYS.value)),
            condition=data.get("condition"),
            probability=data.get("probability"),
            nth_call=data.get("nth_call"),
        )


@dataclass(frozen=True)
class TargetLocation:
    """Where in the codebase the fault should be introduced."""

    module: str | None = None
    function: str | None = None
    class_name: str | None = None
    line: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "function": self.function,
            "class_name": self.class_name,
            "line": self.line,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TargetLocation":
        return cls(
            module=data.get("module"),
            function=data.get("function"),
            class_name=data.get("class_name"),
            line=data.get("line"),
        )


@dataclass
class FaultDescription:
    """The tester's raw fault definition: natural language plus optional code."""

    text: str
    code: str | None = None
    source_path: str | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "text": self.text,
            "code": self.code,
            "source_path": self.source_path,
            "metadata": dict(self.metadata),
        }


@dataclass
class FunctionInfo:
    """Summary of a function discovered by the code analyser."""

    name: str
    lineno: int
    end_lineno: int
    args: list[str] = field(default_factory=list)
    calls: list[str] = field(default_factory=list)
    raises: list[str] = field(default_factory=list)
    has_try: bool = False
    has_loop: bool = False
    has_return: bool = False
    docstring: str | None = None
    class_name: str | None = None

    @property
    def qualified_name(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class CodeContext:
    """Analysed view of the target code supplied alongside the NL description."""

    source: str
    path: str | None = None
    module_name: str | None = None
    functions: list[FunctionInfo] = field(default_factory=list)
    imports: list[str] = field(default_factory=list)
    selected_function: str | None = None

    def function(self, name: str) -> FunctionInfo | None:
        """Return the function matching ``name`` (bare or qualified), if any."""
        for info in self.functions:
            if info.name == name or info.qualified_name == name:
                return info
        return None

    @property
    def selected(self) -> FunctionInfo | None:
        if self.selected_function is None:
            return None
        return self.function(self.selected_function)

    def to_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "path": self.path,
            "module_name": self.module_name,
            "functions": [f.to_dict() for f in self.functions],
            "imports": list(self.imports),
            "selected_function": self.selected_function,
        }


@dataclass
class FaultSpec:
    """Structured fault specification produced by the NLP engine.

    This is the "detailed fault specification" of Section III: the dissected
    and restructured form of the tester's description that the generation model
    consumes.
    """

    fault_type: FaultType = FaultType.UNKNOWN
    target: TargetLocation = field(default_factory=TargetLocation)
    trigger: TriggerSpec = field(default_factory=TriggerSpec)
    handling: HandlingStyle = HandlingStyle.UNHANDLED
    entities: list[Entity] = field(default_factory=list)
    parameters: dict[str, Any] = field(default_factory=dict)
    directives: dict[str, Any] = field(default_factory=dict)
    description: str = ""
    confidence: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "fault_type": self.fault_type.value,
            "target": self.target.to_dict(),
            "trigger": self.trigger.to_dict(),
            "handling": self.handling.value,
            "entities": [e.to_dict() for e in self.entities],
            "parameters": dict(self.parameters),
            "directives": dict(self.directives),
            "description": self.description,
            "confidence": self.confidence,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        entities = [
            Entity(
                text=e["text"],
                label=EntityLabel(e["label"]),
                start=int(e["start"]),
                end=int(e["end"]),
            )
            for e in data.get("entities", [])
        ]
        return cls(
            fault_type=FaultType(data.get("fault_type", FaultType.UNKNOWN.value)),
            target=TargetLocation.from_dict(data.get("target", {})),
            trigger=TriggerSpec.from_dict(data.get("trigger", {})),
            handling=HandlingStyle(data.get("handling", HandlingStyle.UNHANDLED.value)),
            entities=entities,
            parameters=dict(data.get("parameters", {})),
            directives=dict(data.get("directives", {})),
            description=data.get("description", ""),
            confidence=float(data.get("confidence", 0.0)),
        )


@dataclass
class Patch:
    """A source-level change produced by integrating a generated fault."""

    original: str
    mutated: str
    target_path: str | None = None
    function: str | None = None
    lineno: int | None = None
    operator: str | None = None

    @property
    def diff(self) -> str:
        """Unified diff between the original and mutated source."""
        original_name = self.target_path or "original"
        return "".join(
            difflib.unified_diff(
                self.original.splitlines(keepends=True),
                self.mutated.splitlines(keepends=True),
                fromfile=original_name,
                tofile=f"{original_name} (faulty)",
            )
        )

    @property
    def changed_line_count(self) -> int:
        """Number of added or removed lines in the diff."""
        count = 0
        for line in self.diff.splitlines():
            if line.startswith(("+", "-")) and not line.startswith(("+++", "---")):
                count += 1
        return count

    def to_dict(self) -> dict[str, Any]:
        return {
            "original": self.original,
            "mutated": self.mutated,
            "target_path": self.target_path,
            "function": self.function,
            "lineno": self.lineno,
            "operator": self.operator,
        }


@dataclass
class GeneratedFault:
    """A faulty code snippet produced by the generation model."""

    fault_id: str
    spec: FaultSpec
    code: str
    patch: Patch | None = None
    actions: dict[str, str] = field(default_factory=dict)
    logprob: float = 0.0
    iteration: int = 0
    model_version: str = "untrained"
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def is_integrated(self) -> bool:
        """Whether the fault has already been rendered into a concrete patch."""
        return self.patch is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "fault_id": self.fault_id,
            "spec": self.spec.to_dict(),
            "code": self.code,
            "patch": self.patch.to_dict() if self.patch else None,
            "actions": dict(self.actions),
            "logprob": self.logprob,
            "iteration": self.iteration,
            "model_version": self.model_version,
            "metadata": dict(self.metadata),
        }


@dataclass
class Feedback:
    """Tester feedback on a generated fault, as consumed by the RLHF loop."""

    fault_id: str
    rating: float
    critique: str = ""
    directives: dict[str, Any] = field(default_factory=dict)
    accept: bool = False
    preferred_over: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "fault_id": self.fault_id,
            "rating": self.rating,
            "critique": self.critique,
            "directives": dict(self.directives),
            "accept": self.accept,
            "preferred_over": self.preferred_over,
        }


@dataclass
class InjectionOutcome:
    """Result of integrating a fault and running the target's test workload."""

    fault_id: str
    activated: bool
    failure_mode: FailureMode
    tests_run: int = 0
    tests_failed: int = 0
    duration_seconds: float = 0.0
    error_message: str | None = None
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def exposed_failure(self) -> bool:
        return self.failure_mode.is_failure

    def to_dict(self) -> dict[str, Any]:
        return {
            "fault_id": self.fault_id,
            "activated": self.activated,
            "failure_mode": self.failure_mode.value,
            "tests_run": self.tests_run,
            "tests_failed": self.tests_failed,
            "duration_seconds": self.duration_seconds,
            "error_message": self.error_message,
            "details": dict(self.details),
        }


def stable_fault_id(description: str, code: str | None, salt: str = "") -> str:
    """Derive a deterministic fault identifier from the tester's inputs.

    Deterministic ids make experiment runs reproducible and let feedback
    records reference candidates across process boundaries.
    """
    digest = hashlib.sha256()
    digest.update(description.encode("utf-8"))
    if code:
        digest.update(code.encode("utf-8"))
    if salt:
        digest.update(salt.encode("utf-8"))
    return "fault-" + digest.hexdigest()[:16]


def to_json(obj: Any) -> str:
    """Serialise any library dataclass (with ``to_dict``) to compact JSON."""
    if hasattr(obj, "to_dict"):
        obj = obj.to_dict()
    return json.dumps(obj, sort_keys=True)


def summarise_outcomes(outcomes: Sequence[InjectionOutcome]) -> dict[str, Any]:
    """Aggregate a list of injection outcomes into campaign-level statistics."""
    total = len(outcomes)
    by_mode: dict[str, int] = {mode.value: 0 for mode in FailureMode}
    activated = 0
    for outcome in outcomes:
        by_mode[outcome.failure_mode.value] += 1
        if outcome.activated:
            activated += 1
    failures = sum(1 for o in outcomes if o.exposed_failure)
    return {
        "total": total,
        "activated": activated,
        "activation_rate": activated / total if total else 0.0,
        "failures": failures,
        "failure_rate": failures / total if total else 0.0,
        "by_failure_mode": by_mode,
    }
