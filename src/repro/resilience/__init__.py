"""Resilience primitives: retries, circuit breakers, deadlines, self-chaos.

This package holds the mechanisms that keep campaigns running — and
reproducible — when the execution plane misbehaves:

* :class:`RetryPolicy` — exponential backoff whose jitter is a seeded hash,
  so retried campaigns keep byte-identical schedules;
* :class:`CircuitBreaker` / :class:`BreakerRegistry` — per ``(target, mode)``
  fail-fast protection for the sandbox planes;
* :class:`Deadline` — monotonic request budgets threaded from the API surface
  down to worker-pool task timeouts;
* :mod:`~repro.resilience.chaos` — deterministic self-chaos (worker crashes,
  task delays, dropped results) used by the differential chaos suite.

See docs/RESILIENCE.md for semantics and the chaos-testing guide.
"""

from ..config import ChaosConfig, ResilienceConfig
from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerRegistry, CircuitBreaker
from .chaos import apply_worker_chaos, chaos_payload, should_inject
from .deadline import Deadline
from .retry import RetryPolicy

__all__ = [
    "BreakerRegistry",
    "CLOSED",
    "ChaosConfig",
    "CircuitBreaker",
    "Deadline",
    "HALF_OPEN",
    "OPEN",
    "ResilienceConfig",
    "RetryPolicy",
    "apply_worker_chaos",
    "chaos_payload",
    "should_inject",
]
