"""Monotonic request deadlines.

A :class:`Deadline` is an absolute point on the monotonic clock derived from a
request's ``deadline_seconds`` budget.  It travels with the request through
the scheduler, engine stages, and worker-pool payloads so every layer can ask
the same two questions — *how much budget is left?* and *has it expired?* —
without re-deriving wall-clock arithmetic.
"""

from __future__ import annotations

import time
from typing import Callable

from ..errors import ConfigurationError, DeadlineExceededError


class Deadline:
    """An absolute monotonic expiry point with budget accounting.

    Instances are cheap, immutable in effect (the expiry never moves), and
    accept an injectable clock so tests can step time deterministically.
    """

    __slots__ = ("_expires_at", "_clock")

    def __init__(self, seconds: float, clock: Callable[[], float] = time.monotonic) -> None:
        """Start a deadline ``seconds`` from now.

        Args:
            seconds: Budget in seconds; must be positive.
            clock: Monotonic clock (tests inject a fake).

        Raises:
            ConfigurationError: If ``seconds`` is not positive.
        """
        if seconds <= 0:
            raise ConfigurationError("deadline seconds must be positive")
        self._clock = clock
        self._expires_at = clock() + float(seconds)

    @classmethod
    def from_seconds(
        cls, seconds: float | None, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline | None":
        """A :class:`Deadline` for ``seconds``, or ``None`` when unbounded."""
        if seconds is None:
            return None
        return cls(seconds, clock=clock)

    @property
    def expires_at(self) -> float:
        """The monotonic timestamp at which the budget runs out."""
        return self._expires_at

    def remaining(self) -> float:
        """Seconds of budget left; never negative."""
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        """Whether the budget has fully elapsed."""
        return self._clock() >= self._expires_at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the budget has elapsed."""
        if self.expired():
            raise DeadlineExceededError(f"deadline exceeded while processing {what}")

    def clamp(self, seconds: float | None) -> float:
        """Bound a layer's own timeout by the remaining request budget.

        Args:
            seconds: The layer's configured timeout, or ``None`` for
                "deadline only".

        Returns:
            ``min(seconds, remaining())`` — a per-stage timeout that can
            never outlive the request's overall budget.
        """
        remaining = self.remaining()
        if seconds is None:
            return remaining
        return min(float(seconds), remaining)
