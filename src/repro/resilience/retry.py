"""Deterministic retry with exponential backoff and seeded jitter.

Retries are a reproducibility hazard: classic random jitter means a retried
campaign sleeps differently — and therefore schedules differently — on every
run.  :class:`RetryPolicy` derives its jitter from a SHA-256 hash of
``(seed, key, attempt)``, so the delay for attempt *n* of task *k* is a pure
function of configuration.  Retried campaigns stay byte-for-byte
reproducible, and tests can assert exact backoff schedules.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Callable, Iterator

from ..config import ResilienceConfig
from ..errors import ConfigurationError
from .deadline import Deadline


def _unit_interval(seed: int, key: str, attempt: int) -> float:
    """A deterministic sample in ``[0, 1)`` from ``(seed, key, attempt)``."""
    digest = hashlib.sha256(f"{seed}:{key}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class RetryPolicy:
    """Exponential backoff with deterministically-seeded jitter.

    Attempt ``n`` (0-based) that fails waits
    ``min(base * 2**n, max_delay) * (1 + jitter * u(seed, key, n))`` before
    attempt ``n + 1``, where ``u`` is the seeded unit-interval hash — the same
    configuration always produces the same schedule for the same key.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_seconds: float = 0.02,
        max_delay_seconds: float = 1.0,
        jitter: float = 0.25,
        seed: int = 29,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """Configure the policy.

        Args:
            max_attempts: Total executions allowed (first try included).
            base_delay_seconds: Backoff before the first retry.
            max_delay_seconds: Cap on the un-jittered backoff.
            jitter: Fraction of the backoff added as seeded jitter, in
                ``[0, 1]``.
            seed: Seed of the deterministic jitter stream.
            sleep: Sleep function (tests inject a recorder).

        Raises:
            ConfigurationError: On non-positive attempts, negative delays,
                or jitter outside ``[0, 1]``.
        """
        if max_attempts <= 0:
            raise ConfigurationError("max_attempts must be positive")
        if base_delay_seconds < 0 or max_delay_seconds < 0:
            raise ConfigurationError("retry delays must be non-negative")
        if not (0.0 <= jitter <= 1.0):
            raise ConfigurationError("jitter must be in [0, 1]")
        self.max_attempts = int(max_attempts)
        self.base_delay_seconds = float(base_delay_seconds)
        self.max_delay_seconds = float(max_delay_seconds)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._sleep = sleep

    @classmethod
    def from_config(cls, config: ResilienceConfig, sleep: Callable[[float], None] = time.sleep) -> "RetryPolicy":
        """Build the policy described by a :class:`ResilienceConfig`."""
        return cls(
            max_attempts=config.retry_max_attempts,
            base_delay_seconds=config.retry_base_delay_seconds,
            max_delay_seconds=config.retry_max_delay_seconds,
            jitter=config.retry_jitter,
            seed=config.retry_seed,
            sleep=sleep,
        )

    def delay(self, attempt: int, key: str = "") -> float:
        """The deterministic backoff after failed attempt ``attempt`` (0-based)."""
        backoff = min(self.base_delay_seconds * (2.0 ** attempt), self.max_delay_seconds)
        return backoff * (1.0 + self.jitter * _unit_interval(self.seed, key, attempt))

    def schedule(self, key: str = "") -> list[float]:
        """Every backoff delay the policy would sleep for ``key``, in order."""
        return [self.delay(attempt, key) for attempt in range(self.max_attempts - 1)]

    def attempts(self, key: str = "") -> Iterator[int]:
        """Yield attempt numbers, sleeping the backoff between them.

        The caller breaks out of the loop on success; exhausting the
        iterator means every attempt was consumed.
        """
        for attempt in range(self.max_attempts):
            yield attempt
            if attempt < self.max_attempts - 1:
                self._sleep(self.delay(attempt, key))

    def run(
        self,
        fn: Callable[[], Any],
        key: str = "",
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        deadline: "Deadline | None" = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> Any:
        """Call ``fn`` with retries; re-raise the last error when exhausted.

        Args:
            fn: Zero-argument callable to execute.
            key: Jitter key (e.g. ``"bank:pool"``) so independent call sites
                draw independent — but still deterministic — schedules.
            retry_on: Exception types that trigger a retry; anything else
                propagates immediately.
            deadline: Optional request deadline; once expired, the last
                error is re-raised instead of sleeping into a budget the
                caller no longer has.
            on_retry: Observer called with ``(attempt, error)`` before each
                backoff sleep.

        Returns:
            ``fn()``'s result from the first successful attempt.
        """
        last_error: BaseException | None = None
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except retry_on as exc:
                last_error = exc
                if attempt == self.max_attempts - 1:
                    break
                if deadline is not None and deadline.expired():
                    break
                if on_retry is not None:
                    on_retry(attempt, exc)
                self._sleep(self.delay(attempt, key))
        assert last_error is not None
        raise last_error
