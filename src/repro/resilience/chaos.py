"""Deterministic self-chaos for the execution plane.

:class:`~repro.config.ChaosConfig` describes faults the library injects into
*itself*: sandbox workers that crash mid-task, tasks that stall, results that
vanish in flight.  The decisions are pure functions of
``(seed, task_key, fault_kind)`` — a SHA-256 hash, not a random stream — so a
chaos run is exactly reproducible, and they fire **only on a task's first
attempt**.  Supervision retries the disrupted task, the retry (attempt > 0)
runs clean, and the campaign terminates with byte-identical results to a
fault-free run.  That termination guarantee is what the differential chaos
suite asserts.

The helpers here operate on plain dicts because chaos travels to pool workers
inside pickled task payloads (see :func:`chaos_payload` /
:func:`apply_worker_chaos`).
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from typing import Mapping

from ..config import ChaosConfig

CRASH = "crash"
DELAY = "delay"
DROP = "drop"


def _unit_interval(seed: int, key: str, kind: str) -> float:
    """A deterministic sample in ``[0, 1)`` from ``(seed, key, kind)``."""
    digest = hashlib.sha256(f"{seed}:{key}:{kind}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def should_inject(config: ChaosConfig, key: str, kind: str, attempt: int) -> bool:
    """Whether fault ``kind`` fires for task ``key`` on this attempt.

    Faults only ever fire on ``attempt == 0`` so that supervised retries are
    guaranteed to converge — chaos perturbs the schedule, never the result.
    """
    if attempt != 0 or not config.enabled:
        return False
    probability = {
        CRASH: config.worker_crash_probability,
        DELAY: config.task_delay_probability,
        DROP: config.drop_result_probability,
    }[kind]
    if probability <= 0.0:
        return False
    return _unit_interval(config.seed, key, kind) < probability


def chaos_payload(config: ChaosConfig | None) -> dict | None:
    """The pickle-friendly form of ``config`` for worker task payloads."""
    if config is None or not config.any_faults():
        return None
    return config.to_dict()


def apply_worker_chaos(payload: Mapping | None, key: str, attempt: int) -> str | None:
    """Run inside a pool worker: act out any chaos scheduled for this task.

    Args:
        payload: The dict produced by :func:`chaos_payload` (or ``None``).
        key: Stable task identity (same key ⇒ same chaos decision).
        attempt: 0-based attempt number; chaos only fires on attempt 0.

    Returns:
        ``"drop"`` when the result should be silently discarded (the parent
        sees a vanished future and requeues), otherwise ``None``.  A
        scheduled crash does not return — the worker SIGKILLs itself.
    """
    if payload is None:
        return None
    config = ChaosConfig(**dict(payload))
    if should_inject(config, key, DELAY, attempt):
        time.sleep(config.task_delay_seconds)
    if should_inject(config, key, CRASH, attempt):
        os.kill(os.getpid(), signal.SIGKILL)
    if should_inject(config, key, DROP, attempt):
        return DROP
    return None
