"""Circuit breakers for the sandbox execution plane.

A :class:`CircuitBreaker` tracks consecutive failures of a protected
dependency and fails fast while it is misbehaving, instead of queueing more
work behind a wedged worker pool.  The classic three-state machine:

* **closed** — calls flow through; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures, calls are
  rejected immediately with :class:`CircuitOpenError` until
  ``recovery_seconds`` elapse.
* **half_open** — after the cool-down, up to ``half_open_calls`` probe calls
  are admitted; one success closes the breaker, one failure re-opens it.

Breakers are registered per ``(target, mode)`` pair in a
:class:`BreakerRegistry`, so a wedged subprocess plane for one target does
not shed traffic for a healthy in-process plane of another.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

from ..config import ResilienceConfig
from ..errors import CircuitOpenError, ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """A thread-safe closed/open/half-open circuit breaker."""

    def __init__(
        self,
        key: str = "",
        failure_threshold: int = 5,
        recovery_seconds: float = 5.0,
        half_open_calls: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Configure the breaker.

        Args:
            key: Label carried in errors and stats (e.g. ``"bank:pool"``).
            failure_threshold: Consecutive failures that trip the breaker.
            recovery_seconds: Cool-down before half-open probes are admitted.
            half_open_calls: Probe calls admitted while half-open.
            clock: Monotonic clock (tests inject a fake to step time).

        Raises:
            ConfigurationError: On non-positive thresholds or cool-down.
        """
        if failure_threshold <= 0:
            raise ConfigurationError("failure_threshold must be positive")
        if recovery_seconds <= 0:
            raise ConfigurationError("recovery_seconds must be positive")
        if half_open_calls <= 0:
            raise ConfigurationError("half_open_calls must be positive")
        self.key = key
        self.failure_threshold = int(failure_threshold)
        self.recovery_seconds = float(recovery_seconds)
        self.half_open_calls = int(half_open_calls)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_in_flight = 0
        self._trips = 0

    @classmethod
    def from_config(
        cls, config: ResilienceConfig, key: str = "", clock: Callable[[], float] = time.monotonic
    ) -> "CircuitBreaker":
        """Build the breaker described by a :class:`ResilienceConfig`."""
        return cls(
            key=key,
            failure_threshold=config.breaker_failure_threshold,
            recovery_seconds=config.breaker_recovery_seconds,
            half_open_calls=config.breaker_half_open_calls,
            clock=clock,
        )

    @property
    def state(self) -> str:
        """Current state, promoting open → half_open once cooled down."""
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # Caller holds the lock.
        if self._state == OPEN and self._clock() - self._opened_at >= self.recovery_seconds:
            self._state = HALF_OPEN
            self._half_open_in_flight = 0
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now (reserves a half-open probe)."""
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and self._half_open_in_flight < self.half_open_calls:
                self._half_open_in_flight += 1
                return True
            return False

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit breaker '{self.key}' is open; retry after "
                f"{self.recovery_seconds:g}s",
                key=self.key,
            )

    def record_success(self) -> None:
        """Note a successful call; closes the breaker from half-open."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._state = CLOSED
                self._half_open_in_flight = 0

    def record_failure(self) -> None:
        """Note a failed call; may trip the breaker (or re-open from probe)."""
        with self._lock:
            state = self._effective_state()
            self._consecutive_failures += 1
            if state == HALF_OPEN or self._consecutive_failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self._clock()
                self._half_open_in_flight = 0
                self._trips += 1

    def retry_after(self) -> float:
        """Seconds until the breaker would admit a probe; 0 when it already would."""
        with self._lock:
            if self._effective_state() != OPEN:
                return 0.0
            return max(0.0, self.recovery_seconds - (self._clock() - self._opened_at))

    def to_dict(self) -> dict:
        """A JSON-friendly snapshot for ``/v1/stats``."""
        with self._lock:
            return {
                "key": self.key,
                "state": self._effective_state(),
                "consecutive_failures": self._consecutive_failures,
                "trips": self._trips,
            }


class BreakerRegistry:
    """Lazily-created breakers keyed per ``(target, mode)`` execution plane."""

    def __init__(
        self, config: ResilienceConfig, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self._config = config
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def get(self, target: str, mode: str) -> CircuitBreaker:
        """The breaker for ``target``'s ``mode`` plane, created on first use."""
        key = f"{target}:{mode}"
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker.from_config(self._config, key=key, clock=self._clock)
                self._breakers[key] = breaker
            return breaker

    def to_dict(self) -> dict:
        """Snapshots of every breaker, keyed by ``target:mode``."""
        with self._lock:
            breakers = dict(self._breakers)
        return {key: breaker.to_dict() for key, breaker in sorted(breakers.items())}
