"""Natural-language description synthesis for injected faults.

Every injected fault must be paired with a description a tester *could have
written*; the synthesizer produces such descriptions with several phrasing
variants per fault type, so the fine-tuned model sees linguistic diversity
rather than one canned sentence per operator.
"""

from __future__ import annotations

from ..injection.operators import AppliedFault
from ..rng import SeededRNG
from ..types import FaultType

#: Phrasing templates per fault type.  ``{function}`` is the injection target,
#: ``{detail}`` is the operator-specific detail (condition text, call name, ...).
_TEMPLATES: dict[FaultType, tuple[str, ...]] = {
    FaultType.EXCEPTION: (
        "Simulate a scenario where the {function} function fails with an unhandled exception.",
        "Make {function} raise an unexpected error while processing a request.",
        "Introduce a crash in the {function} function caused by an uncaught exception.",
    ),
    FaultType.TIMEOUT: (
        "Simulate a scenario where an operation in {function} fails due to a timeout, causing an unhandled exception.",
        "Make the {function} function time out as if its backend dependency never responded.",
        "Introduce a deadline exceeded failure inside {function}.",
    ),
    FaultType.DELAY: (
        "Add a large delay to the {function} function to simulate a slow dependency.",
        "Introduce a latency spike in {function} so responses become very slow.",
        "Make {function} respond slowly, as if the downstream service is overloaded.",
    ),
    FaultType.RACE_CONDITION: (
        "Introduce a race condition in the {function} function when it is called concurrently.",
        "Remove the synchronisation protecting the critical section of {function} so concurrent updates interleave.",
        "Create a data race in {function} by making its update sequence non-atomic.",
    ),
    FaultType.DEADLOCK: (
        "Introduce a deadlock in the {function} function so that it blocks forever.",
        "Make {function} acquire a lock it never releases, hanging every later caller.",
    ),
    FaultType.MEMORY_LEAK: (
        "Introduce a memory leak in the {function} function so that memory usage grows on every call.",
        "Make {function} accumulate data that is never released, leaking memory over time.",
    ),
    FaultType.RESOURCE_LEAK: (
        "Introduce a resource leak in {function} by never calling {detail}.",
        "Make the {function} function forget to release its resources after use.",
        "Leave connections opened by {function} unreleased, leaking handles.",
    ),
    FaultType.OFF_BY_ONE: (
        "Introduce an off-by-one error in the loop bounds of {function}.",
        "Make the {function} function skip the last element it should process.",
        "Introduce a boundary error in {function} so one extra or one missing iteration occurs.",
    ),
    FaultType.WRONG_VALUE: (
        "Make the {function} function use a wrong value for {detail}.",
        "Introduce a logic error in {function} where an incorrect constant is used.",
    ),
    FaultType.WRONG_CONDITION: (
        "Negate the condition '{detail}' in the {function} function so the wrong branch is taken.",
        "Introduce a wrong condition in {function} that inverts its control flow.",
    ),
    FaultType.MISSING_CHECK: (
        "Remove the validation check '{detail}' from the {function} function so invalid input is accepted.",
        "Make {function} skip its input validation entirely.",
    ),
    FaultType.MISSING_CALL: (
        "Make the {function} function forget to call {detail}.",
        "Omit the call to {detail} inside {function}, as if the developer forgot it.",
    ),
    FaultType.MISSING_RETURN: (
        "Remove the return statement from {function} so it silently returns None.",
        "Make {function} forget to return its result.",
    ),
    FaultType.WRONG_RETURN: (
        "Make the {function} function return a wrong value instead of '{detail}'.",
        "Introduce a fault where {function} returns an incorrect result.",
    ),
    FaultType.SWALLOWED_EXCEPTION: (
        "Make the {function} function silently swallow errors instead of handling them.",
        "Introduce a fault in {function} where exceptions are caught and ignored.",
    ),
    FaultType.INFINITE_LOOP: (
        "Make a loop in the {function} function spin forever, causing the operation to hang.",
        "Introduce an infinite loop in {function} that never terminates.",
    ),
    FaultType.DATA_CORRUPTION: (
        "Silently corrupt the data computed by the {function} function without raising any error.",
        "Introduce silent data corruption in {function} so results are wrong but no error is reported.",
    ),
    FaultType.NETWORK_FAILURE: (
        "Simulate a network outage affecting the call to {detail} in the {function} function.",
        "Make the network dependency used by {function} unreachable, raising a connection error.",
    ),
    FaultType.DISK_FAILURE: (
        "Simulate a disk failure affecting the call to {detail} in the {function} function.",
        "Make the storage used by {function} fail with an I/O error.",
    ),
}

_FALLBACK = (
    "Introduce a {fault_type} fault in the {function} function.",
    "Simulate a {fault_type} failure inside {function}.",
)


class DescriptionSynthesizer:
    """Produces varied natural-language descriptions for injected faults."""

    def __init__(self, rng: SeededRNG | None = None) -> None:
        self._rng = rng or SeededRNG(41, namespace="describe")

    def describe(self, applied: AppliedFault, variant: int | None = None) -> str:
        """A tester-style description of ``applied``.

        With ``variant=None`` a phrasing is chosen pseudo-randomly; passing an
        explicit variant index makes the choice deterministic (useful when the
        same fault must be described identically across runs).
        """
        templates = _TEMPLATES.get(applied.fault_type, _FALLBACK)
        if variant is None:
            template = self._rng.choice(list(templates))
        else:
            template = templates[variant % len(templates)]
        detail = applied.point.detail or applied.operator.replace("_", " ")
        return template.format(
            function=applied.point.qualified_function,
            detail=detail,
            fault_type=applied.fault_type.value.replace("_", " "),
        )

    def tool_description(self, applied: AppliedFault) -> str:
        """The operator's own canonical description (always available)."""
        return applied.description

    def variants(self, applied: AppliedFault) -> list[str]:
        """Every phrasing variant for ``applied`` (for data-augmentation tests)."""
        templates = _TEMPLATES.get(applied.fault_type, _FALLBACK)
        detail = applied.point.detail or applied.operator.replace("_", " ")
        return [
            template.format(
                function=applied.point.qualified_function,
                detail=detail,
                fault_type=applied.fault_type.value.replace("_", " "),
            )
            for template in templates
        ]
