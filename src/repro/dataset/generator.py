"""Dataset generation from the programmable SFI tool (Section IV-1).

The generator sweeps the injection operators over the target systems,
documents each injected fault as a :class:`FaultRecord` (description, original
code, faulty code, decisions), and converts records into the
(:class:`GenerationPrompt`, :class:`DecisionVector`) pairs that supervised
fine-tuning consumes.  "The ability of the SFI tool to generate this data
on-demand eliminates the traditional bottleneck of data scarcity" — this module
is that on-demand path.

Generation is batch-structured: all :class:`AppliedFault` candidates for a
target are built up front (pure AST work), then — when
``DatasetConfig.validate_candidates`` is set — executed against the target as
one pooled sandbox batch through the shared
:class:`~repro.integration.runner.SandboxRunner`, so mega-datasets pay the
interpreter/import cost once per worker instead of once per fault.  Candidate
construction and record synthesis draw from keyed RNG forks, so the pooled and
serial execution paths emit byte-identical records for the same seed (the
``bench_dataset_gen`` benchmark asserts exactly this).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..config import DatasetConfig, ExecutionConfig, IntegrationConfig, ResilienceConfig
from ..errors import DatasetError
from ..injection import ProgrammableInjector, ast_utils
from ..injection.operators import AppliedFault
from ..llm.decisions import DecisionVector, reference_decisions
from ..llm.sft import SFTExample
from ..nlp import CodeAnalyzer, FaultSpecExtractor, PromptBuilder
from ..rng import SeededRNG
from ..targets import TargetSystem, all_targets
from ..types import FaultDescription
from .describe import DescriptionSynthesizer
from .records import FaultDataset, FaultRecord


@dataclass
class GenerationStats:
    """Bookkeeping of one dataset-generation sweep.

    ``batches`` records one entry per validated target batch (candidate count,
    kept/discarded split, execution mode), so large sweeps can be audited
    batch by batch after the fact.
    """

    scanned_points: int = 0
    applied: int = 0
    skipped: int = 0
    validated: int = 0
    discarded: int = 0
    per_target: dict[str, int] = dataclasses.field(default_factory=dict)
    batches: list[dict] = dataclasses.field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "scanned_points": self.scanned_points,
            "applied": self.applied,
            "skipped": self.skipped,
            "validated": self.validated,
            "discarded": self.discarded,
            "per_target": dict(self.per_target),
            "batches": [dict(batch) for batch in self.batches],
        }


class DatasetGenerator:
    """Builds fine-tuning datasets by injecting faults into the target systems.

    The generator owns (or borrows) a :class:`SandboxRunner` for candidate
    validation; close it with :meth:`close` or use the generator as a context
    manager when ``validate_candidates`` is enabled with ``pool`` execution.
    """

    def __init__(
        self,
        config: DatasetConfig | None = None,
        injector: ProgrammableInjector | None = None,
        synthesizer: DescriptionSynthesizer | None = None,
        execution: ExecutionConfig | None = None,
        runner=None,
        extractor: FaultSpecExtractor | None = None,
        analyzer: CodeAnalyzer | None = None,
        prompts: PromptBuilder | None = None,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        """Initialise the generator.

        Args:
            config: Dataset parameters; defaults to :class:`DatasetConfig`.
            injector: Programmable injector override (tests use this).
            synthesizer: Description synthesizer override.
            execution: How validation batches are scheduled across workers;
                defaults to :class:`ExecutionConfig` (``inprocess`` mode).
            runner: A shared :class:`~repro.integration.runner.SandboxRunner`
                to validate candidates with; one is created lazily when
                validation is enabled and no runner is supplied.
            extractor: A shared NLP spec extractor — the engine passes its
                own so dataset sweeps warm (and profit from) the same
                description-hash cache serving traffic uses.
            analyzer: A shared code analyzer (same sharing rationale).
            resilience: Supervision/chaos behaviour of the lazily-created
                validation runner; defaults to
                :class:`~repro.config.ResilienceConfig`.
            prompts: A shared prompt builder (same sharing rationale).
        """
        self._config = config or DatasetConfig()
        self._rng = SeededRNG(self._config.seed, namespace="dataset")
        self._injector = injector or ProgrammableInjector(rng=self._rng.fork("injector"))
        self._synthesizer = synthesizer or DescriptionSynthesizer(self._rng.fork("describe"))
        self._extractor = extractor or FaultSpecExtractor()
        self._analyzer = analyzer or CodeAnalyzer()
        self._prompts = prompts or PromptBuilder()
        self._execution = execution or ExecutionConfig()
        self._resilience = resilience or ResilienceConfig()
        self._runner = runner
        self._owns_runner = False
        self.stats = GenerationStats()

    def pool_stats(self) -> dict[str, int] | None:
        """Supervision counters of the validation runner's pool (``None`` before use)."""
        stats = getattr(self._runner, "pool_stats", None)
        return stats() if callable(stats) else None

    def close(self) -> None:
        """Release the validation runner if this generator created it (idempotent)."""
        runner, self._runner = self._runner, None
        if runner is not None and self._owns_runner:
            runner.close()
        self._owns_runner = False

    def __enter__(self) -> "DatasetGenerator":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- record generation ---------------------------------------------------------

    def generate(self, targets: list[TargetSystem] | None = None) -> FaultDataset:
        """Generate a dataset across ``targets``.

        Args:
            targets: Target systems to sweep; defaults to every built-in
                target.  When ``validate_candidates`` is enabled, targets
                must be resolvable by name through the target registry
                (built-ins are; register custom targets in
                ``repro.targets.registry.TARGET_REGISTRY``), because sandbox
                workers look targets up by name.  Runtime-registered targets
                work with ``pool`` execution (workers are forked and inherit
                the registry) but not ``subprocess`` (fresh interpreters
                re-import ``repro``).

        Returns:
            A :class:`FaultDataset` of documented fault records, at most
            ``samples_per_target`` per target (fewer when validation drops
            unloadable candidates).

        Raises:
            DatasetError: If ``targets`` is an empty list, or if validation
                fails for *every* candidate of a target (a broken sandbox —
                typically an unresolvable target name — rather than faults
                doing their job).
        """
        targets = targets if targets is not None else all_targets()
        if not targets:
            raise DatasetError("at least one target system is required")
        dataset = FaultDataset(name="sfi-generated")
        for target in targets:
            added = self._generate_for_target(target, dataset.add, start_index=len(dataset))
            self.stats.per_target[target.name] = added
        return dataset

    def generate_to_jsonl(self, path, targets: list[TargetSystem] | None = None):
        """Stream a generated dataset straight to a JSONL file, batch by batch.

        Args:
            path: Destination JSONL file (parents are created).
            targets: Target systems to sweep; defaults to every built-in
                target, with the same registry caveats as :meth:`generate`.

        Returns:
            The :class:`~pathlib.Path` written.  ``stats`` carries the same
            per-target/batch bookkeeping as :meth:`generate`.

        Each target's record batch is written (and flushed) as soon as it is
        validated, so at most one target's candidates are ever held in
        memory — mega-dataset sweeps are bounded by ``samples_per_target``,
        not by the total record count.  For a given seed the file is
        byte-identical to ``save_jsonl(self.generate(targets), path)``.

        Raises:
            DatasetError: Under the same conditions as :meth:`generate`.
        """
        from .io import JsonlRecordWriter

        targets = targets if targets is not None else all_targets()
        if not targets:
            raise DatasetError("at least one target system is required")
        with JsonlRecordWriter(path) as writer:
            for target in targets:
                added = self._generate_for_target(
                    target, writer.write, start_index=writer.records_written
                )
                self.stats.per_target[target.name] = added
        return writer.path

    def _generate_for_target(self, target: TargetSystem, add, start_index: int) -> int:
        """Build, validate, and emit one target's batch of fault candidates.

        ``add`` receives each :class:`FaultRecord` in order; it either appends
        to an in-memory dataset or streams to disk.
        """
        source = target.build_source()
        candidates = self._candidates_for_target(source)
        if self._config.validate_candidates:
            candidates = self._validate_batch(target, candidates)
        for offset, applied in enumerate(candidates):
            record = self._record(target, source, applied, index=start_index + offset)
            add(record)
            self.stats.applied += 1
        return len(candidates)

    def _candidates_for_target(self, source: str) -> list[AppliedFault]:
        """Apply operators over the scanned injection points, up front.

        Candidate construction is pure AST work and draws only from keyed RNG
        forks, so building the whole batch before any execution happens
        produces exactly the faults the old apply-one/record-one loop did.
        """
        report = self._injector.locator.scan(source)
        self.stats.scanned_points += len(report)
        per_function_counts: dict[str, int] = {}
        candidates: list[AppliedFault] = []
        for point in self._rng.shuffle(report.points):
            if len(candidates) >= self._config.samples_per_target:
                break
            function_key = point.qualified_function
            if per_function_counts.get(function_key, 0) >= self._config.max_faults_per_function:
                continue
            try:
                applied = self._apply(source, point)
            except Exception:
                self.stats.skipped += 1
                continue
            candidates.append(applied)
            per_function_counts[function_key] = per_function_counts.get(function_key, 0) + 1
        return candidates

    def _validation_mode(self) -> str:
        """The sandbox mode validation batches actually run in.

        Validation executes *untrusted* mutants: any operator that touches
        loop control (not just the ones named ``infinite_loop``) can produce
        an unbounded loop, and in-process execution has no timeout.  An
        ``inprocess`` execution config is therefore promoted to
        ``subprocess``; ``pool`` and ``subprocess`` already enforce
        ``validation_timeout_seconds`` per candidate.
        """
        mode = self._execution.default_mode
        return "subprocess" if mode == "inprocess" else mode

    def _validate_batch(self, target: TargetSystem, candidates: list[AppliedFault]) -> list[AppliedFault]:
        """Execute one target's candidates as a single sandbox batch.

        A candidate is kept unless its mutated module failed to load (or the
        harness itself failed), which is deterministic across execution modes;
        workload crashes and timeouts are *faults doing their job* and stay in
        the dataset.
        """
        if not candidates:
            return []
        mode = self._validation_mode()
        observations = self._ensure_runner().run_batch(
            target.name,
            [candidate.patch.mutated for candidate in candidates],
            seed=self._config.seed,
            iterations=self._config.validation_iterations,
            mode=mode,
        )
        if len(observations) > 1 and all(
            observation.harness_error is not None for observation in observations
        ):
            # Individual harness errors are fault-induced and just discard the
            # candidate, but a whole (multi-candidate) batch failing means the
            # sandbox itself is broken — most commonly a runtime-registered
            # target that a fresh subprocess interpreter cannot resolve (pool
            # workers are forked and inherit the registry; subprocesses
            # re-import repro).
            raise DatasetError(
                f"validation of target {target.name!r} failed for every candidate "
                f"(first error: {observations[0].harness_error}); if this is a "
                "runtime-registered target, validate with pool mode or register "
                "it at import time"
            )
        kept = [
            candidate
            for candidate, observation in zip(candidates, observations)
            if self._is_loadable(observation)
        ]
        self.stats.validated += len(kept)
        self.stats.discarded += len(candidates) - len(kept)
        self.stats.batches.append(
            {
                "target": target.name,
                "candidates": len(candidates),
                "kept": len(kept),
                "discarded": len(candidates) - len(kept),
                "mode": mode,
            }
        )
        return kept

    @staticmethod
    def _is_loadable(observation) -> bool:
        """Whether the mutated module at least loaded inside the sandbox."""
        if observation.harness_error is not None:
            return False
        result = observation.result
        if result is not None and result.error_type == "LoadError":
            return False
        return True

    def _ensure_runner(self):
        """The shared sandbox runner, created lazily for validation."""
        if self._runner is None:
            from ..integration.runner import SandboxRunner

            self._runner = SandboxRunner(
                IntegrationConfig(
                    test_timeout_seconds=self._config.validation_timeout_seconds,
                    workload_iterations=self._config.validation_iterations,
                ),
                execution=self._execution,
                resilience=self._resilience,
            )
            self._owns_runner = True
        return self._runner

    def _apply(self, source: str, point) -> AppliedFault:
        from ..injection.operators import get_operator

        operator = get_operator(point.operator)
        return operator.apply(source, point, rng=self._rng.fork(f"apply:{point.operator}:{point.lineno}"))

    def _record(self, target: TargetSystem, source: str, applied: AppliedFault, index: int) -> FaultRecord:
        function_name = applied.point.qualified_function
        bare_name = applied.point.function
        try:
            original_code = ast_utils.function_source(source, bare_name)
            faulty_code = ast_utils.function_source(applied.patch.mutated, bare_name)
        except Exception:
            original_code = source
            faulty_code = applied.patch.mutated
        description = (
            self._synthesizer.describe(applied)
            if self._config.include_descriptions
            else applied.description
        )
        decisions = self._target_decisions(description, original_code, applied)
        return FaultRecord(
            record_id=f"{target.name}-{index:05d}",
            target=target.name,
            function=function_name,
            description=description,
            original_code=original_code,
            faulty_code=faulty_code,
            fault_type=applied.fault_type,
            operator=applied.operator,
            parameters=dict(applied.parameters),
            decisions=decisions.to_dict(),
            lineno=applied.point.lineno,
        )

    def _target_decisions(self, description: str, original_code: str, applied: AppliedFault) -> DecisionVector:
        """Supervision target: reference decisions with the ground-truth template."""
        spec = self._extractor.extract(FaultDescription(text=description, code=original_code))
        decisions = reference_decisions(spec).to_dict()
        decisions["template"] = applied.fault_type.value
        return DecisionVector.from_dict(decisions)

    # -- SFT adaptation --------------------------------------------------------------

    def to_sft_examples(self, dataset: FaultDataset) -> list[SFTExample]:
        """Convert fault records into supervised fine-tuning examples.

        The prompt side runs the full NLP engine on the synthesized description
        and the original code, exactly as a tester-authored request would, so
        fine-tuning sees the same representation inference does.
        """
        examples: list[SFTExample] = []
        for record in dataset:
            context = self._analyzer.analyze(record.original_code)
            description = FaultDescription(text=record.description, code=record.original_code)
            spec = self._extractor.extract(description, context=context)
            self._analyzer.select_function(context, record.description, hint=spec.target.function)
            prompt = self._prompts.build(spec, context)
            examples.append(SFTExample(prompt=prompt, target=DecisionVector.from_dict(record.decisions)))
        return examples
