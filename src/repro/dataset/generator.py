"""Dataset generation from the programmable SFI tool (Section IV-1).

The generator sweeps the injection operators over the target systems,
documents each injected fault as a :class:`FaultRecord` (description, original
code, faulty code, decisions), and converts records into the
(:class:`GenerationPrompt`, :class:`DecisionVector`) pairs that supervised
fine-tuning consumes.  "The ability of the SFI tool to generate this data
on-demand eliminates the traditional bottleneck of data scarcity" — this module
is that on-demand path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..config import DatasetConfig
from ..errors import DatasetError
from ..injection import ProgrammableInjector, ast_utils
from ..injection.operators import AppliedFault
from ..llm.decisions import DecisionVector, reference_decisions
from ..llm.sft import SFTExample
from ..nlp import CodeAnalyzer, FaultSpecExtractor, PromptBuilder
from ..rng import SeededRNG
from ..targets import TargetSystem, all_targets
from ..types import FaultDescription
from .describe import DescriptionSynthesizer
from .records import FaultDataset, FaultRecord


@dataclass
class GenerationStats:
    """Bookkeeping of one dataset-generation sweep."""

    scanned_points: int = 0
    applied: int = 0
    skipped: int = 0
    per_target: dict[str, int] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "scanned_points": self.scanned_points,
            "applied": self.applied,
            "skipped": self.skipped,
            "per_target": dict(self.per_target),
        }


class DatasetGenerator:
    """Builds fine-tuning datasets by injecting faults into the target systems."""

    def __init__(
        self,
        config: DatasetConfig | None = None,
        injector: ProgrammableInjector | None = None,
        synthesizer: DescriptionSynthesizer | None = None,
    ) -> None:
        self._config = config or DatasetConfig()
        self._rng = SeededRNG(self._config.seed, namespace="dataset")
        self._injector = injector or ProgrammableInjector(rng=self._rng.fork("injector"))
        self._synthesizer = synthesizer or DescriptionSynthesizer(self._rng.fork("describe"))
        self._extractor = FaultSpecExtractor()
        self._analyzer = CodeAnalyzer()
        self._prompts = PromptBuilder()
        self.stats = GenerationStats()

    # -- record generation ---------------------------------------------------------

    def generate(self, targets: list[TargetSystem] | None = None) -> FaultDataset:
        """Generate a dataset across ``targets`` (defaults to every built-in target)."""
        targets = targets if targets is not None else all_targets()
        if not targets:
            raise DatasetError("at least one target system is required")
        dataset = FaultDataset(name="sfi-generated")
        for target in targets:
            added = self._generate_for_target(target, dataset)
            self.stats.per_target[target.name] = added
        return dataset

    def _generate_for_target(self, target: TargetSystem, dataset: FaultDataset) -> int:
        source = target.build_source()
        report = self._injector.locator.scan(source)
        self.stats.scanned_points += len(report)
        per_function_counts: dict[str, int] = {}
        added = 0
        points = self._rng.shuffle(report.points)
        for point in points:
            if added >= self._config.samples_per_target:
                break
            function_key = point.qualified_function
            if per_function_counts.get(function_key, 0) >= self._config.max_faults_per_function:
                continue
            try:
                applied = self._apply(source, point)
            except Exception:
                self.stats.skipped += 1
                continue
            record = self._record(target, source, applied, index=len(dataset))
            dataset.add(record)
            per_function_counts[function_key] = per_function_counts.get(function_key, 0) + 1
            added += 1
            self.stats.applied += 1
        return added

    def _apply(self, source: str, point) -> AppliedFault:
        from ..injection.operators import get_operator

        operator = get_operator(point.operator)
        return operator.apply(source, point, rng=self._rng.fork(f"apply:{point.operator}:{point.lineno}"))

    def _record(self, target: TargetSystem, source: str, applied: AppliedFault, index: int) -> FaultRecord:
        function_name = applied.point.qualified_function
        bare_name = applied.point.function
        try:
            original_code = ast_utils.function_source(source, bare_name)
            faulty_code = ast_utils.function_source(applied.patch.mutated, bare_name)
        except Exception:
            original_code = source
            faulty_code = applied.patch.mutated
        description = (
            self._synthesizer.describe(applied)
            if self._config.include_descriptions
            else applied.description
        )
        decisions = self._target_decisions(description, original_code, applied)
        return FaultRecord(
            record_id=f"{target.name}-{index:05d}",
            target=target.name,
            function=function_name,
            description=description,
            original_code=original_code,
            faulty_code=faulty_code,
            fault_type=applied.fault_type,
            operator=applied.operator,
            parameters=dict(applied.parameters),
            decisions=decisions.to_dict(),
            lineno=applied.point.lineno,
        )

    def _target_decisions(self, description: str, original_code: str, applied: AppliedFault) -> DecisionVector:
        """Supervision target: reference decisions with the ground-truth template."""
        spec = self._extractor.extract(FaultDescription(text=description, code=original_code))
        decisions = reference_decisions(spec).to_dict()
        decisions["template"] = applied.fault_type.value
        return DecisionVector.from_dict(decisions)

    # -- SFT adaptation --------------------------------------------------------------

    def to_sft_examples(self, dataset: FaultDataset) -> list[SFTExample]:
        """Convert fault records into supervised fine-tuning examples.

        The prompt side runs the full NLP engine on the synthesized description
        and the original code, exactly as a tester-authored request would, so
        fine-tuning sees the same representation inference does.
        """
        examples: list[SFTExample] = []
        for record in dataset:
            context = self._analyzer.analyze(record.original_code)
            description = FaultDescription(text=record.description, code=record.original_code)
            spec = self._extractor.extract(description, context=context)
            self._analyzer.select_function(context, record.description, hint=spec.target.function)
            prompt = self._prompts.build(spec, context)
            examples.append(SFTExample(prompt=prompt, target=DecisionVector.from_dict(record.decisions)))
        return examples
