"""Dataset records: (description, original code, faulty code) training triples.

Section IV-1 of the paper proposes using a programmable SFI tool to build the
fine-tuning corpus: "systematically introduce faults into codebases and then
document both the fault conditions and the resultant code changes".  A
:class:`FaultRecord` is exactly one such documented fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..types import FaultType


@dataclass
class FaultRecord:
    """One documented fault: natural-language description plus code change."""

    record_id: str
    target: str
    function: str
    description: str
    original_code: str
    faulty_code: str
    fault_type: FaultType
    operator: str
    parameters: dict[str, Any] = field(default_factory=dict)
    decisions: dict[str, str] = field(default_factory=dict)
    lineno: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "record_id": self.record_id,
            "target": self.target,
            "function": self.function,
            "description": self.description,
            "original_code": self.original_code,
            "faulty_code": self.faulty_code,
            "fault_type": self.fault_type.value,
            "operator": self.operator,
            "parameters": dict(self.parameters),
            "decisions": dict(self.decisions),
            "lineno": self.lineno,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRecord":
        return cls(
            record_id=data["record_id"],
            target=data["target"],
            function=data["function"],
            description=data["description"],
            original_code=data["original_code"],
            faulty_code=data["faulty_code"],
            fault_type=FaultType(data["fault_type"]),
            operator=data["operator"],
            parameters=dict(data.get("parameters", {})),
            decisions=dict(data.get("decisions", {})),
            lineno=data.get("lineno"),
        )


@dataclass
class FaultDataset:
    """An ordered collection of fault records with summary helpers."""

    records: list[FaultRecord] = field(default_factory=list)
    name: str = "fault-dataset"

    def add(self, record: FaultRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> FaultRecord:
        return self.records[index]

    def fault_type_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.fault_type.value] = counts.get(record.fault_type.value, 0) + 1
        return counts

    def operator_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.operator] = counts.get(record.operator, 0) + 1
        return counts

    def targets(self) -> list[str]:
        seen: list[str] = []
        for record in self.records:
            if record.target not in seen:
                seen.append(record.target)
        return seen

    def filter(self, fault_type: FaultType | None = None, target: str | None = None) -> "FaultDataset":
        """A new dataset containing only matching records."""
        kept = [
            record
            for record in self.records
            if (fault_type is None or record.fault_type is fault_type)
            and (target is None or record.target == target)
        ]
        return FaultDataset(records=kept, name=self.name)

    def summary(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "records": len(self.records),
            "targets": self.targets(),
            "fault_types": self.fault_type_counts(),
            "operators": self.operator_counts(),
        }
