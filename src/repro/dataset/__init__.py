"""Dataset generation and management (the Section IV-1 data pipeline).

Components:

* :class:`FaultRecord` / :class:`FaultDataset` — documented fault triples;
* :class:`DescriptionSynthesizer` — tester-style NL descriptions of faults;
* :class:`DatasetGenerator` — sweeps the SFI tool over the targets (building
  each target's fault candidates up front and optionally validating them as
  one pooled sandbox batch) and adapts records into SFT examples; streams
  straight to disk via :meth:`DatasetGenerator.generate_to_jsonl`;
* :func:`split_dataset` — deterministic train/validation/test splits;
* :func:`save_jsonl` / :func:`load_jsonl` / :class:`JsonlRecordWriter` —
  persistence (whole-dataset and incremental).
"""

from .describe import DescriptionSynthesizer
from .generator import DatasetGenerator, GenerationStats
from .io import JsonlRecordWriter, load_jsonl, save_jsonl
from .records import FaultDataset, FaultRecord
from .splits import DatasetSplits, split_dataset

__all__ = [
    "DatasetGenerator",
    "DatasetSplits",
    "DescriptionSynthesizer",
    "FaultDataset",
    "FaultRecord",
    "GenerationStats",
    "JsonlRecordWriter",
    "load_jsonl",
    "save_jsonl",
    "split_dataset",
]
