"""Deterministic train / validation / test splitting of fault datasets."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DatasetError
from ..rng import SeededRNG
from .records import FaultDataset


@dataclass
class DatasetSplits:
    """The three standard splits of a fault dataset."""

    train: FaultDataset
    validation: FaultDataset
    test: FaultDataset

    def sizes(self) -> dict[str, int]:
        return {"train": len(self.train), "validation": len(self.validation), "test": len(self.test)}


def split_dataset(
    dataset: FaultDataset,
    train_fraction: float = 0.7,
    validation_fraction: float = 0.15,
    seed: int = 47,
) -> DatasetSplits:
    """Split ``dataset`` into train/validation/test partitions.

    The split is stratified only by shuffling with a fixed seed; fractions must
    leave a non-empty test partition when the dataset itself is non-empty.
    """
    if not (0.0 < train_fraction < 1.0):
        raise DatasetError("train_fraction must be in (0, 1)")
    if not (0.0 <= validation_fraction < 1.0):
        raise DatasetError("validation_fraction must be in [0, 1)")
    if train_fraction + validation_fraction >= 1.0:
        raise DatasetError("train and validation fractions must sum to less than 1")
    rng = SeededRNG(seed, namespace="splits")
    records = rng.shuffle(list(dataset.records))
    total = len(records)
    train_end = int(total * train_fraction)
    validation_end = train_end + int(total * validation_fraction)
    return DatasetSplits(
        train=FaultDataset(records=records[:train_end], name=f"{dataset.name}-train"),
        validation=FaultDataset(records=records[train_end:validation_end], name=f"{dataset.name}-validation"),
        test=FaultDataset(records=records[validation_end:], name=f"{dataset.name}-test"),
    )
