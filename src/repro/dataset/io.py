"""JSONL persistence for fault datasets.

Beyond whole-dataset :func:`save_jsonl` / :func:`load_jsonl`, the module
provides :class:`JsonlRecordWriter` — an incremental writer the dataset
generator streams into, one record at a time, so mega-datasets reach disk
chunk by chunk without ever materialising in memory.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import DatasetError
from .records import FaultDataset, FaultRecord


class JsonlRecordWriter:
    """Incremental JSONL writer for streaming dataset generation.

    Records are appended as they are produced (one JSON object per line, the
    same wire format as :func:`save_jsonl`), so the caller never holds more
    than one target's batch in memory.  Use as a context manager::

        with JsonlRecordWriter("faults.jsonl") as writer:
            writer.write(record)
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w")
        self.records_written = 0

    def write(self, record: FaultRecord) -> None:
        """Append one record as a JSON line and flush it to disk."""
        if self._handle is None:
            raise DatasetError(f"writer for {self.path} is already closed")
        self._handle.write(json.dumps(record.to_dict(), sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()
        self.records_written += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __enter__(self) -> "JsonlRecordWriter":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()


def save_jsonl(dataset: FaultDataset, path: str | Path) -> Path:
    """Write one JSON object per record to ``path`` (creating parents)."""
    path = Path(path)
    with JsonlRecordWriter(path) as writer:
        for record in dataset:
            writer.write(record)
    return path


def load_jsonl(path: str | Path, name: str | None = None) -> FaultDataset:
    """Load a dataset previously written by :func:`save_jsonl`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file {path} does not exist")
    dataset = FaultDataset(name=name or path.stem)
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                dataset.add(FaultRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise DatasetError(f"invalid record on line {line_number} of {path}: {exc}") from exc
    return dataset
