"""JSONL persistence for fault datasets."""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import DatasetError
from .records import FaultDataset, FaultRecord


def save_jsonl(dataset: FaultDataset, path: str | Path) -> Path:
    """Write one JSON object per record to ``path`` (creating parents)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for record in dataset:
            handle.write(json.dumps(record.to_dict(), sort_keys=True))
            handle.write("\n")
    return path


def load_jsonl(path: str | Path, name: str | None = None) -> FaultDataset:
    """Load a dataset previously written by :func:`save_jsonl`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file {path} does not exist")
    dataset = FaultDataset(name=name or path.stem)
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                dataset.add(FaultRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise DatasetError(f"invalid record on line {line_number} of {path}: {exc}") from exc
    return dataset
