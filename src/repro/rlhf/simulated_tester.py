"""Simulated testers: the oracle that closes the RLHF loop offline.

Real deployments put a human tester in the loop; the experiments in this
reproduction use simulated testers with *hidden preference profiles*.  A
profile perturbs the reference decisions derived from the fault specification
(for example, this tester always wants a retry mechanism, or prefers
probabilistic triggers), rates candidates by how closely their decisions match
the hidden expectation, and emits natural-language critiques in the same
register as the paper's running example so the feedback parser is exercised
end to end.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..llm.decisions import DecisionVector, decision_distance, reference_decisions
from ..llm.generator import GenerationCandidate
from ..rng import SeededRNG
from ..types import FaultSpec, Feedback, HandlingStyle, TriggerKind


@dataclass
class PreferenceProfile:
    """A hidden tester preference applied on top of the reference decisions."""

    name: str = "faithful"
    preferred_handling: HandlingStyle | None = None
    preferred_trigger: TriggerKind | None = None
    preferred_severity: str | None = None
    strictness: float = 1.0
    notes: str = ""

    def expectation(self, spec: FaultSpec) -> DecisionVector:
        """The decision vector this tester actually wants for ``spec``."""
        expected = reference_decisions(spec)
        values = expected.to_dict()
        if self.preferred_handling is not None:
            values["handling"] = self.preferred_handling.value
        if self.preferred_trigger is not None:
            values["trigger"] = self.preferred_trigger.value
        if self.preferred_severity is not None:
            values["severity"] = self.preferred_severity
        return DecisionVector.from_dict(values)


#: Profiles used by the benchmarks; the first is the paper's running example
#: tester, who wants a retry mechanism rather than log-and-ignore handling.
DEFAULT_PROFILES: tuple[PreferenceProfile, ...] = (
    PreferenceProfile(
        name="wants-retry",
        preferred_handling=HandlingStyle.RETRY,
        notes="expects realistic error recovery, mirrors the running example",
    ),
    PreferenceProfile(name="faithful", notes="accepts whatever matches the description"),
    PreferenceProfile(
        name="wants-intermittent",
        preferred_trigger=TriggerKind.PROBABILISTIC,
        notes="prefers transient faults over deterministic ones",
    ),
    PreferenceProfile(
        name="wants-severe",
        preferred_severity="high",
        strictness=1.2,
        notes="tests worst-case behaviour",
    ),
)

_CRITIQUE_TEMPLATES: dict[str, dict[str, str]] = {
    "handling": {
        HandlingStyle.RETRY.value: "introduce a retry mechanism instead of just logging the error",
        HandlingStyle.LOGGED_ONLY.value: "just log the error instead of recovering from it",
        HandlingStyle.UNHANDLED.value: "leave the exception unhandled so the failure propagates",
        HandlingStyle.RERAISE.value: "log the error and then re-raise it so callers see the failure",
        HandlingStyle.FALLBACK.value: "fall back to a default value instead of failing",
    },
    "trigger": {
        TriggerKind.PROBABILISTIC.value: "make the fault intermittent so it only happens sometimes",
        TriggerKind.ALWAYS.value: "make the fault happen every time, not just occasionally",
        TriggerKind.CONDITIONAL.value: "only trigger the fault when the described condition is met",
        TriggerKind.ON_NTH_CALL.value: "trigger the fault every few calls rather than always",
    },
    "severity": {
        "high": "make the failure more severe",
        "low": "make the failure less severe",
        "medium": "use a moderate severity for the failure",
    },
}


@dataclass
class SimulatedTester:
    """Rates candidates against a hidden expectation and writes critiques."""

    profile: PreferenceProfile = field(default_factory=PreferenceProfile)
    rng: SeededRNG = field(default_factory=lambda: SeededRNG(29, namespace="tester"))
    accept_threshold: float = 4.5

    def expectation(self, spec: FaultSpec) -> DecisionVector:
        return self.profile.expectation(spec)

    def rate(self, spec: FaultSpec, candidate: GenerationCandidate) -> float:
        """Rating in [0, 5]: 5 means the candidate matches the hidden expectation."""
        expected = self.expectation(spec)
        distance = decision_distance(candidate.decisions, expected)
        rating = 5.0 * (1.0 - distance) ** self.profile.strictness
        return round(max(0.0, min(5.0, rating)), 3)

    def review(self, spec: FaultSpec, candidate: GenerationCandidate) -> Feedback:
        """Full review: rating, acceptance, and a natural-language critique."""
        rating = self.rate(spec, candidate)
        accept = rating >= self.accept_threshold
        critique = "" if accept else self.critique(spec, candidate)
        return Feedback(
            fault_id=candidate.fault.fault_id,
            rating=rating,
            critique=critique,
            directives={},
            accept=accept,
        )

    def critique(self, spec: FaultSpec, candidate: GenerationCandidate) -> str:
        """Natural-language critique describing the largest mismatch first."""
        expected = self.expectation(spec).to_dict()
        actual = candidate.decisions.to_dict()
        complaints: list[str] = []
        if actual["template"] != expected["template"]:
            wanted = expected["template"].replace("_", " ")
            complaints.append(f"this should simulate a {wanted} fault, not a "
                              f"{actual['template'].replace('_', ' ')}")
        for slot in ("handling", "trigger", "severity"):
            if actual[slot] != expected[slot]:
                complaints.append(_CRITIQUE_TEMPLATES[slot][expected[slot]])
        if not complaints:
            complaints.append("the fault placement looks off; put it where the operation actually runs")
        return "; ".join(complaints[:2])

    def rank(self, spec: FaultSpec, candidates: list[GenerationCandidate]) -> list[GenerationCandidate]:
        """Candidates ordered from most to least preferred."""
        return sorted(candidates, key=lambda candidate: self.rate(spec, candidate), reverse=True)

    # -- batch scoring -------------------------------------------------------------

    def review_batch(
        self,
        spec: FaultSpec,
        candidates: list[GenerationCandidate],
        runner=None,
        mode: str | None = None,
    ) -> list[Feedback]:
        """Review a whole round of candidates in one call.

        Without ``runner`` this is exactly ``[self.review(spec, c) for c in
        candidates]`` — a pure-preference review.  With ``runner`` (an
        :class:`~repro.integration.experiment.ExperimentRunner`) every
        candidate's fault is integrated and executed as **one** sandbox batch
        (pooled workers when ``mode="pool"``), and the execution evidence is
        folded into each review via :meth:`review_executed`.

        Args:
            spec: The fault specification the candidates were generated for.
            candidates: One round of generation candidates.
            runner: Optional experiment runner whose target the candidate
                faults are executed against.
            mode: Execution mode for the batch; defaults to ``"pool"``.

        Returns:
            One :class:`~repro.types.Feedback` per candidate, in input order.
        """
        if runner is None:
            return [self.review(spec, candidate) for candidate in candidates]
        batch = runner.run_many([candidate.fault for candidate in candidates], mode=mode or "pool")
        return [
            self.review_executed(spec, candidate, record)
            for candidate, record in zip(candidates, batch.records)
        ]

    def review_executed(self, spec: FaultSpec, candidate: GenerationCandidate, record) -> Feedback:
        """Fold one fault-injection experiment into a candidate's review.

        Execution evidence only ever *lowers* a preference-based rating: a
        fault that could not be integrated rates 0, and a fault that never
        activated during testing rates half — simulated testers, like real
        ones, reject faults that demonstrably do nothing.

        Args:
            spec: The fault specification the candidate was generated for.
            candidate: The candidate that was executed.
            record: The
                :class:`~repro.integration.experiment.ExperimentRecord`
                observed for the candidate's fault.

        Returns:
            A :class:`~repro.types.Feedback` blending preference distance
            with what the sandbox observed.
        """
        base = self.review(spec, candidate)
        outcome = record.outcome
        if outcome.details.get("integration_failed"):
            return Feedback(
                fault_id=base.fault_id,
                rating=0.0,
                critique="the fault could not be integrated into the target code; "
                         "inject it where the described operation actually runs",
                directives=dict(base.directives),
                accept=False,
            )
        if not outcome.activated:
            complaint = "the injected fault never activated during testing; make it trigger on the executed path"
            critique = f"{base.critique}; {complaint}" if base.critique else complaint
            return Feedback(
                fault_id=base.fault_id,
                rating=round(base.rating * 0.5, 3),
                critique=critique,
                directives=dict(base.directives),
                accept=False,
            )
        return base


def tester_pool(seed: int = 31, profiles: tuple[PreferenceProfile, ...] = DEFAULT_PROFILES) -> list[SimulatedTester]:
    """A pool of testers with the default preference profiles."""
    base = SeededRNG(seed, namespace="tester-pool")
    return [
        SimulatedTester(profile=profile, rng=base.fork(profile.name))
        for profile in profiles
    ]


def spec_with_feedback(spec: FaultSpec, directives: dict) -> FaultSpec:
    """A copy of ``spec`` with feedback directives folded in (for re-generation)."""
    merged = dict(spec.directives)
    merged.update(directives)
    updated = dataclasses.replace(spec, directives=merged)
    handling = directives.get("handling")
    if handling:
        updated = dataclasses.replace(updated, handling=HandlingStyle(handling))
    return updated
