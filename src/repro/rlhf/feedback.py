"""Parsing tester feedback into structured refinement directives.

In the paper's workflow, tester feedback arrives as free-form natural language
("introduce a retry mechanism instead of just logging the error").  The parser
re-uses the NLP lexicon to turn critiques into the same directive dictionary
the spec extractor produces, so a refinement round is just another prompt with
extra directives — exactly how the running example iterates.
"""

from __future__ import annotations

from ..errors import FeedbackError
from ..nlp import lexicon
from ..nlp.tokenizer import normalize
from ..types import Feedback, FaultType, HandlingStyle, TriggerKind


class FeedbackParser:
    """Turns natural-language critiques into structured directives."""

    def parse(self, fault_id: str, critique: str, rating: float | None = None, accept: bool = False) -> Feedback:
        """Build a :class:`Feedback` record from a free-form critique."""
        critique = normalize(critique or "")
        directives = self.directives_from_text(critique)
        if rating is None:
            rating = 5.0 if accept else (3.0 if directives else 2.0)
        if not (0.0 <= rating <= 5.0):
            raise FeedbackError(f"rating must be within [0, 5], got {rating}")
        return Feedback(
            fault_id=fault_id,
            rating=float(rating),
            critique=critique,
            directives=directives,
            accept=accept,
        )

    def directives_from_text(self, critique: str) -> dict:
        """Extract refinement directives from a critique."""
        lowered = critique.lower()
        directives: dict = {}
        if not lowered:
            return directives

        handling = self._handling(lowered)
        if handling is not None:
            directives["handling"] = handling.value
            if handling is HandlingStyle.RETRY:
                directives["wants_retry"] = True
            elif handling is HandlingStyle.FALLBACK:
                directives["wants_fallback"] = True
            elif handling is HandlingStyle.UNHANDLED:
                directives["wants_unhandled"] = True
            elif handling is HandlingStyle.LOGGED_ONLY:
                directives["wants_logging"] = True

        fault_type = self._fault_type(lowered)
        if fault_type is not None:
            directives["fault_type"] = fault_type.value

        trigger = self._trigger(lowered)
        if trigger is not None:
            directives["trigger"] = trigger.value

        if any(phrase in lowered for phrase in ("more severe", "worse", "harder failure", "larger delay", "longer delay")):
            directives["severity"] = "high"
        if any(phrase in lowered for phrase in ("less severe", "milder", "smaller delay", "shorter delay")):
            directives["severity"] = "low"
        if "instead of" in lowered:
            directives["replaces_previous_behaviour"] = True
        if any(phrase in lowered for phrase in ("wrong function", "different function", "not that function")):
            directives["wrong_target"] = True
        return directives

    @staticmethod
    def _handling(lowered: str) -> HandlingStyle | None:
        for phrase in sorted(lexicon.HANDLING_PHRASES, key=len, reverse=True):
            if phrase in lowered:
                return lexicon.HANDLING_PHRASES[phrase]
        return None

    @staticmethod
    def _fault_type(lowered: str) -> FaultType | None:
        best: tuple[float, FaultType] | None = None
        for phrase, (fault_type, weight) in lexicon.FAULT_TYPE_PHRASES.items():
            if phrase in lowered and (best is None or weight > best[0]):
                best = (weight, fault_type)
        return best[1] if best else None

    @staticmethod
    def _trigger(lowered: str) -> TriggerKind | None:
        if any(marker in lowered for marker in lexicon.TRIGGER_PROBABILISTIC_MARKERS):
            return TriggerKind.PROBABILISTIC
        if any(marker in lowered for marker in ("every time", "always", "unconditionally")):
            return TriggerKind.ALWAYS
        if any(marker in lowered for marker in lexicon.TRIGGER_NTH_CALL_MARKERS) and "call" in lowered:
            return TriggerKind.ON_NTH_CALL
        if any(marker + " " in lowered for marker in lexicon.TRIGGER_CONDITIONAL_MARKERS):
            return TriggerKind.CONDITIONAL
        return None


def merge_directives(base: dict, update: dict) -> dict:
    """Merge feedback directives, later feedback overriding earlier feedback."""
    merged = dict(base)
    merged.update({key: value for key, value in update.items() if value is not None})
    return merged
