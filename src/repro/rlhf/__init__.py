"""Reinforcement learning from human feedback for fault generation.

Components:

* :class:`FeedbackParser` — natural-language critiques → refinement directives;
* :class:`PreferenceDataset` — pairwise comparisons collected from testers;
* :class:`RewardModel` / :class:`CandidateFeaturizer` — Bradley–Terry reward
  model over (prompt, candidate) features;
* :class:`SimulatedTester` / :class:`PreferenceProfile` — offline testers with
  hidden expectations (the human stand-ins for the experiments); whole rounds
  of candidates are scored at once via :meth:`SimulatedTester.review_batch`,
  optionally against real sandbox executions;
* :class:`PolicyOptimizer` — KL-regularised REINFORCE policy updates;
* :class:`RLHFTrainer` — the full iterative refinement loop.
"""

from .feedback import FeedbackParser, merge_directives
from .policy_opt import PolicyOptimizer, PolicyUpdateStats, RewardedSample
from .preference import PreferenceDataset, PreferencePair
from .reward_model import CandidateFeaturizer, RewardModel, RewardTrainingReport
from .simulated_tester import (
    DEFAULT_PROFILES,
    PreferenceProfile,
    SimulatedTester,
    spec_with_feedback,
    tester_pool,
)
from .trainer import RLHFIterationStats, RLHFReport, RLHFTrainer

__all__ = [
    "DEFAULT_PROFILES",
    "CandidateFeaturizer",
    "FeedbackParser",
    "PolicyOptimizer",
    "PolicyUpdateStats",
    "PreferenceDataset",
    "PreferencePair",
    "PreferenceProfile",
    "RLHFIterationStats",
    "RLHFReport",
    "RLHFTrainer",
    "RewardModel",
    "RewardTrainingReport",
    "RewardedSample",
    "SimulatedTester",
    "merge_directives",
    "spec_with_feedback",
    "tester_pool",
]
