"""Policy optimisation from reward signals (the RL step of RLHF).

A REINFORCE-style policy-gradient update with the two stabilisers used by the
InstructGPT recipe, scaled down to the decision-level policy:

* a **KL penalty** towards a frozen reference policy, applied inside the
  reward (``r' = r - beta * (log pi(a) - log pi_ref(a))``), which keeps the
  fine-tuned policy from collapsing onto reward-hacking outputs;
* a **moving-average baseline** subtracted from the shaped reward to reduce
  gradient variance.

The gradient of the REINFORCE objective for a softmax head is the familiar
``(p - onehot(a)) * advantage``, so the update re-uses the policy network's
cross-entropy backward pass with a per-sample scale factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import RLHFConfig
from ..llm.decisions import DecisionVector
from ..llm.network import PolicyNetwork
from ..nlp.prompt_builder import GenerationPrompt
from ..llm.features import FeatureEncoder


@dataclass
class PolicyUpdateStats:
    """Diagnostics of one policy-gradient update."""

    mean_reward: float = 0.0
    mean_shaped_reward: float = 0.0
    mean_kl: float = 0.0
    baseline: float = 0.0
    samples: int = 0

    def to_dict(self) -> dict:
        return {
            "mean_reward": self.mean_reward,
            "mean_shaped_reward": self.mean_shaped_reward,
            "mean_kl": self.mean_kl,
            "baseline": self.baseline,
            "samples": self.samples,
        }


@dataclass
class RewardedSample:
    """One sampled generation together with its scalar reward."""

    prompt: GenerationPrompt
    decisions: DecisionVector
    reward: float


class PolicyOptimizer:
    """KL-regularised REINFORCE over the fault-generation policy."""

    def __init__(
        self,
        policy: PolicyNetwork,
        encoder: FeatureEncoder,
        config: RLHFConfig | None = None,
        reference: PolicyNetwork | None = None,
    ) -> None:
        self._policy = policy
        self._encoder = encoder
        self._config = config or RLHFConfig()
        self._reference = reference or policy.clone()
        self._baseline = 0.0
        self._baseline_initialised = False
        self.history: list[PolicyUpdateStats] = []

    @property
    def reference(self) -> PolicyNetwork:
        return self._reference

    @property
    def baseline(self) -> float:
        return self._baseline

    def reset_reference(self) -> None:
        """Refreeze the reference policy at the current policy parameters."""
        self._reference = self._policy.clone()

    def update(self, samples: list[RewardedSample]) -> PolicyUpdateStats:
        """Apply one policy-gradient step over a batch of rewarded samples.

        The whole minibatch flows through two batched forward passes (policy
        and frozen reference) for the KL-shaped rewards, and one batched
        backward pass with the per-sample advantages as scales — no
        per-example ``np.outer`` loops.  The maths matches the per-sample
        REINFORCE update to floating-point noise (the tests pin this against
        the per-sample oracle).
        """
        stats = PolicyUpdateStats(samples=len(samples))
        if not samples:
            return stats
        beta = self._config.kl_beta
        features = self._encoder.encode_batch([sample.prompt for sample in samples])
        decisions = [sample.decisions for sample in samples]
        rewards = np.array([sample.reward for sample in samples], dtype=np.float64)

        forward = self._policy.forward_batch(features)
        logprobs = forward.log_probabilities(decisions)
        ref_logprobs = self._reference.log_probabilities_batch(features, decisions)
        kl_terms = logprobs - ref_logprobs
        shaped_rewards = rewards - beta * kl_terms

        batch_mean = float(np.sum(shaped_rewards)) / len(samples)
        if not self._baseline_initialised:
            self._baseline = batch_mean
            self._baseline_initialised = True
        momentum = self._config.baseline_momentum
        self._baseline = momentum * self._baseline + (1.0 - momentum) * batch_mean

        # Minimising advantage * (-log p) == maximising advantage * log p.
        advantages = shaped_rewards - self._baseline
        gradients = self._policy.backward_batch(forward, decisions, scales=advantages)
        self._policy.apply_gradients(gradients, learning_rate=self._config.policy_learning_rate)

        stats.mean_reward = float(np.sum(rewards)) / len(samples)
        stats.mean_shaped_reward = batch_mean
        stats.mean_kl = float(np.sum(kl_terms)) / len(samples)
        stats.baseline = self._baseline
        self.history.append(stats)
        return stats
