"""Pairwise preference data for reward-model training.

RLHF in the InstructGPT recipe learns a reward model from *comparisons*: the
tester prefers candidate A over candidate B for the same prompt.  The dataset
here stores those comparisons together with the feature vectors of both
candidates so the Bradley–Terry reward model can be fit without re-encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import RewardModelError


@dataclass
class PreferencePair:
    """One comparison: ``chosen`` was preferred over ``rejected``."""

    chosen_features: np.ndarray
    rejected_features: np.ndarray
    chosen_id: str = ""
    rejected_id: str = ""
    margin: float = 1.0

    def __post_init__(self) -> None:
        if self.chosen_features.shape != self.rejected_features.shape:
            raise RewardModelError(
                "chosen and rejected feature vectors must have identical shapes "
                f"({self.chosen_features.shape} vs {self.rejected_features.shape})"
            )
        if self.margin <= 0:
            self.margin = 1.0


@dataclass
class PreferenceDataset:
    """A growing collection of preference pairs."""

    pairs: list[PreferencePair] = field(default_factory=list)

    def add(self, pair: PreferencePair) -> None:
        if self.pairs and pair.chosen_features.shape != self.pairs[0].chosen_features.shape:
            raise RewardModelError("all preference pairs must share one feature dimensionality")
        self.pairs.append(pair)

    def add_comparison(
        self,
        chosen_features: np.ndarray,
        rejected_features: np.ndarray,
        chosen_id: str = "",
        rejected_id: str = "",
        margin: float = 1.0,
    ) -> None:
        self.add(
            PreferencePair(
                chosen_features=np.asarray(chosen_features, dtype=np.float64),
                rejected_features=np.asarray(rejected_features, dtype=np.float64),
                chosen_id=chosen_id,
                rejected_id=rejected_id,
                margin=margin,
            )
        )

    def add_ranking(self, ranked: list[tuple[str, np.ndarray]], margins: list[float] | None = None) -> int:
        """Expand a full ranking (best first) into all implied pairwise comparisons."""
        added = 0
        for better_index in range(len(ranked)):
            for worse_index in range(better_index + 1, len(ranked)):
                margin = 1.0
                if margins is not None:
                    margin = max(0.1, margins[better_index] - margins[worse_index])
                self.add_comparison(
                    ranked[better_index][1],
                    ranked[worse_index][1],
                    chosen_id=ranked[better_index][0],
                    rejected_id=ranked[worse_index][0],
                    margin=margin,
                )
                added += 1
        return added

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[PreferencePair]:
        return iter(self.pairs)

    @property
    def feature_dimension(self) -> int:
        if not self.pairs:
            raise RewardModelError("preference dataset is empty")
        return int(self.pairs[0].chosen_features.shape[0])
