"""The RLHF training loop: candidates → tester feedback → reward model → policy.

One :meth:`RLHFTrainer.run` call executes the iterative refinement process of
Section III-B.3 for a set of prompts: at every iteration the generator
proposes several candidates per prompt, the (simulated) testers rank them, the
rankings extend the preference dataset and re-fit the reward model, and the
policy is updated with KL-regularised REINFORCE on the reward-model scores.
The returned history records alignment against the testers' hidden
expectations, which is the series the RLHF benchmark plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import RLHFConfig
from ..llm.decisions import decision_distance
from ..llm.generator import FaultGenerator, GenerationCandidate
from ..nlp.prompt_builder import GenerationPrompt
from ..rng import SeededRNG
from .policy_opt import PolicyOptimizer, RewardedSample
from .preference import PreferenceDataset
from .reward_model import CandidateFeaturizer, RewardModel
from .simulated_tester import SimulatedTester


@dataclass
class RLHFIterationStats:
    """Per-iteration metrics of the RLHF loop."""

    iteration: int
    mean_rating: float
    best_rating: float
    alignment: float
    reward_model_accuracy: float
    mean_reward: float
    mean_kl: float
    accepted_fraction: float

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "mean_rating": self.mean_rating,
            "best_rating": self.best_rating,
            "alignment": self.alignment,
            "reward_model_accuracy": self.reward_model_accuracy,
            "mean_reward": self.mean_reward,
            "mean_kl": self.mean_kl,
            "accepted_fraction": self.accepted_fraction,
        }


@dataclass
class RLHFReport:
    """Full history of an RLHF run."""

    iterations: list[RLHFIterationStats] = field(default_factory=list)
    preference_pairs: int = 0

    @property
    def initial_alignment(self) -> float:
        return self.iterations[0].alignment if self.iterations else 0.0

    @property
    def final_alignment(self) -> float:
        return self.iterations[-1].alignment if self.iterations else 0.0

    @property
    def improved(self) -> bool:
        return self.final_alignment >= self.initial_alignment

    def to_dict(self) -> dict:
        return {
            "iterations": [stats.to_dict() for stats in self.iterations],
            "preference_pairs": self.preference_pairs,
            "initial_alignment": self.initial_alignment,
            "final_alignment": self.final_alignment,
        }


class RLHFTrainer:
    """Orchestrates reward-model fitting and policy optimisation."""

    def __init__(
        self,
        generator: FaultGenerator,
        testers: list[SimulatedTester],
        config: RLHFConfig | None = None,
        rng: SeededRNG | None = None,
        runner=None,
        execution_mode: str | None = None,
    ) -> None:
        """Wire the RLHF loop together.

        Args:
            generator: The fault-generation policy under training.
            testers: Simulated testers providing (hidden-preference) feedback.
            config: RLHF schedule; defaults to :class:`RLHFConfig`.
            rng: Deterministic RNG override.
            runner: Optional
                :class:`~repro.integration.experiment.ExperimentRunner`; when
                given, every round of candidates is integrated and executed as
                one sandbox batch and the execution evidence flows into the
                testers' ratings (see
                :meth:`SimulatedTester.review_batch`).
            execution_mode: Execution mode for those batches (default
                ``"pool"``).

        Raises:
            ValueError: If ``testers`` is empty.
        """
        if not testers:
            raise ValueError("RLHF requires at least one tester")
        self._generator = generator
        self._testers = list(testers)
        self._config = config or RLHFConfig()
        self._rng = rng or SeededRNG(self._config.seed, namespace="rlhf")
        self._runner = runner
        self._execution_mode = execution_mode
        self._featurizer = CandidateFeaturizer(generator.encoder)
        self.reward_model = RewardModel(self._featurizer.dimension, self._config)
        self.preferences = PreferenceDataset()
        self.optimizer = PolicyOptimizer(
            policy=generator.policy, encoder=generator.encoder, config=self._config
        )

    # -- public API ---------------------------------------------------------------

    def run(self, prompts: list[GenerationPrompt]) -> RLHFReport:
        """Run the configured number of RLHF iterations over ``prompts``."""
        report = RLHFReport()
        for iteration in range(self._config.iterations):
            stats = self._iteration(prompts, iteration)
            report.iterations.append(stats)
        report.preference_pairs = len(self.preferences)
        return report

    def alignment(self, prompts: list[GenerationPrompt]) -> float:
        """Mean alignment of greedy generations with the testers' expectations.

        Alignment is ``1 - decision_distance`` between the greedy generation and
        each tester's hidden expectation, averaged over prompts and testers.
        All greedy generations come from one batched forward pass.
        """
        if not prompts:
            return 0.0
        candidates = self._generator.generate_batch(prompts, greedy=True)
        total = 0.0
        count = 0
        for prompt, candidate in zip(prompts, candidates):
            for tester in self._testers:
                expected = tester.expectation(prompt.spec)
                total += 1.0 - decision_distance(candidate.decisions, expected)
                count += 1
        return total / count

    # -- internals ----------------------------------------------------------------

    def _iteration(self, prompts: list[GenerationPrompt], iteration: int) -> RLHFIterationStats:
        ratings: list[float] = []
        best_ratings: list[float] = []
        accepted = 0
        reviewed = 0
        samples: list[RewardedSample] = []

        # One batched forward pass proposes every prompt's candidate round.
        candidate_rounds = self._generator.candidates_batch(
            prompts, count=self._config.candidates_per_iteration, iteration=iteration
        )
        for prompt_index, (prompt, candidates) in enumerate(zip(prompts, candidate_rounds)):
            tester = self._testers[prompt_index % len(self._testers)]
            # One review call scores the whole round; with an execution runner
            # attached, the candidates run as a single pooled sandbox batch.
            reviews = tester.review_batch(
                prompt.spec, candidates, runner=self._runner, mode=self._execution_mode
            )
            order = sorted(
                range(len(candidates)), key=lambda i: reviews[i].rating, reverse=True
            )
            rated = [(candidates[i], reviews[i].rating) for i in order]
            ratings.extend(rating for _candidate, rating in rated)
            best_ratings.append(rated[0][1])
            accepted += sum(1 for i in order if reviews[i].accept)
            reviewed += len(rated)

            featurized = [
                (candidate.fault.fault_id, self._featurizer.featurize(prompt, candidate))
                for candidate, _rating in rated
            ]
            self.preferences.add_ranking(featurized, margins=[rating for _c, rating in rated])

        reward_report = self.reward_model.fit(self.preferences)

        sampled_rounds = self._generator.candidates_batch(
            prompts, count=self._config.candidates_per_iteration, iteration=iteration
        )
        for prompt, candidates in zip(prompts, sampled_rounds):
            features = self._featurizer.featurize_batch(prompt, candidates)
            rewards = self.reward_model.score_batch(features)
            samples.extend(
                RewardedSample(prompt=prompt, decisions=candidate.decisions, reward=float(reward))
                for candidate, reward in zip(candidates, rewards)
            )
        update_stats = self.optimizer.update(samples)

        return RLHFIterationStats(
            iteration=iteration,
            mean_rating=sum(ratings) / len(ratings) if ratings else 0.0,
            best_rating=sum(best_ratings) / len(best_ratings) if best_ratings else 0.0,
            alignment=self.alignment(prompts),
            reward_model_accuracy=reward_report.pairwise_accuracy,
            mean_reward=update_stats.mean_reward,
            mean_kl=update_stats.mean_kl,
            accepted_fraction=accepted / reviewed if reviewed else 0.0,
        )
