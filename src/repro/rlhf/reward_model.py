"""The reward model: scoring generated faults from tester preferences.

A linear Bradley–Terry model over candidate features: the probability that the
tester prefers candidate A over candidate B is ``sigmoid(r(A) - r(B))`` with
``r(x) = w·x + b``.  Training maximises the log-likelihood of the observed
comparisons (with L2 regularisation), which is the same objective InstructGPT
uses for its reward model, at a scale that trains in milliseconds.

Candidate features combine the prompt encoding (what the tester asked for)
with a one-hot encoding of the candidate's decisions and a few surface
properties of the generated code, so the model can learn both "does the fault
match the request" and "does the code look the way this tester likes".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import RLHFConfig
from ..errors import RewardModelError
from ..llm.decisions import DECISION_SLOTS
from ..llm.features import FeatureEncoder
from ..llm.generator import GenerationCandidate
from ..nlp.prompt_builder import GenerationPrompt
from .preference import PreferenceDataset

_CODE_PROPERTY_COUNT = 6


def _sigmoid(value: float) -> float:
    return 1.0 / (1.0 + np.exp(-value))


class CandidateFeaturizer:
    """Builds the joint (prompt, candidate) feature vector for reward scoring."""

    def __init__(self, encoder: FeatureEncoder) -> None:
        self._encoder = encoder
        self._decision_size = sum(len(values) for values in DECISION_SLOTS.values())

    @property
    def dimension(self) -> int:
        return self._encoder.dimension + self._decision_size + _CODE_PROPERTY_COUNT

    def featurize(self, prompt: GenerationPrompt, candidate: GenerationCandidate) -> np.ndarray:
        prompt_features = self._encoder.encode(prompt)
        decisions = np.zeros(self._decision_size, dtype=np.float64)
        offset = 0
        chosen = candidate.decisions.to_dict()
        for slot, values in DECISION_SLOTS.items():
            decisions[offset + values.index(chosen[slot])] = 1.0
            offset += len(values)
        code = candidate.fault.code
        code_properties = np.array(
            [
                1.0 if "try:" in code else 0.0,
                1.0 if "raise" in code else 0.0,
                1.0 if "retry" in code.lower() else 0.0,
                1.0 if "print(" in code else 0.0,
                1.0 if "sleep(" in code else 0.0,
                min(len(code.splitlines()) / 40.0, 1.0),
            ],
            dtype=np.float64,
        )
        return np.concatenate([prompt_features, decisions, code_properties])

    def featurize_batch(
        self, prompt: GenerationPrompt, candidates: list[GenerationCandidate]
    ) -> np.ndarray:
        """Feature matrix ``(len(candidates), dimension)`` for one prompt's round.

        The prompt encoding is computed once (cache-assisted) and shared
        across rows; only the per-candidate decision one-hots and code
        properties differ.
        """
        if not candidates:
            return np.zeros((0, self.dimension), dtype=np.float64)
        return np.stack([self.featurize(prompt, candidate) for candidate in candidates])


@dataclass
class RewardTrainingReport:
    """Loss curve and pairwise accuracy of a reward-model fit."""

    losses: list[float] = field(default_factory=list)
    pairwise_accuracy: float = 0.0
    pairs: int = 0

    def to_dict(self) -> dict:
        return {
            "losses": list(self.losses),
            "pairwise_accuracy": self.pairwise_accuracy,
            "pairs": self.pairs,
        }


class RewardModel:
    """Linear Bradley–Terry reward model trained on tester comparisons."""

    def __init__(self, dimension: int, config: RLHFConfig | None = None) -> None:
        if dimension <= 0:
            raise RewardModelError("feature dimension must be positive")
        self._config = config or RLHFConfig()
        self.weights = np.zeros(dimension, dtype=np.float64)
        self.bias = 0.0
        self.trained = False

    @property
    def dimension(self) -> int:
        return int(self.weights.shape[0])

    def score(self, features: np.ndarray) -> float:
        """Scalar reward of a candidate's feature vector."""
        features = np.asarray(features, dtype=np.float64)
        if features.shape != self.weights.shape:
            raise RewardModelError(
                f"expected features of shape {self.weights.shape}, got {features.shape}"
            )
        return float(self.weights @ features + self.bias)

    def score_batch(self, features: np.ndarray) -> np.ndarray:
        """Rewards for a whole ``(B, dimension)`` feature matrix at once."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.weights.shape[0]:
            raise RewardModelError(
                f"expected features of shape (B, {self.weights.shape[0]}), got {features.shape}"
            )
        return features @ self.weights + self.bias

    def preference_probability(self, chosen: np.ndarray, rejected: np.ndarray) -> float:
        """Modelled probability that ``chosen`` is preferred over ``rejected``."""
        return _sigmoid(self.score(chosen) - self.score(rejected))

    def fit(self, dataset: PreferenceDataset, l2: float = 1e-3) -> RewardTrainingReport:
        """Fit the model to a preference dataset with gradient ascent.

        Each epoch is one pass of matrix Bradley–Terry: the chosen-minus-
        rejected difference matrix and margin vector are built once, and every
        epoch costs two matvecs instead of a Python loop over pairs.  Matches
        the per-pair loop to floating-point noise.
        """
        report = RewardTrainingReport(pairs=len(dataset))
        if len(dataset) == 0:
            return report
        if dataset.feature_dimension != self.dimension:
            raise RewardModelError(
                f"dataset features have dimension {dataset.feature_dimension}, "
                f"model expects {self.dimension}"
            )
        differences = np.stack([pair.chosen_features - pair.rejected_features for pair in dataset])
        margins = np.array([pair.margin for pair in dataset], dtype=np.float64)
        learning_rate = self._config.reward_learning_rate
        count = len(dataset)
        for _epoch in range(self._config.reward_epochs):
            margin_logits = differences @ self.weights
            probabilities = _sigmoid(margin_logits)
            loss = float(np.sum(-np.log(probabilities + 1e-12) * margins))
            gradient = differences.T @ ((probabilities - 1.0) * margins)
            gradient = gradient / count + l2 * self.weights
            self.weights -= learning_rate * gradient
            # The bias cancels in pairwise differences and stays untouched.
            report.losses.append(loss / count)
        report.pairwise_accuracy = self.pairwise_accuracy(dataset)
        self.trained = True
        return report

    def pairwise_accuracy(self, dataset: PreferenceDataset) -> float:
        """Fraction of comparisons the model currently orders correctly."""
        if len(dataset) == 0:
            return 0.0
        chosen = self.score_batch(np.stack([pair.chosen_features for pair in dataset]))
        rejected = self.score_batch(np.stack([pair.rejected_features for pair in dataset]))
        return int(np.sum(chosen > rejected)) / len(dataset)

    def state_dict(self) -> dict:
        return {"weights": self.weights.copy(), "bias": self.bias, "trained": self.trained}

    def load_state(self, state: dict) -> None:
        weights = np.asarray(state["weights"], dtype=np.float64)
        if weights.shape != self.weights.shape:
            raise RewardModelError("reward checkpoint dimensionality mismatch")
        self.weights = weights
        self.bias = float(state.get("bias", 0.0))
        self.trained = bool(state.get("trained", True))
