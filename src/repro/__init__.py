"""Neural Fault Injection: generating software faults from natural language.

A reproduction of Cotroneo & Liguori, *"Neural Fault Injection: Generating
Software Faults from Natural Language"* (DSN 2024).  The library implements the
complete methodology the paper envisions, on top of fully offline substrates:

* :mod:`repro.core` — the end-to-end pipeline, refinement sessions, campaigns;
* :mod:`repro.nlp` — the NLP engine (tokenisation, NER, spec extraction, code
  analysis, prompt construction);
* :mod:`repro.llm` — the trainable generation model (policy network, grammar-
  constrained decoding, supervised fine-tuning, checkpoints);
* :mod:`repro.rlhf` — reward model, simulated testers, KL-regularised policy
  optimisation, the iterative refinement loop;
* :mod:`repro.injection` — the programmable AST-level fault-injection substrate;
* :mod:`repro.integration` — automated integration, sandboxed testing, failure
  classification;
* :mod:`repro.dataset` — SFI-generated fine-tuning datasets;
* :mod:`repro.targets` — the applications used as systems under test;
* :mod:`repro.baselines` — conventional fault injection baselines;
* :mod:`repro.eval` — coverage, effectiveness, efficiency, alignment metrics.

Quickstart::

    from repro import NeuralFaultInjector

    injector = NeuralFaultInjector()
    injector.prepare()                      # SFI dataset generation + SFT
    fault = injector.inject(
        "Simulate a scenario where a database transaction fails due to a "
        "timeout, causing an unhandled exception within the "
        "process_transaction function.",
        code=open("my_module.py").read(),
    )
    print(fault.code)
"""

from .config import (
    DatasetConfig,
    ExecutionConfig,
    IntegrationConfig,
    ModelConfig,
    PipelineConfig,
    RLHFConfig,
    SFTConfig,
)
from .core import (
    CampaignOrchestrator,
    ComparisonResult,
    NeuralFaultInjector,
    RefinementSession,
    WorkflowTrace,
)
from .errors import ReproError
from .types import (
    FailureMode,
    FaultDescription,
    FaultSpec,
    FaultType,
    Feedback,
    GeneratedFault,
    HandlingStyle,
    InjectionOutcome,
    Patch,
    TriggerKind,
)

__version__ = "1.0.0"

__all__ = [
    "CampaignOrchestrator",
    "ComparisonResult",
    "DatasetConfig",
    "ExecutionConfig",
    "FailureMode",
    "FaultDescription",
    "FaultSpec",
    "FaultType",
    "Feedback",
    "GeneratedFault",
    "HandlingStyle",
    "IntegrationConfig",
    "InjectionOutcome",
    "ModelConfig",
    "NeuralFaultInjector",
    "Patch",
    "PipelineConfig",
    "RLHFConfig",
    "RefinementSession",
    "ReproError",
    "SFTConfig",
    "TriggerKind",
    "WorkflowTrace",
    "__version__",
]
