"""Neural Fault Injection: generating software faults from natural language.

A reproduction of Cotroneo & Liguori, *"Neural Fault Injection: Generating
Software Faults from Natural Language"* (DSN 2024).  The library implements the
complete methodology the paper envisions, on top of fully offline substrates:

* :mod:`repro.api` — the typed serving surface: request/response dataclasses,
  the :class:`FaultInjectionEngine` façade, and the continuous-batching
  scheduler (see docs/API.md);
* :mod:`repro.core` — the end-to-end pipeline, refinement sessions, campaigns;
* :mod:`repro.nlp` — the NLP engine (tokenisation, NER, spec extraction, code
  analysis, prompt construction);
* :mod:`repro.llm` — the trainable generation model (policy network, grammar-
  constrained decoding, supervised fine-tuning, checkpoints);
* :mod:`repro.rlhf` — reward model, simulated testers, KL-regularised policy
  optimisation, the iterative refinement loop;
* :mod:`repro.injection` — the programmable AST-level fault-injection substrate;
* :mod:`repro.integration` — automated integration, sandboxed testing, failure
  classification;
* :mod:`repro.dataset` — SFI-generated fine-tuning datasets;
* :mod:`repro.targets` — the applications used as systems under test;
* :mod:`repro.baselines` — conventional fault injection baselines;
* :mod:`repro.eval` — coverage, effectiveness, efficiency, alignment metrics.

Quickstart::

    from repro import FaultInjectionEngine, GenerateRequest

    with FaultInjectionEngine() as engine:
        response = engine.run(
            GenerateRequest(
                description="Simulate a scenario where a database transaction "
                "fails due to a timeout, causing an unhandled exception within "
                "the process_transaction function.",
                code=open("my_module.py").read(),
            )
        )
        print(response.payload.fault.code)

The original blocking façade (:class:`NeuralFaultInjector`) is kept as a thin
adapter over the engine — see docs/API.md for the migration guide.
"""

from .api import (
    CampaignRequest,
    DatasetRequest,
    FaultInjectionEngine,
    GenerateRequest,
    Response,
    RLHFRequest,
)
from .config import (
    ChaosConfig,
    DatasetConfig,
    EngineConfig,
    ExecutionConfig,
    IntegrationConfig,
    ModelConfig,
    PipelineConfig,
    ResilienceConfig,
    RLHFConfig,
    ServerConfig,
    SFTConfig,
)
from .core import (
    CampaignOrchestrator,
    ComparisonResult,
    NeuralFaultInjector,
    RefinementSession,
    WorkflowTrace,
)
from .errors import ReproError
from .server import FaultInjectionServer
from .types import (
    FailureMode,
    FaultDescription,
    FaultSpec,
    FaultType,
    Feedback,
    GeneratedFault,
    HandlingStyle,
    InjectionOutcome,
    Patch,
    TriggerKind,
)

__version__ = "1.0.0"

__all__ = [
    "CampaignOrchestrator",
    "CampaignRequest",
    "ChaosConfig",
    "ComparisonResult",
    "DatasetConfig",
    "DatasetRequest",
    "EngineConfig",
    "ExecutionConfig",
    "FailureMode",
    "FaultInjectionEngine",
    "FaultInjectionServer",
    "GenerateRequest",
    "RLHFRequest",
    "Response",
    "FaultDescription",
    "FaultSpec",
    "FaultType",
    "Feedback",
    "GeneratedFault",
    "HandlingStyle",
    "IntegrationConfig",
    "InjectionOutcome",
    "ModelConfig",
    "NeuralFaultInjector",
    "Patch",
    "PipelineConfig",
    "RLHFConfig",
    "RefinementSession",
    "ReproError",
    "ResilienceConfig",
    "SFTConfig",
    "ServerConfig",
    "TriggerKind",
    "WorkflowTrace",
    "__version__",
]
