"""Efficiency metrics: tester effort and wall-clock generation throughput."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..baselines.manual_effort import EffortEstimate, ManualEffortModel


@dataclass
class StageTiming:
    """Wall-clock duration of one pipeline stage."""

    stage: str
    seconds: float

    def to_dict(self) -> dict:
        return {"stage": self.stage, "seconds": round(self.seconds, 6)}


@dataclass
class TimingCollector:
    """Collects per-stage wall-clock timings (used by the Fig. 1 benchmark)."""

    timings: list[StageTiming] = field(default_factory=list)

    @contextmanager
    def stage(self, name: str):
        started = time.perf_counter()
        try:
            yield
        finally:
            self.timings.append(StageTiming(stage=name, seconds=time.perf_counter() - started))

    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.timings)

    def by_stage(self) -> dict[str, float]:
        aggregated: dict[str, float] = {}
        for timing in self.timings:
            aggregated[timing.stage] = aggregated.get(timing.stage, 0.0) + timing.seconds
        return aggregated

    def to_dict(self) -> dict:
        return {"stages": self.by_stage(), "total_seconds": round(self.total_seconds(), 6)}


@dataclass
class EfficiencyComparison:
    """Side-by-side manual-effort comparison of the two workflows."""

    neural: EffortEstimate
    conventional: EffortEstimate

    @property
    def speedup(self) -> float:
        if self.neural.minutes <= 0:
            return float("inf")
        return self.conventional.minutes / self.neural.minutes

    def to_dict(self) -> dict:
        return {
            "neural": self.neural.to_dict(),
            "conventional": self.conventional.to_dict(),
            "speedup": round(self.speedup, 2),
        }


def compare_effort(
    scenarios: int,
    expressible_fraction: float,
    feedback_rounds_per_scenario: float = 1.0,
    model: ManualEffortModel | None = None,
) -> EfficiencyComparison:
    """Build the effort comparison used by the comparative benchmark."""
    model = model or ManualEffortModel()
    return EfficiencyComparison(
        neural=model.neural(scenarios, feedback_rounds_per_scenario=feedback_rounds_per_scenario),
        conventional=model.conventional(scenarios, expressible_fraction=expressible_fraction),
    )
