"""Effectiveness metrics: does injected badness actually expose weaknesses?"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..types import FailureMode, InjectionOutcome


@dataclass
class EffectivenessReport:
    """Failure-exposure statistics of one campaign."""

    technique: str
    total: int
    activated: int
    failures: int
    distinct_failure_modes: int
    by_mode: dict[str, int]

    @property
    def activation_rate(self) -> float:
        return self.activated / self.total if self.total else 0.0

    @property
    def failure_exposure_rate(self) -> float:
        return self.failures / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        return {
            "technique": self.technique,
            "total": self.total,
            "activated": self.activated,
            "activation_rate": round(self.activation_rate, 3),
            "failures": self.failures,
            "failure_exposure_rate": round(self.failure_exposure_rate, 3),
            "distinct_failure_modes": self.distinct_failure_modes,
            "by_mode": dict(self.by_mode),
        }


def effectiveness(outcomes: Iterable[InjectionOutcome], technique: str) -> EffectivenessReport:
    """Compute effectiveness statistics for a sequence of injection outcomes."""
    outcomes = list(outcomes)
    by_mode = {mode.value: 0 for mode in FailureMode}
    for outcome in outcomes:
        by_mode[outcome.failure_mode.value] += 1
    failures = sum(1 for outcome in outcomes if outcome.exposed_failure)
    distinct = sum(
        1 for mode, count in by_mode.items() if count > 0 and mode != FailureMode.NO_FAILURE.value
    )
    return EffectivenessReport(
        technique=technique,
        total=len(outcomes),
        activated=sum(1 for outcome in outcomes if outcome.activated),
        failures=failures,
        distinct_failure_modes=distinct,
        by_mode=by_mode,
    )
