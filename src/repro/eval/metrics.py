"""Code-similarity and decision-accuracy metrics."""

from __future__ import annotations

import difflib
import re


def _code_tokens(code: str) -> list[str]:
    """Lower-cased identifier/number/operator tokens of a code snippet."""
    return re.findall(r"[A-Za-z_][A-Za-z0-9_]*|\d+|[^\sA-Za-z0-9]", code.lower())


def edit_similarity(left: str, right: str) -> float:
    """Character-level similarity in [0, 1] (difflib ratio)."""
    if not left and not right:
        return 1.0
    return difflib.SequenceMatcher(a=left, b=right).ratio()


def token_jaccard(left: str, right: str) -> float:
    """Jaccard similarity of the code-token sets of two snippets."""
    left_tokens = set(_code_tokens(left))
    right_tokens = set(_code_tokens(right))
    if not left_tokens and not right_tokens:
        return 1.0
    union = left_tokens | right_tokens
    return len(left_tokens & right_tokens) / len(union)


def token_bleu(candidate: str, reference: str, max_n: int = 4) -> float:
    """A BLEU-style n-gram overlap score between two code snippets.

    Uses token n-grams up to ``max_n`` with uniform weights and a brevity
    penalty, which is the standard code-generation surface metric at the scale
    of single functions.
    """
    candidate_tokens = _code_tokens(candidate)
    reference_tokens = _code_tokens(reference)
    if not candidate_tokens or not reference_tokens:
        return 0.0
    precisions: list[float] = []
    for n in range(1, max_n + 1):
        candidate_ngrams = _ngram_counts(candidate_tokens, n)
        reference_ngrams = _ngram_counts(reference_tokens, n)
        if not candidate_ngrams:
            break
        overlap = sum(
            min(count, reference_ngrams.get(ngram, 0)) for ngram, count in candidate_ngrams.items()
        )
        precisions.append(max(overlap, 0.0) / sum(candidate_ngrams.values()))
    if not precisions or all(precision == 0.0 for precision in precisions):
        return 0.0
    smoothed = [precision if precision > 0 else 1e-4 for precision in precisions]
    geometric_mean = 1.0
    for precision in smoothed:
        geometric_mean *= precision
    geometric_mean **= 1.0 / len(smoothed)
    brevity = min(1.0, len(candidate_tokens) / len(reference_tokens))
    return brevity * geometric_mean


def _ngram_counts(tokens: list[str], n: int) -> dict[tuple[str, ...], int]:
    counts: dict[tuple[str, ...], int] = {}
    for start in range(0, len(tokens) - n + 1):
        ngram = tuple(tokens[start : start + n])
        counts[ngram] = counts.get(ngram, 0) + 1
    return counts


def decision_accuracy(predicted: dict[str, str], expected: dict[str, str]) -> float:
    """Fraction of decision slots predicted correctly."""
    if not expected:
        return 0.0
    hits = sum(1 for slot, value in expected.items() if predicted.get(slot) == value)
    return hits / len(expected)


def syntactic_validity(code: str) -> bool:
    """Whether a generated snippet parses as Python."""
    import ast

    try:
        ast.parse(code)
        return True
    except SyntaxError:
        return False
