"""Evaluation metrics for the reproduced experiments.

* :mod:`metrics` — code similarity, decision accuracy, syntactic validity;
* :mod:`coverage` — fault-type and scenario coverage of each technique;
* :mod:`effectiveness` — failure exposure from injection outcomes;
* :mod:`efficiency` — tester effort and pipeline stage timings;
* :mod:`alignment` — alignment with tester expectations across RLHF iterations;
* :mod:`statistics` — means, deviations, bootstrap confidence intervals.
"""

from .alignment import AlignmentSeries, alignment_score, mean_alignment
from .coverage import CoverageReport, baseline_coverage, neural_coverage
from .effectiveness import EffectivenessReport, effectiveness
from .efficiency import EfficiencyComparison, StageTiming, TimingCollector, compare_effort
from .metrics import (
    decision_accuracy,
    edit_similarity,
    syntactic_validity,
    token_bleu,
    token_jaccard,
)
from .statistics import bootstrap_confidence_interval, mean, relative_change, stddev

__all__ = [
    "AlignmentSeries",
    "CoverageReport",
    "EffectivenessReport",
    "EfficiencyComparison",
    "StageTiming",
    "TimingCollector",
    "alignment_score",
    "baseline_coverage",
    "bootstrap_confidence_interval",
    "compare_effort",
    "decision_accuracy",
    "edit_similarity",
    "effectiveness",
    "mean",
    "mean_alignment",
    "neural_coverage",
    "relative_change",
    "stddev",
    "syntactic_validity",
    "token_bleu",
    "token_jaccard",
]
