"""Alignment metrics: how closely generations match tester expectations."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..llm.decisions import DecisionVector, decision_distance


@dataclass
class AlignmentSeries:
    """Alignment over RLHF iterations (the series plotted by the RLHF benchmark)."""

    technique: str = "rlhf"
    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(value)

    @property
    def initial(self) -> float:
        return self.values[0] if self.values else 0.0

    @property
    def final(self) -> float:
        return self.values[-1] if self.values else 0.0

    @property
    def improvement(self) -> float:
        return self.final - self.initial

    @property
    def monotone_fraction(self) -> float:
        """Fraction of consecutive steps that do not decrease alignment."""
        if len(self.values) < 2:
            return 1.0
        non_decreasing = sum(
            1 for left, right in zip(self.values, self.values[1:]) if right >= left - 1e-9
        )
        return non_decreasing / (len(self.values) - 1)

    def to_dict(self) -> dict:
        return {
            "technique": self.technique,
            "values": [round(value, 4) for value in self.values],
            "initial": round(self.initial, 4),
            "final": round(self.final, 4),
            "improvement": round(self.improvement, 4),
            "monotone_fraction": round(self.monotone_fraction, 4),
        }


def alignment_score(generated: DecisionVector, expected: DecisionVector) -> float:
    """Alignment in [0, 1]: 1 means the generation matches the expectation exactly."""
    return 1.0 - decision_distance(generated, expected)


def mean_alignment(pairs: list[tuple[DecisionVector, DecisionVector]]) -> float:
    """Mean alignment over (generated, expected) pairs."""
    if not pairs:
        return 0.0
    return sum(alignment_score(generated, expected) for generated, expected in pairs) / len(pairs)
