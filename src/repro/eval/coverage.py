"""Coverage metrics: which fault types and scenario intents a technique covers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..types import FaultSpec, FaultType


@dataclass
class CoverageReport:
    """Fault-type and scenario coverage of one technique."""

    technique: str
    covered_fault_types: set[FaultType] = field(default_factory=set)
    requested_fault_types: set[FaultType] = field(default_factory=set)
    satisfied_scenarios: int = 0
    total_scenarios: int = 0

    @property
    def fault_type_coverage(self) -> float:
        """Fraction of the full fault taxonomy the technique can produce."""
        taxonomy = len(FaultType.concrete())
        return len(self.covered_fault_types) / taxonomy if taxonomy else 0.0

    @property
    def requested_type_coverage(self) -> float:
        """Fraction of the fault types the scenarios ask for that are covered."""
        if not self.requested_fault_types:
            return 0.0
        return len(self.covered_fault_types & self.requested_fault_types) / len(self.requested_fault_types)

    @property
    def scenario_coverage(self) -> float:
        """Fraction of requested scenarios (type + trigger + handling) satisfied."""
        if not self.total_scenarios:
            return 0.0
        return self.satisfied_scenarios / self.total_scenarios

    def to_dict(self) -> dict:
        return {
            "technique": self.technique,
            "covered_fault_types": sorted(fault_type.value for fault_type in self.covered_fault_types),
            "fault_type_coverage": round(self.fault_type_coverage, 3),
            "requested_type_coverage": round(self.requested_type_coverage, 3),
            "scenario_coverage": round(self.scenario_coverage, 3),
            "satisfied_scenarios": self.satisfied_scenarios,
            "total_scenarios": self.total_scenarios,
        }


def neural_coverage(specs: Iterable[FaultSpec], generated_templates: Iterable[str], technique: str = "neural") -> CoverageReport:
    """Coverage of the neural technique over a set of requested scenarios.

    A scenario counts as satisfied when the generated fault's template matches
    the requested fault type (the trigger and handling are honoured by
    construction, because the grammar renders whatever the spec asks for).
    """
    specs = list(specs)
    templates = list(generated_templates)
    report = CoverageReport(technique=technique, total_scenarios=len(specs))
    for spec, template in zip(specs, templates):
        requested = spec.fault_type
        report.requested_fault_types.add(requested)
        produced = FaultType(template) if template in FaultType._value2member_map_ else FaultType.UNKNOWN
        report.covered_fault_types.add(produced)
        if produced is requested or requested is FaultType.UNKNOWN:
            report.satisfied_scenarios += 1
    return report


def baseline_coverage(
    specs: Iterable[FaultSpec],
    can_express,
    producible_types: Iterable[FaultType],
    technique: str,
) -> CoverageReport:
    """Coverage of a baseline given its scenario predicate and fault-type set."""
    specs = list(specs)
    report = CoverageReport(
        technique=technique,
        total_scenarios=len(specs),
        covered_fault_types=set(producible_types),
    )
    for spec in specs:
        report.requested_fault_types.add(spec.fault_type)
        if can_express(spec):
            report.satisfied_scenarios += 1
    return report
