"""Small statistics helpers shared by the benchmarks."""

from __future__ import annotations

import numpy as np

from ..rng import SeededRNG


def mean(values: list[float]) -> float:
    """Arithmetic mean (0.0 for an empty list, which benchmarks treat as absent)."""
    return float(np.mean(values)) if values else 0.0


def stddev(values: list[float]) -> float:
    """Sample standard deviation (0.0 when fewer than two values)."""
    return float(np.std(values, ddof=1)) if len(values) > 1 else 0.0


def bootstrap_confidence_interval(
    values: list[float],
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 61,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean of ``values``."""
    if not values:
        return (0.0, 0.0)
    if len(values) == 1:
        return (values[0], values[0])
    rng = SeededRNG(seed, namespace="bootstrap").generator
    data = np.asarray(values, dtype=np.float64)
    means = np.empty(resamples)
    for index in range(resamples):
        sample = rng.choice(data, size=len(data), replace=True)
        means[index] = sample.mean()
    lower = (1.0 - confidence) / 2.0
    upper = 1.0 - lower
    return (float(np.quantile(means, lower)), float(np.quantile(means, upper)))


def relative_change(before: float, after: float) -> float:
    """Relative change from ``before`` to ``after`` (0.0 when before is 0)."""
    if before == 0:
        return 0.0
    return (after - before) / abs(before)
