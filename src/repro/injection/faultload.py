"""Fault-load specification DSL.

A *fault load* is the programmable description of which faults to inject into
which parts of a system — the core abstraction of ProFIPy-style tools.  Each
:class:`FaultLoadEntry` names an operator, a function pattern it applies to,
optional operator parameters, and how many injection points to use.  Fault
loads serialise to and from plain dictionaries so campaigns can be stored next
to experiment results.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from ..errors import ConfigurationError
from .operators import InjectionPoint, get_operator


@dataclass
class FaultLoadEntry:
    """One programmable fault: operator + target pattern + parameters."""

    operator: str
    function_pattern: str = "*"
    parameters: dict[str, Any] = field(default_factory=dict)
    max_points: int = 1
    label: str | None = None

    def __post_init__(self) -> None:
        # Resolves eagerly so misspelled operator names fail at definition time.
        get_operator(self.operator)
        if self.max_points <= 0:
            raise ConfigurationError("max_points must be positive")

    def matches(self, point: InjectionPoint) -> bool:
        """Whether an injection point falls under this entry's function pattern."""
        return fnmatch.fnmatch(point.qualified_function, self.function_pattern) or fnmatch.fnmatch(
            point.function, self.function_pattern
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "operator": self.operator,
            "function_pattern": self.function_pattern,
            "parameters": dict(self.parameters),
            "max_points": self.max_points,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultLoadEntry":
        return cls(
            operator=data["operator"],
            function_pattern=data.get("function_pattern", "*"),
            parameters=dict(data.get("parameters", {})),
            max_points=int(data.get("max_points", 1)),
            label=data.get("label"),
        )


@dataclass
class FaultLoad:
    """An ordered collection of fault-load entries."""

    entries: list[FaultLoadEntry] = field(default_factory=list)
    name: str = "faultload"

    def add(
        self,
        operator: str,
        function_pattern: str = "*",
        parameters: Mapping[str, Any] | None = None,
        max_points: int = 1,
        label: str | None = None,
    ) -> "FaultLoad":
        """Append an entry and return ``self`` for fluent chaining."""
        self.entries.append(
            FaultLoadEntry(
                operator=operator,
                function_pattern=function_pattern,
                parameters=dict(parameters or {}),
                max_points=max_points,
                label=label,
            )
        )
        return self

    def __iter__(self) -> Iterator[FaultLoadEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def operators(self) -> list[str]:
        """Distinct operator names used by the fault load."""
        seen: list[str] = []
        for entry in self.entries:
            if entry.operator not in seen:
                seen.append(entry.operator)
        return seen

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "entries": [entry.to_dict() for entry in self.entries]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultLoad":
        return cls(
            name=data.get("name", "faultload"),
            entries=[FaultLoadEntry.from_dict(entry) for entry in data.get("entries", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultLoad":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_entries(cls, entries: Iterable[FaultLoadEntry], name: str = "faultload") -> "FaultLoad":
        return cls(entries=list(entries), name=name)
