"""AST helpers shared by the fault operators and the code-generation grammar.

The injection engine works exclusively on :mod:`ast` trees and re-renders them
with :func:`ast.unparse`, so every mutation is guaranteed to be syntactically
valid Python — an invariant the grammar-constrained decoder relies on.
"""

from __future__ import annotations

import ast
import copy
from typing import Iterable, Iterator

from ..errors import CodeAnalysisError
from ..execution.cache import get_cache

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: Memoizes parsed trees by source hash.  ``misses`` counts actual parses.
PARSE_CACHE = get_cache("ast-parse")


def parse_module(source: str, path: str | None = None, *, mutable: bool = True) -> ast.Module:
    """Parse ``source`` into a module AST, raising :class:`CodeAnalysisError` on failure.

    With ``mutable=False`` the returned tree comes from a process-wide cache
    keyed on the source hash, so N analyses of one module parse it once.  The
    cached tree is shared: callers taking this path must treat it as
    read-only.  The default behaviour (``mutable=True``) returns a fresh,
    privately owned parse, as the injection operators mutate trees in place.
    """
    if not mutable:
        return PARSE_CACHE.get_or_compute(
            PARSE_CACHE.key_for(source), lambda: _parse(source, path)
        )
    return _parse(source, path)


def _parse(source: str, path: str | None) -> ast.Module:
    try:
        return ast.parse(source)
    except SyntaxError as exc:
        raise CodeAnalysisError(f"target code is not valid Python: {exc}", source_path=path) from exc


def normalised_source(source: str, path: str | None = None) -> str:
    """``source`` round-tripped through parse/unparse (cached by source hash).

    Operators compare their output against this normal form to detect no-op
    mutations; memoizing it means a planning pass over one module normalises
    it once instead of once per applied fault.
    """
    cache = get_cache("ast-normalise")
    return cache.get_or_compute(cache.key_for(source), lambda: unparse(_parse(source, path)))


def unparse(tree: ast.AST) -> str:
    """Render an AST back to source text with a trailing newline."""
    text = ast.unparse(ast.fix_missing_locations(tree))
    if not text.endswith("\n"):
        text += "\n"
    return text


def copy_tree(tree: ast.AST) -> ast.AST:
    """Deep-copy an AST so mutations never alias the caller's tree."""
    return copy.deepcopy(tree)


def iter_functions(tree: ast.Module) -> Iterator[tuple[FunctionNode, str | None]]:
    """Yield every (function node, enclosing class name) pair in the module."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield child, node.name


def find_function(tree: ast.Module, name: str) -> FunctionNode | None:
    """Find a function by bare name or ``Class.method`` qualified name."""
    for node, class_name in iter_functions(tree):
        qualified = f"{class_name}.{node.name}" if class_name else node.name
        if node.name == name or qualified == name:
            return node
    return None


def function_names(tree: ast.Module) -> list[str]:
    """Qualified names of all functions defined in the module."""
    names = []
    for node, class_name in iter_functions(tree):
        names.append(f"{class_name}.{node.name}" if class_name else node.name)
    return names


def function_source(source: str, name: str) -> str:
    """Extract the source text of a single function from a module."""
    tree = parse_module(source, mutable=False)
    node = find_function(tree, name)
    if node is None:
        raise CodeAnalysisError(f"function {name!r} not found in target code")
    segment = ast.get_source_segment(source, node)
    if segment is None:
        segment = unparse(node)
    return segment


def replace_function(tree: ast.Module, replacement: FunctionNode) -> ast.Module:
    """Return a copy of ``tree`` with the function of the same name replaced."""
    new_tree = copy_tree(tree)
    replaced = False
    for node, _class_name in iter_functions(new_tree):
        if node.name == replacement.name:
            node.args = replacement.args
            node.body = replacement.body
            node.decorator_list = replacement.decorator_list
            replaced = True
            break
    if not replaced:
        new_tree.body.append(replacement)
    return ast.fix_missing_locations(new_tree)


def replace_function_source(module_source: str, function_name: str, new_function_source: str) -> str:
    """Replace one function definition inside a module with new source text.

    The replacement text must itself parse to a module containing exactly one
    function definition whose name matches ``function_name``.
    """
    replacement_tree = parse_module(new_function_source)
    functions = [n for n, _cls in iter_functions(replacement_tree)]
    if len(functions) != 1:
        raise CodeAnalysisError("replacement source must define exactly one function")
    replacement = functions[0]
    if replacement.name != function_name.split(".")[-1]:
        raise CodeAnalysisError(
            f"replacement defines {replacement.name!r}, expected {function_name!r}"
        )
    tree = parse_module(module_source)
    target = find_function(tree, function_name)
    if target is None:
        raise CodeAnalysisError(f"function {function_name!r} not found in target module")
    target.args = replacement.args
    target.body = replacement.body
    return unparse(tree)


def ensure_import(tree: ast.Module, module_name: str) -> ast.Module:
    """Return ``tree`` with a top-level ``import module_name`` guaranteed."""
    for node in tree.body:
        if isinstance(node, ast.Import) and any(alias.name == module_name for alias in node.names):
            return tree
        if isinstance(node, ast.ImportFrom) and node.module == module_name:
            return tree
    import_node = ast.Import(names=[ast.alias(name=module_name, asname=None)])
    insert_at = 0
    if tree.body and isinstance(tree.body[0], ast.Expr) and isinstance(tree.body[0].value, ast.Constant):
        insert_at = 1  # keep a module docstring first
    tree.body.insert(insert_at, import_node)
    return ast.fix_missing_locations(tree)


def statement_nodes(function: FunctionNode) -> list[ast.stmt]:
    """Flat list of every statement node nested anywhere inside a function."""
    collected: list[ast.stmt] = []

    def visit(statements: Iterable[ast.stmt]) -> None:
        for statement in statements:
            collected.append(statement)
            for field_name in ("body", "orelse", "finalbody"):
                nested = getattr(statement, field_name, None)
                if nested:
                    visit(nested)
            handlers = getattr(statement, "handlers", None)
            if handlers:
                for handler in handlers:
                    visit(handler.body)

    visit(function.body)
    return collected


def iter_statement_slots(function: FunctionNode) -> Iterator[tuple[list[ast.stmt], int, ast.stmt]]:
    """Yield (body list, index, statement) for every statement slot in a function.

    Operators that need to replace or delete a statement use the returned body
    list and index to mutate the tree in place; enumeration order is stable for
    a given source text, so slots can be re-identified after re-parsing.
    """

    def visit(body: list[ast.stmt]) -> Iterator[tuple[list[ast.stmt], int, ast.stmt]]:
        for index, statement in enumerate(body):
            yield body, index, statement
            for field_name in ("body", "orelse", "finalbody"):
                nested = getattr(statement, field_name, None)
                if isinstance(nested, list) and nested:
                    yield from visit(nested)
            handlers = getattr(statement, "handlers", None)
            if handlers:
                for handler in handlers:
                    yield from visit(handler.body)

    yield from visit(function.body)


def contains_node_type(function: FunctionNode, node_type: type) -> bool:
    """Whether any node of ``node_type`` appears inside the function."""
    return any(isinstance(node, node_type) for node in ast.walk(function))


def call_names(node: ast.AST) -> list[str]:
    """Names of every function/method called anywhere under ``node``."""
    names: list[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            names.append(call_name(child))
    return [name for name in names if name]


def call_name(call: ast.Call) -> str:
    """Best-effort dotted name of a call expression (empty string if dynamic)."""
    func = call.func
    parts: list[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        return ".".join(reversed(parts))
    return ""


def perturb_constant(value, magnitude: int = 1):
    """Return a plausibly wrong value of the same type as ``value``.

    Used by wrong-value / wrong-argument / off-by-one style operators so that
    mutations stay type-compatible and therefore activate rather than crash at
    the call boundary.
    """
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + magnitude
    if isinstance(value, float):
        return value * 2.0 + float(magnitude)
    if isinstance(value, str):
        return value + "_corrupted" if value else "corrupted"
    if value is None:
        return 0
    return value


def make_raise(exception_name: str, message: str) -> ast.Raise:
    """Build a ``raise ExceptionName("message")`` statement node."""
    return ast.Raise(
        exc=ast.Call(
            func=ast.Name(id=exception_name, ctx=ast.Load()),
            args=[ast.Constant(value=message)],
            keywords=[],
        ),
        cause=None,
    )


def make_print(message: str, *extra: ast.expr) -> ast.Expr:
    """Build a ``print("message", ...)`` statement node."""
    return ast.Expr(
        value=ast.Call(
            func=ast.Name(id="print", ctx=ast.Load()),
            args=[ast.Constant(value=message), *extra],
            keywords=[],
        )
    )


def make_sleep(seconds: float) -> ast.Expr:
    """Build a ``time.sleep(seconds)`` statement node."""
    return ast.Expr(
        value=ast.Call(
            func=ast.Attribute(value=ast.Name(id="time", ctx=ast.Load()), attr="sleep", ctx=ast.Load()),
            args=[ast.Constant(value=seconds)],
            keywords=[],
        )
    )


def is_docstring(statement: ast.stmt) -> bool:
    """Whether a statement is a bare string literal (function/module docstring)."""
    return (
        isinstance(statement, ast.Expr)
        and isinstance(statement.value, ast.Constant)
        and isinstance(statement.value.value, str)
    )


def body_insert_index(function: FunctionNode) -> int:
    """Index at which new statements should be inserted at the top of a body."""
    if function.body and is_docstring(function.body[0]):
        return 1
    return 0
