"""Fault operators targeting concurrency: removed locks and widened race windows."""

from __future__ import annotations

import ast
from typing import Any

from ...errors import NoInjectionPointError
from ...rng import SeededRNG
from ...types import FaultType
from .. import ast_utils
from .base import FaultOperator, InjectionPoint

_LOCK_HINTS = ("lock", "mutex", "semaphore", "rlock", "guard")


def _looks_like_lock(expression: ast.expr) -> bool:
    """Heuristic: does the with-item expression reference a lock-like object?"""
    text = ast.unparse(expression).lower()
    return any(hint in text for hint in _LOCK_HINTS)


class RemoveLockOperator(FaultOperator):
    """Remove a ``with lock:`` block, keeping its body (classic race condition)."""

    name = "remove_lock"
    fault_type = FaultType.RACE_CONDITION
    summary = "race condition caused by a missing lock"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[tuple[list[ast.stmt], int, ast.With]]:
        slots = []
        for body, index, statement in ast_utils.iter_statement_slots(function):
            if isinstance(statement, ast.With) and any(
                _looks_like_lock(item.context_expr) for item in statement.items
            ):
                slots.append((body, index, statement))
        return slots

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=statement.lineno,
                node_index=index,
                detail=ast.unparse(statement.items[0].context_expr),
                class_name=class_name,
            )
            for index, (_body, _slot, statement) in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("lock-protected block no longer present", operator=self.name)
        body, slot, statement = candidates[point.node_index]
        body[slot : slot + 1] = statement.body

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Introduce a race condition in the {point.qualified_function} function by removing "
            f"the '{point.detail}' synchronisation around its critical section."
        )


class RaceWindowOperator(FaultOperator):
    """Insert a small sleep inside a critical section to widen race windows."""

    name = "widen_race_window"
    fault_type = FaultType.RACE_CONDITION
    summary = "widened race window between concurrent operations"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.stmt]:
        candidates: list[ast.stmt] = []
        for node in ast.walk(function):
            if isinstance(node, ast.With):
                candidates.append(node)
            elif isinstance(node, (ast.For, ast.While)):
                candidates.append(node)
        return candidates

    def _find_in_function(self, function, class_name):
        points = [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=node.lineno,
                node_index=index,
                detail=type(node).__name__.lower(),
                class_name=class_name,
            )
            for index, node in enumerate(self._candidates(function))
        ]
        if not points:
            points = [
                InjectionPoint(
                    operator=self.name,
                    function=function.name,
                    lineno=function.lineno,
                    node_index=len(self._candidates(function)),
                    detail="body",
                    class_name=class_name,
                )
            ]
        return points

    def _mutate(self, tree, function, point, rng, parameters):
        seconds = float(parameters.get("seconds", 0.001))
        candidates = self._candidates(function)
        sleep_statement = ast_utils.make_sleep(seconds)
        if point.node_index < len(candidates):
            container = candidates[point.node_index]
            container.body.insert(0, sleep_statement)
        else:
            function.body.insert(ast_utils.body_insert_index(function), sleep_statement)
        ast_utils.ensure_import(tree, "time")

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Widen the race window in the {point.qualified_function} function by delaying "
            "execution inside its critical section."
        )


class SkipAtomicUpdateOperator(FaultOperator):
    """Split a compound (read-modify-write) update so it is no longer atomic."""

    name = "split_atomic_update"
    fault_type = FaultType.RACE_CONDITION
    summary = "non-atomic read-modify-write update"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[tuple[list[ast.stmt], int, ast.AugAssign]]:
        slots = []
        for body, index, statement in ast_utils.iter_statement_slots(function):
            if isinstance(statement, ast.AugAssign) and isinstance(
                statement.target, (ast.Name, ast.Attribute, ast.Subscript)
            ):
                slots.append((body, index, statement))
        return slots

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=statement.lineno,
                node_index=index,
                detail=ast.unparse(statement),
                class_name=class_name,
            )
            for index, (_body, _slot, statement) in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("augmented assignment no longer present", operator=self.name)
        body, slot, statement = candidates[point.node_index]
        target_load = ast_utils.copy_tree(statement.target)
        for node in ast.walk(target_load):
            if hasattr(node, "ctx"):
                node.ctx = ast.Load()
        read = ast.Assign(
            targets=[ast.Name(id="_injected_snapshot", ctx=ast.Store())],
            value=ast.BinOp(left=target_load, op=statement.op, right=statement.value),
        )
        sleep = ast_utils.make_sleep(float(parameters.get("seconds", 0.001)))
        write = ast.Assign(
            targets=[statement.target],
            value=ast.Name(id="_injected_snapshot", ctx=ast.Load()),
        )
        body[slot : slot + 1] = [read, sleep, write]
        ast_utils.ensure_import(tree, "time")

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Replace the atomic update '{point.detail}' in the {point.qualified_function} "
            "function with a non-atomic read-modify-write sequence, allowing lost updates when "
            "threads interleave."
        )
