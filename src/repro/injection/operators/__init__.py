"""Fault operator library and registry.

The registry maps operator names to singleton instances and fault types to the
operators able to realise them.  The LLM's code-generation grammar, the
predefined-model baseline, and the dataset generator all draw from the same
registry, so every subsystem shares one fault vocabulary.
"""

from __future__ import annotations

from ...errors import InjectionError
from ...types import FaultType
from .base import AppliedFault, FaultOperator, InjectionPoint
from .assignment import RemoveAssignmentOperator, WrongValueAssignmentOperator
from .branching import NegateConditionOperator, RelaxComparisonOperator, RemoveIfGuardOperator
from .calls import RemoveCallOperator, SwapArgumentsOperator, WrongArgumentOperator
from .concurrency import RaceWindowOperator, RemoveLockOperator, SkipAtomicUpdateOperator
from .data import (
    ArithmeticCorruptionOperator,
    DiskFailureOperator,
    NetworkFailureOperator,
    ReturnCorruptionOperator,
)
from .exceptions import (
    RaiseExceptionOperator,
    RemoveRaiseOperator,
    SwallowExceptionOperator,
    WrongExceptionTypeOperator,
)
from .loops import EarlyLoopExitOperator, InfiniteLoopOperator, OffByOneOperator
from .resources import ResourceLeakOperator, SkipCleanupOnErrorOperator, UnboundedGrowthOperator
from .returns import RemoveReturnOperator, WrongReturnValueOperator
from .timing import DelayOperator, IntermittentTimeoutOperator, TimeoutFaultOperator

_OPERATOR_CLASSES: list[type[FaultOperator]] = [
    NegateConditionOperator,
    RemoveIfGuardOperator,
    RelaxComparisonOperator,
    RemoveCallOperator,
    WrongArgumentOperator,
    SwapArgumentsOperator,
    WrongReturnValueOperator,
    RemoveReturnOperator,
    WrongValueAssignmentOperator,
    RemoveAssignmentOperator,
    RaiseExceptionOperator,
    SwallowExceptionOperator,
    RemoveRaiseOperator,
    WrongExceptionTypeOperator,
    OffByOneOperator,
    EarlyLoopExitOperator,
    InfiniteLoopOperator,
    RemoveLockOperator,
    RaceWindowOperator,
    SkipAtomicUpdateOperator,
    ResourceLeakOperator,
    UnboundedGrowthOperator,
    SkipCleanupOnErrorOperator,
    DelayOperator,
    TimeoutFaultOperator,
    IntermittentTimeoutOperator,
    ArithmeticCorruptionOperator,
    ReturnCorruptionOperator,
    NetworkFailureOperator,
    DiskFailureOperator,
]

OPERATOR_REGISTRY: dict[str, FaultOperator] = {cls.name: cls() for cls in _OPERATOR_CLASSES}


def all_operators() -> list[FaultOperator]:
    """Every registered operator instance, in registration order."""
    return list(OPERATOR_REGISTRY.values())


def operator_names() -> list[str]:
    """Names of every registered operator."""
    return list(OPERATOR_REGISTRY.keys())


def get_operator(name: str) -> FaultOperator:
    """Look up an operator by name, raising :class:`InjectionError` if unknown."""
    try:
        return OPERATOR_REGISTRY[name]
    except KeyError as exc:
        raise InjectionError(f"unknown fault operator {name!r}", operator=name) from exc


def operators_for_fault_type(fault_type: FaultType) -> list[FaultOperator]:
    """Operators able to realise faults of the given type."""
    return [op for op in OPERATOR_REGISTRY.values() if op.fault_type is fault_type]


def fault_type_coverage() -> dict[FaultType, list[str]]:
    """Mapping of fault type to the operator names that realise it."""
    coverage: dict[FaultType, list[str]] = {}
    for operator in OPERATOR_REGISTRY.values():
        coverage.setdefault(operator.fault_type, []).append(operator.name)
    return coverage


__all__ = [
    "AppliedFault",
    "FaultOperator",
    "InjectionPoint",
    "OPERATOR_REGISTRY",
    "all_operators",
    "operator_names",
    "get_operator",
    "operators_for_fault_type",
    "fault_type_coverage",
]
