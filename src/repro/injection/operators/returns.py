"""Fault operators on return statements."""

from __future__ import annotations

import ast
from typing import Any

from ...errors import NoInjectionPointError
from ...rng import SeededRNG
from ...types import FaultType
from .. import ast_utils
from .base import FaultOperator, InjectionPoint


class WrongReturnValueOperator(FaultOperator):
    """Return a wrong (perturbed or ``None``) value from a function."""

    name = "wrong_return_value"
    fault_type = FaultType.WRONG_RETURN
    summary = "wrong return value"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.Return]:
        return [
            node
            for node in ast.walk(function)
            if isinstance(node, ast.Return) and node.value is not None
        ]

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=node.lineno,
                node_index=index,
                detail=ast.unparse(node.value),
                class_name=class_name,
            )
            for index, node in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("return statement no longer present", operator=self.name)
        node = candidates[point.node_index]
        if isinstance(node.value, ast.Constant):
            node.value = ast.Constant(
                value=ast_utils.perturb_constant(node.value.value, int(parameters.get("magnitude", 1)))
            )
        else:
            node.value = ast.Constant(value=None)

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Make the {point.qualified_function} function return a wrong value instead of "
            f"'{point.detail}'."
        )


class RemoveReturnOperator(FaultOperator):
    """Drop a return statement so the function falls through (missing return)."""

    name = "remove_return"
    fault_type = FaultType.MISSING_RETURN
    summary = "missing return statement"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[tuple[list[ast.stmt], int, ast.Return]]:
        slots = []
        for body, index, statement in ast_utils.iter_statement_slots(function):
            if isinstance(statement, ast.Return) and statement.value is not None:
                slots.append((body, index, statement))
        return slots

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=statement.lineno,
                node_index=index,
                detail=ast.unparse(statement.value) if statement.value else "",
                class_name=class_name,
            )
            for index, (_body, _slot, statement) in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("return statement no longer present", operator=self.name)
        body, slot, statement = candidates[point.node_index]
        # Keep the evaluated expression so side effects remain, but drop the return.
        body[slot] = ast.Expr(value=statement.value)

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Remove the return of '{point.detail}' from the {point.qualified_function} function "
            "so that it implicitly returns None."
        )
