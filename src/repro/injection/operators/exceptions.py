"""Fault operators on exception raising and handling."""

from __future__ import annotations

import ast
from typing import Any

from ...errors import NoInjectionPointError
from ...rng import SeededRNG
from ...types import FaultType
from .. import ast_utils
from .base import FaultOperator, InjectionPoint


class RaiseExceptionOperator(FaultOperator):
    """Inject an unconditional ``raise`` at the top of a function body."""

    name = "raise_exception"
    fault_type = FaultType.EXCEPTION
    summary = "unhandled exception"

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=function.lineno,
                node_index=0,
                detail="body_start",
                class_name=class_name,
            )
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        exception_name = parameters.get("exception", "RuntimeError")
        message = parameters.get("message", f"injected fault in {function.name}")
        insert_at = ast_utils.body_insert_index(function)
        function.body.insert(insert_at, ast_utils.make_raise(exception_name, message))

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        exception_name = parameters.get("exception", "RuntimeError")
        return (
            f"Simulate a scenario where the {point.qualified_function} function fails with an "
            f"unhandled {exception_name}."
        )


class SwallowExceptionOperator(FaultOperator):
    """Replace an exception handler body with ``pass`` (error silently swallowed)."""

    name = "swallow_exception"
    fault_type = FaultType.SWALLOWED_EXCEPTION
    summary = "silently swallowed exception"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.ExceptHandler]:
        handlers = []
        for node in ast.walk(function):
            if isinstance(node, ast.Try):
                handlers.extend(node.handlers)
        return handlers

    def _find_in_function(self, function, class_name):
        points = []
        for index, handler in enumerate(self._candidates(function)):
            caught = ast.unparse(handler.type) if handler.type is not None else "Exception"
            points.append(
                InjectionPoint(
                    operator=self.name,
                    function=function.name,
                    lineno=handler.lineno,
                    node_index=index,
                    detail=caught,
                    class_name=class_name,
                )
            )
        return points

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("exception handler no longer present", operator=self.name)
        handler = candidates[point.node_index]
        handler.body = [ast.Pass()]

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Silently swallow {point.detail} exceptions in the {point.qualified_function} "
            "function instead of handling them."
        )


class RemoveRaiseOperator(FaultOperator):
    """Remove a ``raise`` statement so errors are no longer propagated."""

    name = "remove_raise"
    fault_type = FaultType.SWALLOWED_EXCEPTION
    summary = "error no longer reported to the caller"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[tuple[list[ast.stmt], int, ast.Raise]]:
        slots = []
        for body, index, statement in ast_utils.iter_statement_slots(function):
            if isinstance(statement, ast.Raise):
                slots.append((body, index, statement))
        return slots

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=statement.lineno,
                node_index=index,
                detail=ast.unparse(statement),
                class_name=class_name,
            )
            for index, (_body, _slot, statement) in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("raise statement no longer present", operator=self.name)
        body, slot, _statement = candidates[point.node_index]
        body[slot] = ast.Pass()

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Remove the error propagation '{point.detail}' from the {point.qualified_function} "
            "function so that invalid states go unreported."
        )


class WrongExceptionTypeOperator(FaultOperator):
    """Catch a broader exception type than intended (masks unrelated errors)."""

    name = "broad_except"
    fault_type = FaultType.SWALLOWED_EXCEPTION
    summary = "overly broad exception handler"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.ExceptHandler]:
        handlers = []
        for node in ast.walk(function):
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    if handler.type is not None and not (
                        isinstance(handler.type, ast.Name) and handler.type.id == "Exception"
                    ):
                        handlers.append(handler)
        return handlers

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=handler.lineno,
                node_index=index,
                detail=ast.unparse(handler.type) if handler.type is not None else "Exception",
                class_name=class_name,
            )
            for index, handler in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("typed exception handler no longer present", operator=self.name)
        handler = candidates[point.node_index]
        handler.type = ast.Name(id="Exception", ctx=ast.Load())

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Broaden the handler for {point.detail} in the {point.qualified_function} function "
            "to catch every exception, masking unrelated errors."
        )
