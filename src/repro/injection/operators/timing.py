"""Fault operators for timing-related faults: delays and timeouts."""

from __future__ import annotations

import ast
from typing import Any

from ...rng import SeededRNG
from ...types import FaultType
from .. import ast_utils
from .base import FaultOperator, InjectionPoint


class DelayOperator(FaultOperator):
    """Insert a latency spike (``time.sleep``) at the top of a function."""

    name = "inject_delay"
    fault_type = FaultType.DELAY
    summary = "latency spike"

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=function.lineno,
                node_index=0,
                detail="body_start",
                class_name=class_name,
            )
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        seconds = float(parameters.get("seconds", 0.05))
        function.body.insert(ast_utils.body_insert_index(function), ast_utils.make_sleep(seconds))
        ast_utils.ensure_import(tree, "time")

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        seconds = parameters.get("seconds", 0.05)
        return (
            f"Introduce a delay of {seconds} seconds in the {point.qualified_function} function "
            "to simulate a slow dependency."
        )


class TimeoutFaultOperator(FaultOperator):
    """Raise ``TimeoutError`` to emulate an operation exceeding its deadline."""

    name = "raise_timeout"
    fault_type = FaultType.TIMEOUT
    summary = "operation timeout"

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=function.lineno,
                node_index=0,
                detail="body_start",
                class_name=class_name,
            )
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        message = parameters.get("message", f"{function.name} timed out")
        insert_at = ast_utils.body_insert_index(function)
        function.body.insert(insert_at, ast_utils.make_raise("TimeoutError", message))

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Simulate a scenario where an operation in the {point.qualified_function} function "
            "fails due to a timeout, causing an unhandled exception."
        )


class IntermittentTimeoutOperator(FaultOperator):
    """Raise ``TimeoutError`` only on every N-th invocation (transient failure)."""

    name = "intermittent_timeout"
    fault_type = FaultType.TIMEOUT
    summary = "intermittent timeout on some invocations"

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=function.lineno,
                node_index=0,
                detail="body_start",
                class_name=class_name,
            )
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        nth = int(parameters.get("nth_call", 3))
        message = parameters.get("message", f"{function.name} timed out")
        snippet = (
            "_injected_calls = globals().setdefault('_injected_call_counts', {})\n"
            f"_injected_calls['{function.name}'] = _injected_calls.get('{function.name}', 0) + 1\n"
            f"if _injected_calls['{function.name}'] % {nth} == 0:\n"
            f"    raise TimeoutError({message!r})\n"
        )
        statements = ast.parse(snippet).body
        insert_at = ast_utils.body_insert_index(function)
        function.body[insert_at:insert_at] = statements

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        nth = parameters.get("nth_call", 3)
        return (
            f"Make every {nth}th call to the {point.qualified_function} function fail with a "
            "timeout, simulating a transient dependency failure."
        )
