"""Fault operators on loops: off-by-one bounds, early exits, unbounded loops."""

from __future__ import annotations

import ast
from typing import Any

from ...errors import NoInjectionPointError
from ...rng import SeededRNG
from ...types import FaultType
from .. import ast_utils
from .base import FaultOperator, InjectionPoint


class OffByOneOperator(FaultOperator):
    """Shift a ``range`` bound or constant subscript index by one."""

    name = "off_by_one"
    fault_type = FaultType.OFF_BY_ONE
    summary = "off-by-one error"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.expr]:
        candidates: list[ast.expr] = []
        for node in ast.walk(function):
            if isinstance(node, ast.Call) and ast_utils.call_name(node) == "range" and node.args:
                for arg in node.args:
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                        candidates.append(arg)
                    elif isinstance(arg, (ast.Name, ast.Attribute, ast.Call)):
                        candidates.append(arg)
            elif isinstance(node, ast.Subscript):
                if isinstance(node.slice, ast.Constant) and isinstance(node.slice.value, int):
                    candidates.append(node.slice)
        return candidates

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=getattr(node, "lineno", function.lineno),
                node_index=index,
                detail=ast.unparse(node),
                class_name=class_name,
            )
            for index, node in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("loop bound no longer present", operator=self.name)
        node = candidates[point.node_index]
        delta = int(parameters.get("delta", 1))
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            node.value = node.value + delta
        else:
            # Wrap non-constant bounds in `bound + delta` without changing types.
            replacement = ast.BinOp(
                left=ast_utils.copy_tree(node), op=ast.Add(), right=ast.Constant(value=delta)
            )
            self._replace_expr(function, node, replacement)

    @staticmethod
    def _replace_expr(function: ast_utils.FunctionNode, old: ast.expr, new: ast.expr) -> None:
        for parent in ast.walk(function):
            for field_name, value in ast.iter_fields(parent):
                if value is old:
                    setattr(parent, field_name, new)
                    return
                if isinstance(value, list):
                    for index, item in enumerate(value):
                        if item is old:
                            value[index] = new
                            return

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Introduce an off-by-one error on the bound '{point.detail}' in the "
            f"{point.qualified_function} function."
        )


class EarlyLoopExitOperator(FaultOperator):
    """Insert a ``break`` at the start of a loop body so it runs at most once."""

    name = "early_loop_exit"
    fault_type = FaultType.OFF_BY_ONE
    summary = "loop terminating too early"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.stmt]:
        return [node for node in ast.walk(function) if isinstance(node, (ast.For, ast.While))]

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=node.lineno,
                node_index=index,
                detail="for" if isinstance(node, ast.For) else "while",
                class_name=class_name,
            )
            for index, node in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("loop no longer present", operator=self.name)
        loop = candidates[point.node_index]
        loop.body.append(ast.Break())

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Make the {point.detail} loop in the {point.qualified_function} function exit after "
            "its first iteration, so later items are silently skipped."
        )


class InfiniteLoopOperator(FaultOperator):
    """Turn a ``while`` condition into ``True``, creating a potential hang."""

    name = "infinite_loop"
    fault_type = FaultType.INFINITE_LOOP
    summary = "non-terminating loop"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.While]:
        return [
            node
            for node in ast.walk(function)
            if isinstance(node, ast.While)
            and not (isinstance(node.test, ast.Constant) and node.test.value is True)
        ]

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=node.lineno,
                node_index=index,
                detail=ast.unparse(node.test),
                class_name=class_name,
            )
            for index, node in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("while loop no longer present", operator=self.name)
        loop = candidates[point.node_index]
        loop.test = ast.Constant(value=True)
        # Also strip break statements directly in the loop body so the loop
        # genuinely fails to terminate rather than exiting on the first break.
        loop.body = [s for s in loop.body if not isinstance(s, ast.Break)] or [ast.Pass()]

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Make the loop guarded by '{point.detail}' in the {point.qualified_function} "
            "function spin forever, causing the operation to hang."
        )
