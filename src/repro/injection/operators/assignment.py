"""Fault operators on assignments (wrong or missing variable initialisation)."""

from __future__ import annotations

import ast
from typing import Any

from ...errors import NoInjectionPointError
from ...rng import SeededRNG
from ...types import FaultType
from .. import ast_utils
from .base import FaultOperator, InjectionPoint


class WrongValueAssignmentOperator(FaultOperator):
    """Assign a perturbed literal to a variable (wrong value used in computation)."""

    name = "wrong_value_assignment"
    fault_type = FaultType.WRONG_VALUE
    summary = "wrong value assigned to a variable"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.Assign]:
        return [
            node
            for node in ast.walk(function)
            if isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Constant)
            and not isinstance(node.value.value, bytes)
        ]

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=node.lineno,
                node_index=index,
                detail=ast.unparse(node.targets[0]),
                class_name=class_name,
            )
            for index, node in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("constant assignment no longer present", operator=self.name)
        node = candidates[point.node_index]
        magnitude = int(parameters.get("magnitude", 1))
        node.value = ast.Constant(value=ast_utils.perturb_constant(node.value.value, magnitude))

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Assign a wrong value to '{point.detail}' in the {point.qualified_function} function."
        )


class RemoveAssignmentOperator(FaultOperator):
    """Remove a variable assignment entirely (missing initialisation)."""

    name = "remove_assignment"
    fault_type = FaultType.WRONG_VALUE
    summary = "missing variable assignment"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[tuple[list[ast.stmt], int, ast.stmt]]:
        slots = []
        for body, index, statement in ast_utils.iter_statement_slots(function):
            if isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
                slots.append((body, index, statement))
            elif isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                # Only remove re-assignments of simple names; removing the first
                # binding would raise NameError and turn every run into a crash,
                # which is a much less interesting (and less residual) fault.
                target = statement.targets[0]
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    slots.append((body, index, statement))
        return slots

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=statement.lineno,
                node_index=index,
                detail=ast.unparse(statement).splitlines()[0],
                class_name=class_name,
            )
            for index, (_body, _slot, statement) in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("assignment no longer present", operator=self.name)
        body, slot, _statement = candidates[point.node_index]
        if len([s for s in body if not isinstance(s, ast.Pass)]) <= 1:
            body[slot] = ast.Pass()
        else:
            del body[slot]

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Omit the state update '{point.detail}' in the {point.qualified_function} function."
        )
