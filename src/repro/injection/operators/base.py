"""Fault operator framework.

A :class:`FaultOperator` knows how to (1) enumerate the locations in a piece of
Python code where it can be applied (:meth:`find_points`), (2) apply itself at
one such location to produce mutated source (:meth:`apply`), and (3) describe
the injected fault in natural language (:meth:`describe`).  The third ability
is what lets the injection engine double as the *dataset generator* of
Section IV-1: every injected fault yields an (NL description, original code,
faulty code) training triple.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from ...errors import InjectionError, NoInjectionPointError
from ...rng import SeededRNG
from ...types import FaultType, Patch
from .. import ast_utils


@dataclass(frozen=True)
class InjectionPoint:
    """A concrete location where an operator can inject a fault."""

    operator: str
    function: str
    lineno: int
    node_index: int
    detail: str = ""
    class_name: str | None = None

    @property
    def qualified_function(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.function}"
        return self.function

    def to_dict(self) -> dict[str, Any]:
        return {
            "operator": self.operator,
            "function": self.function,
            "lineno": self.lineno,
            "node_index": self.node_index,
            "detail": self.detail,
            "class_name": self.class_name,
        }


@dataclass
class AppliedFault:
    """The result of applying a fault operator: a patch plus its description."""

    operator: str
    fault_type: FaultType
    point: InjectionPoint
    patch: Patch
    description: str
    parameters: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "operator": self.operator,
            "fault_type": self.fault_type.value,
            "point": self.point.to_dict(),
            "patch": self.patch.to_dict(),
            "description": self.description,
            "parameters": dict(self.parameters),
        }


class FaultOperator(ABC):
    """Base class for AST-level software fault operators."""

    #: unique operator identifier, e.g. ``"negate_condition"``
    name: str = "abstract"
    #: the fault-type category the operator realises
    fault_type: FaultType = FaultType.UNKNOWN
    #: one-line human summary used in documentation and reports
    summary: str = ""

    def find_points(self, source: str) -> list[InjectionPoint]:
        """Enumerate every location in ``source`` where the operator applies."""
        tree = ast_utils.parse_module(source, mutable=False)
        points: list[InjectionPoint] = []
        for function, class_name in ast_utils.iter_functions(tree):
            points.extend(self._find_in_function(function, class_name))
        return points

    @abstractmethod
    def _find_in_function(
        self, function: ast_utils.FunctionNode, class_name: str | None
    ) -> list[InjectionPoint]:
        """Enumerate injection points inside a single function."""

    @abstractmethod
    def _mutate(
        self,
        tree: ast.Module,
        function: ast_utils.FunctionNode,
        point: InjectionPoint,
        rng: SeededRNG,
        parameters: dict[str, Any],
    ) -> None:
        """Mutate ``function`` (part of ``tree``) in place at ``point``."""

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        """Natural-language description of the fault injected at ``point``."""
        summary = self.summary or self.name.replace("_", " ")
        return f"Introduce a {summary} in the {point.qualified_function} function."

    def apply(
        self,
        source: str,
        point: InjectionPoint,
        rng: SeededRNG | None = None,
        parameters: dict[str, Any] | None = None,
        target_path: str | None = None,
    ) -> AppliedFault:
        """Apply the operator at ``point`` and return the resulting fault."""
        if point.operator != self.name:
            raise InjectionError(
                f"point was produced by operator {point.operator!r}", operator=self.name
            )
        rng = rng or SeededRNG(0, namespace=self.name)
        parameters = dict(parameters or {})
        tree = ast_utils.parse_module(source, path=target_path)
        function = self._locate_function(tree, point)
        self._mutate(tree, function, point, rng, parameters)
        mutated = ast_utils.unparse(tree)
        if mutated == source or mutated == ast_utils.normalised_source(source):
            raise InjectionError(
                f"operator {self.name} produced no change at {point.qualified_function}:{point.lineno}",
                operator=self.name,
            )
        patch = Patch(
            original=source,
            mutated=mutated,
            target_path=target_path,
            function=point.qualified_function,
            lineno=point.lineno,
            operator=self.name,
        )
        return AppliedFault(
            operator=self.name,
            fault_type=self.fault_type,
            point=point,
            patch=patch,
            description=self.describe(point, parameters),
            parameters=parameters,
        )

    def _locate_function(self, tree: ast.Module, point: InjectionPoint) -> ast_utils.FunctionNode:
        for function, class_name in ast_utils.iter_functions(tree):
            if function.name == point.function and class_name == point.class_name:
                return function
        raise NoInjectionPointError(
            f"function {point.qualified_function!r} not present in source", operator=self.name
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} fault_type={self.fault_type.value!r}>"


def executable_statements(function: ast_utils.FunctionNode) -> list[tuple[int, ast.stmt]]:
    """Top-level executable statements of a function body (skipping docstrings)."""
    statements = []
    for index, statement in enumerate(function.body):
        if ast_utils.is_docstring(statement):
            continue
        statements.append((index, statement))
    return statements
