"""Fault operators on function calls: missing calls and wrong arguments."""

from __future__ import annotations

import ast
from typing import Any

from ...errors import NoInjectionPointError
from ...rng import SeededRNG
from ...types import FaultType
from .. import ast_utils
from .base import FaultOperator, InjectionPoint


class RemoveCallOperator(FaultOperator):
    """Remove a statement-level function call (missing function call fault)."""

    name = "remove_call"
    fault_type = FaultType.MISSING_CALL
    summary = "missing function call"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[tuple[list[ast.stmt], int, ast.Expr]]:
        slots = []
        for body, index, statement in ast_utils.iter_statement_slots(function):
            if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Call):
                slots.append((body, index, statement))
        return slots

    def _find_in_function(self, function, class_name):
        points = []
        for index, (_body, _slot, statement) in enumerate(self._candidates(function)):
            call = statement.value
            points.append(
                InjectionPoint(
                    operator=self.name,
                    function=function.name,
                    lineno=statement.lineno,
                    node_index=index,
                    detail=ast_utils.call_name(call) or ast.unparse(call),
                    class_name=class_name,
                )
            )
        return points

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("call statement no longer present", operator=self.name)
        body, slot, _statement = candidates[point.node_index]
        if len([s for s in body if not isinstance(s, ast.Pass)]) <= 1:
            body[slot] = ast.Pass()
        else:
            del body[slot]

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Omit the call to {point.detail} inside the {point.qualified_function} function, "
            "as if the developer forgot to invoke it."
        )


class WrongArgumentOperator(FaultOperator):
    """Perturb a literal argument passed to a call (wrong parameter fault)."""

    name = "wrong_argument"
    fault_type = FaultType.WRONG_VALUE
    summary = "wrong argument value passed to a call"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[tuple[ast.Call, int]]:
        candidates = []
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                for arg_index, arg in enumerate(node.args):
                    if isinstance(arg, ast.Constant) and not isinstance(arg.value, bytes):
                        candidates.append((node, arg_index))
        return candidates

    def _find_in_function(self, function, class_name):
        points = []
        for index, (call, arg_index) in enumerate(self._candidates(function)):
            points.append(
                InjectionPoint(
                    operator=self.name,
                    function=function.name,
                    lineno=call.lineno,
                    node_index=index,
                    detail=f"{ast_utils.call_name(call) or 'call'} arg#{arg_index}",
                    class_name=class_name,
                )
            )
        return points

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("constant argument no longer present", operator=self.name)
        call, arg_index = candidates[point.node_index]
        constant = call.args[arg_index]
        magnitude = int(parameters.get("magnitude", 1))
        call.args[arg_index] = ast.Constant(value=ast_utils.perturb_constant(constant.value, magnitude))

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Pass a wrong value for {point.detail} in the {point.qualified_function} function."
        )


class SwapArgumentsOperator(FaultOperator):
    """Swap the first two positional arguments of a call (argument-order bug)."""

    name = "swap_arguments"
    fault_type = FaultType.WRONG_VALUE
    summary = "swapped call arguments"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.Call]:
        return [
            node
            for node in ast.walk(function)
            if isinstance(node, ast.Call) and len(node.args) >= 2
        ]

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=node.lineno,
                node_index=index,
                detail=ast_utils.call_name(node) or "call",
                class_name=class_name,
            )
            for index, node in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("multi-argument call no longer present", operator=self.name)
        call = candidates[point.node_index]
        call.args[0], call.args[1] = call.args[1], call.args[0]

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Swap the first two arguments of the call to {point.detail} in the "
            f"{point.qualified_function} function."
        )
