"""Fault operators on branching constructs.

These realise the classic "missing / wrong if construct" operator family from
G-SWFIT-style fault models: negated conditions, removed guards, and boundary
comparison mistakes.
"""

from __future__ import annotations

import ast
from typing import Any

from ...errors import NoInjectionPointError
from ...rng import SeededRNG
from ...types import FaultType
from .. import ast_utils
from .base import FaultOperator, InjectionPoint


class NegateConditionOperator(FaultOperator):
    """Negate the condition of an ``if`` statement (wrong logic branch taken)."""

    name = "negate_condition"
    fault_type = FaultType.WRONG_CONDITION
    summary = "negated branch condition"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.If]:
        return [node for node in ast.walk(function) if isinstance(node, ast.If)]

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=node.lineno,
                node_index=index,
                detail=ast.unparse(node.test),
                class_name=class_name,
            )
            for index, node in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("if statement no longer present", operator=self.name)
        node = candidates[point.node_index]
        node.test = ast.UnaryOp(op=ast.Not(), operand=node.test)

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Negate the condition '{point.detail}' in the {point.qualified_function} function "
            "so that the wrong branch is taken."
        )


class RemoveIfGuardOperator(FaultOperator):
    """Remove an ``if`` guard, executing its body unconditionally (missing check)."""

    name = "remove_if_guard"
    fault_type = FaultType.MISSING_CHECK
    summary = "missing validation check"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[tuple[list[ast.stmt], int, ast.If]]:
        slots = []
        for body, index, statement in ast_utils.iter_statement_slots(function):
            if isinstance(statement, ast.If) and not statement.orelse:
                slots.append((body, index, statement))
        return slots

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=statement.lineno,
                node_index=index,
                detail=ast.unparse(statement.test),
                class_name=class_name,
            )
            for index, (_body, _slot, statement) in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("guarded if statement no longer present", operator=self.name)
        body, slot, statement = candidates[point.node_index]
        mode = parameters.get("mode", "drop_guard")
        if mode == "drop_body":
            body[slot : slot + 1] = [ast.Pass()]
        else:
            body[slot : slot + 1] = statement.body

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        if parameters.get("mode") == "drop_body":
            return (
                f"Remove the check '{point.detail}' together with its handling logic from the "
                f"{point.qualified_function} function."
            )
        return (
            f"Remove the guard condition '{point.detail}' in the {point.qualified_function} "
            "function so that the guarded code always runs."
        )


class RelaxComparisonOperator(FaultOperator):
    """Replace a comparison operator by its boundary-shifted variant (< vs <=)."""

    name = "relax_comparison"
    fault_type = FaultType.WRONG_CONDITION
    summary = "boundary comparison mistake"

    _SWAPS: dict[type, type] = {
        ast.Lt: ast.LtE,
        ast.LtE: ast.Lt,
        ast.Gt: ast.GtE,
        ast.GtE: ast.Gt,
        ast.Eq: ast.NotEq,
        ast.NotEq: ast.Eq,
    }

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.Compare]:
        candidates = []
        for node in ast.walk(function):
            if isinstance(node, ast.Compare) and node.ops and type(node.ops[0]) in self._SWAPS:
                candidates.append(node)
        return candidates

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=node.lineno,
                node_index=index,
                detail=ast.unparse(node),
                class_name=class_name,
            )
            for index, node in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("comparison no longer present", operator=self.name)
        node = candidates[point.node_index]
        node.ops[0] = self._SWAPS[type(node.ops[0])]()

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Introduce a boundary mistake in the comparison '{point.detail}' inside the "
            f"{point.qualified_function} function."
        )
