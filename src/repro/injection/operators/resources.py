"""Fault operators for resource and memory leaks."""

from __future__ import annotations

import ast
from typing import Any

from ...errors import NoInjectionPointError
from ...rng import SeededRNG
from ...types import FaultType
from .. import ast_utils
from .base import FaultOperator, InjectionPoint

_RELEASE_HINTS = ("close", "release", "disconnect", "shutdown", "cleanup", "unlink", "clear")


class ResourceLeakOperator(FaultOperator):
    """Remove a resource release call (``close``, ``release``, ...)."""

    name = "resource_leak"
    fault_type = FaultType.RESOURCE_LEAK
    summary = "leaked resource that is never released"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[tuple[list[ast.stmt], int, ast.Expr]]:
        slots = []
        for body, index, statement in ast_utils.iter_statement_slots(function):
            if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Call):
                name = ast_utils.call_name(statement.value).lower()
                if any(name.endswith(hint) or f".{hint}" in name for hint in _RELEASE_HINTS):
                    slots.append((body, index, statement))
        return slots

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=statement.lineno,
                node_index=index,
                detail=ast_utils.call_name(statement.value),
                class_name=class_name,
            )
            for index, (_body, _slot, statement) in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("release call no longer present", operator=self.name)
        body, slot, _statement = candidates[point.node_index]
        if len([s for s in body if not isinstance(s, ast.Pass)]) <= 1:
            body[slot] = ast.Pass()
        else:
            del body[slot]

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Introduce a resource leak in the {point.qualified_function} function by never "
            f"calling {point.detail}."
        )


class UnboundedGrowthOperator(FaultOperator):
    """Accumulate data into a process-wide list on every call (memory leak)."""

    name = "memory_leak"
    fault_type = FaultType.MEMORY_LEAK
    summary = "memory leak through unbounded accumulation"

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=function.lineno,
                node_index=0,
                detail="body_start",
                class_name=class_name,
            )
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        payload_size = int(parameters.get("payload_size", 1024))
        leak_statement = ast.parse(
            "globals().setdefault('_injected_leak', []).append(bytearray(%d))" % payload_size
        ).body[0]
        function.body.insert(ast_utils.body_insert_index(function), leak_statement)

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Introduce a memory leak in the {point.qualified_function} function so that memory "
            "usage grows on every call and is never reclaimed."
        )


class SkipCleanupOnErrorOperator(FaultOperator):
    """Drop a ``finally`` block so cleanup is skipped on the error path."""

    name = "skip_cleanup_on_error"
    fault_type = FaultType.RESOURCE_LEAK
    summary = "cleanup skipped on the error path"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.Try]:
        return [
            node
            for node in ast.walk(function)
            if isinstance(node, ast.Try) and node.finalbody
        ]

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=node.lineno,
                node_index=index,
                detail="finally",
                class_name=class_name,
            )
            for index, node in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("try/finally block no longer present", operator=self.name)
        node = candidates[point.node_index]
        # Move the cleanup onto the success path only: it no longer runs when
        # the body raises, which is exactly how real cleanup bugs manifest.
        node.body = node.body + node.finalbody
        node.finalbody = []
        if not node.handlers and not node.finalbody:
            node.handlers = [
                ast.ExceptHandler(
                    type=ast.Name(id="Exception", ctx=ast.Load()),
                    name=None,
                    body=[ast.Raise(exc=None, cause=None)],
                )
            ]

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Skip resource cleanup on the error path of the {point.qualified_function} function "
            "by removing its finally block."
        )
