"""Fault operators corrupting computed data and emulating I/O failures."""

from __future__ import annotations

import ast
from typing import Any

from ...errors import NoInjectionPointError
from ...rng import SeededRNG
from ...types import FaultType
from .. import ast_utils
from .base import FaultOperator, InjectionPoint

_NETWORK_HINTS = ("send", "recv", "request", "fetch", "publish", "post", "get_remote", "rpc", "http")
_DISK_HINTS = ("write", "read", "flush", "save", "load", "persist")


class ArithmeticCorruptionOperator(FaultOperator):
    """Swap an arithmetic operator (+ <-> -, * <-> /) to corrupt computed values."""

    name = "arithmetic_corruption"
    fault_type = FaultType.DATA_CORRUPTION
    summary = "corrupted arithmetic computation"

    _SWAPS: dict[type, type] = {
        ast.Add: ast.Sub,
        ast.Sub: ast.Add,
        ast.Mult: ast.Add,
        ast.Div: ast.Mult,
    }

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.BinOp]:
        return [
            node
            for node in ast.walk(function)
            if isinstance(node, ast.BinOp) and type(node.op) in self._SWAPS
        ]

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=node.lineno,
                node_index=index,
                detail=ast.unparse(node),
                class_name=class_name,
            )
            for index, node in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("arithmetic expression no longer present", operator=self.name)
        node = candidates[point.node_index]
        node.op = self._SWAPS[type(node.op)]()

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Corrupt the computation '{point.detail}' in the {point.qualified_function} function "
            "so that it silently produces wrong results."
        )


class ReturnCorruptionOperator(FaultOperator):
    """Numerically perturb the value returned by a function (silent corruption)."""

    name = "return_corruption"
    fault_type = FaultType.DATA_CORRUPTION
    summary = "silently corrupted return value"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[ast.Return]:
        return [
            node
            for node in ast.walk(function)
            if isinstance(node, ast.Return) and node.value is not None
        ]

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=node.lineno,
                node_index=index,
                detail=ast.unparse(node.value),
                class_name=class_name,
            )
            for index, node in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("return statement no longer present", operator=self.name)
        node = candidates[point.node_index]
        helper = ast.parse(
            "def _injected_corrupt(value):\n"
            "    if isinstance(value, bool):\n"
            "        return not value\n"
            "    if isinstance(value, (int, float)):\n"
            "        return value + 1\n"
            "    if isinstance(value, str):\n"
            "        return value + '!'\n"
            "    if isinstance(value, dict):\n"
            "        return {key: _injected_corrupt(inner) for key, inner in value.items()}\n"
            "    if isinstance(value, list):\n"
            "        return value[:-1] if value else value\n"
            "    return value\n"
        ).body[0]
        if not any(
            isinstance(existing, ast.FunctionDef) and existing.name == "_injected_corrupt"
            for existing in tree.body
        ):
            tree.body.insert(0, helper)
        node.value = ast.Call(
            func=ast.Name(id="_injected_corrupt", ctx=ast.Load()),
            args=[node.value],
            keywords=[],
        )

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Silently corrupt the data returned by the {point.qualified_function} function "
            "without raising any error."
        )


class NetworkFailureOperator(FaultOperator):
    """Raise ``ConnectionError`` before a network-looking call executes."""

    name = "network_failure"
    fault_type = FaultType.NETWORK_FAILURE
    summary = "network dependency failure"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[tuple[list[ast.stmt], int, ast.stmt]]:
        slots = []
        for body, index, statement in ast_utils.iter_statement_slots(function):
            names = " ".join(ast_utils.call_names(statement)).lower()
            if names and any(hint in names for hint in _NETWORK_HINTS):
                slots.append((body, index, statement))
        return slots

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=statement.lineno,
                node_index=index,
                detail=", ".join(ast_utils.call_names(statement)),
                class_name=class_name,
            )
            for index, (_body, _slot, statement) in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("network call no longer present", operator=self.name)
        body, slot, _statement = candidates[point.node_index]
        message = parameters.get("message", "injected network failure")
        body.insert(slot, ast_utils.make_raise("ConnectionError", message))

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Simulate a network outage affecting the call to {point.detail} in the "
            f"{point.qualified_function} function."
        )


class DiskFailureOperator(FaultOperator):
    """Raise ``OSError`` before a storage-looking call executes."""

    name = "disk_failure"
    fault_type = FaultType.DISK_FAILURE
    summary = "storage subsystem failure"

    def _candidates(self, function: ast_utils.FunctionNode) -> list[tuple[list[ast.stmt], int, ast.stmt]]:
        slots = []
        for body, index, statement in ast_utils.iter_statement_slots(function):
            names = " ".join(ast_utils.call_names(statement)).lower()
            if names and any(hint in names for hint in _DISK_HINTS):
                slots.append((body, index, statement))
        return slots

    def _find_in_function(self, function, class_name):
        return [
            InjectionPoint(
                operator=self.name,
                function=function.name,
                lineno=statement.lineno,
                node_index=index,
                detail=", ".join(ast_utils.call_names(statement)),
                class_name=class_name,
            )
            for index, (_body, _slot, statement) in enumerate(self._candidates(function))
        ]

    def _mutate(self, tree, function, point, rng, parameters):
        candidates = self._candidates(function)
        if point.node_index >= len(candidates):
            raise NoInjectionPointError("storage call no longer present", operator=self.name)
        body, slot, _statement = candidates[point.node_index]
        message = parameters.get("message", "injected disk failure")
        body.insert(slot, ast_utils.make_raise("OSError", message))

    def describe(self, point: InjectionPoint, parameters: dict[str, Any]) -> str:
        return (
            f"Simulate a disk failure affecting the call to {point.detail} in the "
            f"{point.qualified_function} function."
        )
