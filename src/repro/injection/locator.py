"""Injection point location: scanning target code for applicable fault sites."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..types import FaultType
from .operators import FaultOperator, InjectionPoint, all_operators, operators_for_fault_type


@dataclass
class ScanReport:
    """All injection points found in one piece of source code."""

    points: list[InjectionPoint] = field(default_factory=list)

    def by_operator(self) -> dict[str, list[InjectionPoint]]:
        grouped: dict[str, list[InjectionPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.operator, []).append(point)
        return grouped

    def by_function(self) -> dict[str, list[InjectionPoint]]:
        grouped: dict[str, list[InjectionPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.qualified_function, []).append(point)
        return grouped

    def for_function(self, function_name: str) -> list[InjectionPoint]:
        """Points inside a function identified by bare or qualified name."""
        return [
            point
            for point in self.points
            if point.function == function_name or point.qualified_function == function_name
        ]

    def __len__(self) -> int:
        return len(self.points)


class InjectionPointLocator:
    """Scans source code with a set of fault operators to enumerate fault sites.

    This is the "analysis of the provided code to understand its structure,
    dependencies, and operational logic" step of the paper's NLP engine, seen
    from the injection side: it tells the rest of the system *where* each kind
    of fault could plausibly live in the target code.
    """

    def __init__(self, operators: Iterable[FaultOperator] | None = None) -> None:
        self._operators = list(operators) if operators is not None else all_operators()

    @property
    def operators(self) -> list[FaultOperator]:
        return list(self._operators)

    def scan(self, source: str) -> ScanReport:
        """Enumerate every injection point every configured operator can find."""
        report = ScanReport()
        for operator in self._operators:
            report.points.extend(operator.find_points(source))
        return report

    def scan_for_fault_type(self, source: str, fault_type: FaultType) -> ScanReport:
        """Enumerate injection points only for operators of one fault type."""
        report = ScanReport()
        for operator in operators_for_fault_type(fault_type):
            report.points.extend(operator.find_points(source))
        return report

    def scan_function(self, source: str, function_name: str) -> ScanReport:
        """Enumerate injection points restricted to a single function."""
        full = self.scan(source)
        return ScanReport(points=full.for_function(function_name))
