"""Programmable fault injector facade (the ProFIPy substitute of Section IV-1).

Given target source code and a :class:`~repro.injection.faultload.FaultLoad`,
the injector enumerates matching injection points, applies the requested
operators, and returns :class:`AppliedFault` records containing the patch, the
operator parameters, and a natural-language description of the injected fault.
Those records are both the unit of execution for injection campaigns and the
training triples for the LLM's supervised fine-tuning dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..errors import InjectionError, NoInjectionPointError
from ..rng import SeededRNG
from ..types import FaultType
from .faultload import FaultLoad
from .locator import InjectionPointLocator
from .operators import AppliedFault, FaultOperator, InjectionPoint, all_operators, get_operator


@dataclass
class InjectionPlan:
    """The concrete set of (operator, point, parameters) tuples to execute."""

    items: list[tuple[str, InjectionPoint, dict[str, Any]]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)


class ProgrammableInjector:
    """Applies programmable fault loads to Python source code."""

    def __init__(
        self,
        operators: Iterable[FaultOperator] | None = None,
        rng: SeededRNG | None = None,
    ) -> None:
        self._operators = list(operators) if operators is not None else all_operators()
        self._locator = InjectionPointLocator(self._operators)
        self._rng = rng or SeededRNG(0, namespace="injector")

    @property
    def locator(self) -> InjectionPointLocator:
        return self._locator

    def plan(self, source: str, faultload: FaultLoad) -> InjectionPlan:
        """Resolve a fault load against concrete injection points in ``source``."""
        plan = InjectionPlan()
        for entry in faultload:
            operator = get_operator(entry.operator)
            matching = [point for point in operator.find_points(source) if entry.matches(point)]
            for point in matching[: entry.max_points]:
                plan.items.append((entry.operator, point, dict(entry.parameters)))
        return plan

    def execute(self, source: str, plan: InjectionPlan, target_path: str | None = None) -> list[AppliedFault]:
        """Apply every planned fault independently against the pristine source."""
        applied: list[AppliedFault] = []
        for operator_name, point, parameters in plan.items:
            operator = get_operator(operator_name)
            applied.append(
                operator.apply(
                    source,
                    point,
                    rng=self._rng.fork(f"{operator_name}:{point.lineno}"),
                    parameters=parameters,
                    target_path=target_path,
                )
            )
        return applied

    def inject(self, source: str, faultload: FaultLoad, target_path: str | None = None) -> list[AppliedFault]:
        """Plan and execute a fault load in one call."""
        return self.execute(source, self.plan(source, faultload), target_path=target_path)

    def inject_fault_type(
        self,
        source: str,
        fault_type: FaultType,
        function_name: str | None = None,
        parameters: dict[str, Any] | None = None,
        target_path: str | None = None,
    ) -> AppliedFault:
        """Inject a single fault of a given type at the first applicable point.

        This is the entry point used by the generation grammar when a fault
        specification names a fault type and a target function but leaves the
        concrete mutation to the tool.
        """
        report = self._locator.scan_for_fault_type(source, fault_type)
        points = report.points
        if function_name:
            points = [
                point
                for point in points
                if point.function == function_name or point.qualified_function == function_name
            ]
        if not points:
            raise NoInjectionPointError(
                f"no injection point for fault type {fault_type.value!r}"
                + (f" in function {function_name!r}" if function_name else "")
            )
        point = points[0]
        operator = get_operator(point.operator)
        return operator.apply(
            source,
            point,
            rng=self._rng.fork(f"{fault_type.value}:{point.lineno}"),
            parameters=parameters,
            target_path=target_path,
        )

    def exhaustive_mutants(
        self,
        source: str,
        max_mutants: int | None = None,
        target_path: str | None = None,
    ) -> list[AppliedFault]:
        """Generate one mutant per discoverable injection point (dataset mode).

        Points that turn out not to produce a textual change (for example a
        removal inside already-trivial code) are skipped rather than treated as
        errors, because exhaustive scans intentionally over-approximate.
        """
        report = self._locator.scan(source)
        mutants: list[AppliedFault] = []
        for index, point in enumerate(report.points):
            if max_mutants is not None and len(mutants) >= max_mutants:
                break
            operator = get_operator(point.operator)
            try:
                mutants.append(
                    operator.apply(
                        source,
                        point,
                        rng=self._rng.fork(f"mutant:{index}"),
                        target_path=target_path,
                    )
                )
            except InjectionError:
                continue
        return mutants
