"""Programmable software fault injection for Python (ProFIPy-style substrate).

Public surface:

* :mod:`repro.injection.operators` — the fault operator library and registry;
* :class:`InjectionPointLocator` — scans code for applicable fault sites;
* :class:`FaultLoad` / :class:`FaultLoadEntry` — the programmable fault-load DSL;
* :class:`ProgrammableInjector` — plans and applies fault loads, and generates
  exhaustive mutants for dataset construction.
"""

from .faultload import FaultLoad, FaultLoadEntry
from .injector import InjectionPlan, ProgrammableInjector
from .locator import InjectionPointLocator, ScanReport
from .operators import (
    AppliedFault,
    FaultOperator,
    InjectionPoint,
    OPERATOR_REGISTRY,
    all_operators,
    fault_type_coverage,
    get_operator,
    operator_names,
    operators_for_fault_type,
)

__all__ = [
    "AppliedFault",
    "FaultLoad",
    "FaultLoadEntry",
    "FaultOperator",
    "InjectionPlan",
    "InjectionPoint",
    "InjectionPointLocator",
    "OPERATOR_REGISTRY",
    "ProgrammableInjector",
    "ScanReport",
    "all_operators",
    "fault_type_coverage",
    "get_operator",
    "operator_names",
    "operators_for_fault_type",
]
