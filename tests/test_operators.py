"""Behavioural tests for every fault operator family.

Each test applies an operator to a small module, executes original and mutated
versions, and asserts the *semantic* effect of the fault (wrong branch taken,
value corrupted, call skipped, ...) rather than just a textual difference.
"""

from __future__ import annotations

import ast

import pytest

from repro.errors import InjectionError, NoInjectionPointError
from repro.injection.operators import get_operator
from repro.rng import SeededRNG


def apply_first(operator_name: str, source: str, parameters=None, index: int = 0):
    operator = get_operator(operator_name)
    points = operator.find_points(source)
    assert points, f"no injection points for {operator_name}"
    return operator.apply(source, points[index], rng=SeededRNG(1), parameters=parameters)


def run_module(source: str) -> dict:
    namespace: dict = {}
    exec(compile(source, "<test-module>", "exec"), namespace)
    return namespace


class TestBranchingOperators:
    SOURCE = """
def guard(value):
    if value < 0:
        return "negative"
    return "ok"
"""

    def test_negate_condition_flips_branch(self):
        applied = apply_first("negate_condition", self.SOURCE)
        module = run_module(applied.patch.mutated)
        assert module["guard"](-5) == "ok"
        assert module["guard"](5) == "negative"

    def test_remove_if_guard_makes_body_unconditional(self):
        source = """
def safe_div(a, b):
    if b == 0:
        return None
    return a / b
"""
        applied = apply_first("remove_if_guard", source)
        module = run_module(applied.patch.mutated)
        assert module["safe_div"](4, 2) is None  # guard body now always runs

    def test_remove_if_guard_drop_body_mode(self):
        source = """
def validate(x):
    if x is None:
        raise ValueError("missing")
    return x
"""
        applied = apply_first("remove_if_guard", source, parameters={"mode": "drop_body"})
        module = run_module(applied.patch.mutated)
        assert module["validate"](None) is None  # no longer raises

    def test_relax_comparison_shifts_boundary(self):
        source = """
def in_range(i, limit):
    return i < limit
"""
        applied = apply_first("relax_comparison", source)
        module = run_module(applied.patch.mutated)
        assert module["in_range"](5, 5) is True  # < became <=

    def test_describe_mentions_function(self):
        applied = apply_first("negate_condition", self.SOURCE)
        assert "guard" in applied.description


class TestCallAndValueOperators:
    def test_remove_call_skips_side_effect(self):
        source = """
log = []

def record(x):
    log.append(x)

def work(x):
    record(x)
    return x * 2
"""
        applied = apply_first("remove_call", source)
        module = run_module(applied.patch.mutated)
        assert module["work"](3) == 6
        assert module["log"] == []

    def test_wrong_argument_changes_constant(self):
        source = """
def helper(a, b):
    return a + b

def compute():
    return helper(10, 5)
"""
        applied = apply_first("wrong_argument", source)
        module = run_module(applied.patch.mutated)
        assert module["compute"]() != 15

    def test_swap_arguments(self):
        source = """
def divide(a, b):
    return a / b

def ratio():
    return divide(10, 2)
"""
        applied = apply_first("swap_arguments", source)
        module = run_module(applied.patch.mutated)
        assert module["ratio"]() == pytest.approx(0.2)

    def test_wrong_value_assignment(self):
        source = """
def limit():
    maximum = 100
    return maximum
"""
        applied = apply_first("wrong_value_assignment", source)
        module = run_module(applied.patch.mutated)
        assert module["limit"]() != 100

    def test_remove_assignment_skips_state_update(self):
        source = """
state = {"count": 0}

def bump():
    state["count"] = state["count"] + 1
    return state["count"]
"""
        applied = apply_first("remove_assignment", source)
        module = run_module(applied.patch.mutated)
        module["bump"]()
        assert module["state"]["count"] == 0


class TestReturnOperators:
    def test_wrong_return_value(self):
        source = """
def answer():
    return 42
"""
        applied = apply_first("wrong_return_value", source)
        module = run_module(applied.patch.mutated)
        assert module["answer"]() != 42

    def test_remove_return_yields_none(self):
        source = """
def compute(x):
    return x * 3
"""
        applied = apply_first("remove_return", source)
        module = run_module(applied.patch.mutated)
        assert module["compute"](4) is None


class TestExceptionOperators:
    def test_raise_exception_injects_failure(self):
        source = """
def stable():
    return "fine"
"""
        applied = apply_first("raise_exception", source, parameters={"exception": "KeyError"})
        module = run_module(applied.patch.mutated)
        with pytest.raises(KeyError):
            module["stable"]()

    def test_swallow_exception_hides_error(self):
        source = """
def risky(x):
    try:
        return 10 / x
    except ZeroDivisionError:
        raise ValueError("cannot divide by zero")
"""
        applied = apply_first("swallow_exception", source)
        module = run_module(applied.patch.mutated)
        assert module["risky"](0) is None  # error silently swallowed

    def test_remove_raise_stops_propagation(self):
        source = """
def check(x):
    if x < 0:
        raise ValueError("negative")
    return x
"""
        applied = apply_first("remove_raise", source)
        module = run_module(applied.patch.mutated)
        assert module["check"](-1) == -1

    def test_broad_except_widens_handler(self):
        source = """
def read(mapping, key):
    try:
        return mapping[key]
    except KeyError:
        return None
"""
        applied = apply_first("broad_except", source)
        module = run_module(applied.patch.mutated)
        # TypeError (unhashable key) is now also swallowed by the broad handler.
        assert module["read"]({}, []) is None


class TestLoopOperators:
    def test_off_by_one_changes_iteration_count(self):
        source = """
def total(n):
    result = 0
    for i in range(5):
        result += 1
    return result
"""
        applied = apply_first("off_by_one", source)
        module = run_module(applied.patch.mutated)
        assert module["total"](5) != 5

    def test_early_loop_exit_processes_single_item(self):
        source = """
def collect(items):
    seen = []
    for item in items:
        seen.append(item)
    return seen
"""
        applied = apply_first("early_loop_exit", source)
        module = run_module(applied.patch.mutated)
        assert module["collect"]([1, 2, 3]) == [1]

    def test_infinite_loop_applies_only_to_while(self):
        operator = get_operator("infinite_loop")
        assert operator.find_points("def f():\n    for i in range(3):\n        pass\n") == []
        points = operator.find_points("def g(n):\n    while n > 0:\n        n -= 1\n    return n\n")
        assert len(points) == 1

    def test_infinite_loop_mutation_is_syntactically_valid(self):
        source = "def g(n):\n    while n > 0:\n        n -= 1\n    return n\n"
        applied = apply_first("infinite_loop", source)
        ast.parse(applied.patch.mutated)
        assert "while True" in applied.patch.mutated


class TestConcurrencyOperators:
    LOCKED = """
import threading

_lock = threading.Lock()
counter = {"value": 0}

def increment():
    with _lock:
        counter["value"] += 1
    return counter["value"]
"""

    def test_remove_lock_keeps_body(self):
        applied = apply_first("remove_lock", self.LOCKED)
        module = run_module(applied.patch.mutated)
        assert module["increment"]() == 1
        assert "with _lock" not in applied.patch.mutated.split("def increment")[1]

    def test_widen_race_window_adds_sleep(self):
        applied = apply_first("widen_race_window", self.LOCKED, parameters={"seconds": 0.0})
        assert "time.sleep" in applied.patch.mutated

    def test_split_atomic_update_still_computes_same_single_threaded_result(self):
        applied = apply_first("split_atomic_update", self.LOCKED, parameters={"seconds": 0.0})
        module = run_module(applied.patch.mutated)
        assert module["increment"]() == 1
        assert "_injected_snapshot" in applied.patch.mutated


class TestResourceAndTimingOperators:
    def test_resource_leak_removes_release(self):
        source = """
class Conn:
    def __init__(self):
        self.open = True
    def close(self):
        self.open = False

def use(conn):
    value = 1
    conn.close()
    return value
"""
        applied = apply_first("resource_leak", source)
        module = run_module(applied.patch.mutated)
        conn = module["Conn"]()
        module["use"](conn)
        assert conn.open is True

    def test_memory_leak_grows_global_store(self):
        source = """
def work():
    return 1
"""
        applied = apply_first("memory_leak", source, parameters={"payload_size": 10})
        module = run_module(applied.patch.mutated)
        module["work"]()
        module["work"]()
        assert len(module["_injected_leak"]) == 2

    def test_skip_cleanup_on_error(self):
        source = """
def guarded(resource, fail):
    try:
        if fail:
            raise RuntimeError("boom")
        return "done"
    finally:
        resource.append("cleaned")
"""
        applied = apply_first("skip_cleanup_on_error", source)
        module = run_module(applied.patch.mutated)
        resource: list = []
        with pytest.raises(RuntimeError):
            module["guarded"](resource, True)
        assert resource == []  # cleanup skipped on the error path

    def test_inject_delay_adds_sleep_call(self):
        applied = apply_first("inject_delay", "def ping():\n    return 'pong'\n", parameters={"seconds": 0.0})
        assert "time.sleep(0.0)" in applied.patch.mutated

    def test_raise_timeout(self):
        applied = apply_first("raise_timeout", "def fetch():\n    return 1\n")
        module = run_module(applied.patch.mutated)
        with pytest.raises(TimeoutError):
            module["fetch"]()

    def test_intermittent_timeout_fails_every_nth_call(self):
        applied = apply_first(
            "intermittent_timeout", "def fetch():\n    return 1\n", parameters={"nth_call": 3}
        )
        module = run_module(applied.patch.mutated)
        results = []
        for _ in range(6):
            try:
                results.append(module["fetch"]())
            except TimeoutError:
                results.append("timeout")
        assert results == [1, 1, "timeout", 1, 1, "timeout"]


class TestDataOperators:
    def test_arithmetic_corruption_changes_result(self):
        source = """
def add(a, b):
    return a + b
"""
        applied = apply_first("arithmetic_corruption", source)
        module = run_module(applied.patch.mutated)
        assert module["add"](4, 3) != 7

    def test_return_corruption_perturbs_numbers_silently(self):
        source = """
def price():
    return 100
"""
        applied = apply_first("return_corruption", source)
        module = run_module(applied.patch.mutated)
        assert module["price"]() != 100

    def test_network_failure_targets_network_calls(self):
        source = """
def send_request(payload):
    return {"sent": payload}

def submit(payload):
    response = send_request(payload)
    return response
"""
        applied = apply_first("network_failure", source)
        module = run_module(applied.patch.mutated)
        with pytest.raises(ConnectionError):
            module["submit"]({"x": 1})

    def test_disk_failure_targets_storage_calls(self):
        source = """
def write_record(record):
    return True

def persist(record):
    write_record(record)
    return "saved"
"""
        applied = apply_first("disk_failure", source)
        module = run_module(applied.patch.mutated)
        with pytest.raises(OSError):
            module["persist"]({"x": 1})


class TestOperatorContract:
    def test_apply_with_foreign_point_rejected(self):
        negate = get_operator("negate_condition")
        remove = get_operator("remove_call")
        source = "def f(x):\n    if x:\n        print(x)\n"
        point = negate.find_points(source)[0]
        with pytest.raises(InjectionError):
            remove.apply(source, point)

    def test_apply_on_source_without_function_raises(self):
        operator = get_operator("negate_condition")
        source = "def f(x):\n    if x:\n        return 1\n    return 0\n"
        point = operator.find_points(source)[0]
        with pytest.raises(NoInjectionPointError):
            operator.apply("def other():\n    return 2\n", point)

    def test_no_change_is_an_error(self):
        # remove_call on a body whose only statement is the call replaces it with
        # pass; applying to an already-empty function must not silently no-op.
        operator = get_operator("remove_call")
        assert operator.find_points("def empty():\n    pass\n") == []
