"""Serving-plane resilience over live sockets: shedding, deadlines, cancel, drain.

These tests drive a real :class:`FaultInjectionServer` (and, for the drain
test, a real ``python -m repro serve`` process with self-chaos enabled)
through ``http.client`` — the exact path external clients take — and pin the
HTTP halves of the resilience contract in docs/RESILIENCE.md.
"""

from __future__ import annotations

import http.client
import json
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import FaultInjectionServer, PipelineConfig, ServerConfig
from repro.config import EngineConfig, ExecutionConfig

DESCRIPTION = "Simulate a timeout in the transfer function causing an unhandled exception"

#: Occupies the single dispatch thread long enough to queue work behind it.
BLOCKER = {"targets": ["bank"], "samples_per_target": 2}


@pytest.fixture()
def server():
    """A fresh live server per test (admission state must not leak across tests)."""
    config = PipelineConfig(
        execution=ExecutionConfig(max_workers=2),
        engine=EngineConfig(max_queue_delay_seconds=0.0),
    )
    with FaultInjectionServer(
        config=config,
        server_config=ServerConfig(port=0, max_queue_depth=1, retry_after_seconds=2.0),
    ) as live:
        yield live


def _exchange(server, method: str, path: str, body=None):
    """One HTTP exchange → (status, decoded JSON, response headers)."""
    connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
    try:
        payload = json.dumps(body).encode() if isinstance(body, dict) else body
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        return response.status, json.loads(response.read()), dict(response.getheaders())
    finally:
        connection.close()


def _await_ticket(server, poll_path: str, timeout: float = 120.0) -> dict:
    """Poll an async ticket until its envelope arrives."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body, _headers = _exchange(server, "GET", poll_path)
        if status != 202:
            return body
        time.sleep(0.05)
    raise AssertionError(f"ticket {poll_path} never resolved")


class TestAdmissionControl:
    def test_saturated_queue_sheds_with_429_and_retry_after(self, server):
        status, blocker, _ = _exchange(server, "POST", "/v1/dataset?async=1", BLOCKER)
        assert status == 202
        # The blocker occupies the dispatch thread; this one fills the queue.
        status, queued, _ = _exchange(
            server, "POST", "/v1/generate?async=1", {"description": DESCRIPTION}
        )
        assert status == 202
        status, shed, headers = _exchange(
            server, "POST", "/v1/generate", {"description": DESCRIPTION}
        )
        assert status == 429
        assert shed["error"]["kind"] == "overloaded"
        assert shed["error"]["type"] == "AdmissionError"
        assert headers.get("Retry-After") == "2"
        # Once the queue drains, admission opens again.
        assert _await_ticket(server, blocker["poll"])["status"] == "ok"
        assert _await_ticket(server, queued["poll"])["status"] == "ok"
        status, envelope, _ = _exchange(
            server, "POST", "/v1/generate", {"description": DESCRIPTION}
        )
        assert status == 200 and envelope["status"] == "ok"


class TestRequestDeadlines:
    def test_expired_queue_deadline_maps_to_504(self, server):
        status, blocker, _ = _exchange(server, "POST", "/v1/dataset?async=1", BLOCKER)
        assert status == 202
        status, envelope, _ = _exchange(
            server,
            "POST",
            "/v1/generate",
            {"description": DESCRIPTION, "deadline_seconds": 0.005},
        )
        assert status == 504
        assert envelope["status"] == "error"
        assert envelope["error"]["kind"] == "timeout"
        assert _await_ticket(server, blocker["poll"])["status"] == "ok"

    def test_generous_deadline_serves_normally(self, server):
        status, envelope, _ = _exchange(
            server,
            "POST",
            "/v1/generate",
            {"description": DESCRIPTION, "deadline_seconds": 120.0},
        )
        assert status == 200 and envelope["status"] == "ok"


class TestCancellation:
    def test_delete_recalls_a_queued_request(self, server):
        status, blocker, _ = _exchange(server, "POST", "/v1/dataset?async=1", BLOCKER)
        assert status == 202
        status, queued, _ = _exchange(
            server, "POST", "/v1/generate?async=1", {"description": DESCRIPTION}
        )
        assert status == 202
        status, envelope, _ = _exchange(server, "DELETE", queued["poll"])
        assert status == 200
        assert envelope["status"] == "cancelled"
        assert envelope["error"]["kind"] == "cancelled"
        # A cancelled ticket stays pollable and a second cancel is refused.
        status, polled, _ = _exchange(server, "GET", queued["poll"])
        assert status == 200 and polled["status"] == "cancelled"
        status, refused, _ = _exchange(server, "DELETE", queued["poll"])
        assert status == 409
        assert _await_ticket(server, blocker["poll"])["status"] == "ok"

    def test_delete_of_finished_or_unknown_requests(self, server):
        status, ticket, _ = _exchange(
            server, "POST", "/v1/generate?async=1", {"description": DESCRIPTION}
        )
        assert status == 202
        assert _await_ticket(server, ticket["poll"])["status"] == "ok"
        status, _body, _ = _exchange(server, "DELETE", ticket["poll"])
        assert status == 409  # finished work cannot be recalled
        status, _body, _ = _exchange(server, "DELETE", "/v1/requests/no-such-id")
        assert status == 404


@pytest.mark.pool
class TestGracefulDegradation:
    def test_open_breaker_serves_degraded_envelopes_not_errors(self, server):
        breaker = server.engine._breakers.get("bank", "pool")
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        status, envelope, _ = _exchange(
            server,
            "POST",
            "/v1/generate",
            {"description": DESCRIPTION, "target": "bank", "execute": True, "mode": "pool"},
        )
        assert status == 200  # degradation is a successful (partial) response
        assert envelope["status"] == "degraded"
        assert envelope["payload"]["outcome"] is None
        assert envelope["payload"]["fault"]["fault_id"].startswith("fault-")
        assert envelope["error"]["kind"] == "unavailable"

    def test_stats_expose_the_execution_plane(self, server):
        status, envelope, _ = _exchange(
            server,
            "POST",
            "/v1/generate",
            {"description": DESCRIPTION, "target": "bank", "execute": True, "mode": "pool"},
        )
        assert status == 200
        status, stats, _ = _exchange(server, "GET", "/v1/stats")
        assert status == 200
        execution = stats["execution"]
        assert execution["totals"]["tasks_executed"] >= 1
        assert "bank" in execution["pools"]
        assert "bank:pool" in execution["breakers"]


def _spawn_chaotic_server() -> tuple[subprocess.Popen, str, int]:
    """Start ``python -m repro serve --chaos`` on an ephemeral port."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--mode",
            "pool",
            "--max-workers",
            "2",
            "--queue-delay",
            "0.002",
            "--chaos",
            "0.3",
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    seen: list[str] = []
    while True:
        line = process.stderr.readline()
        if not line:
            process.kill()
            raise RuntimeError(f"server did not start; stderr was {seen!r}")
        if "serving on " in line:
            url = line.split("serving on ")[1].split(" ")[0]
            host, port = url.removeprefix("http://").split(":")
            return process, host, int(port)
        seen.append(line.rstrip())


@pytest.mark.pool
class TestDrainUnderLoad:
    def test_sigint_with_queued_requests_and_crashing_workers_exits_cleanly(self):
        """Satellite: SIGINT mid-load resolves every ticket and exits 0.

        The server runs with ``--chaos 0.3``, so pool workers are being
        SIGKILLed mid-task while the drain happens; the in-flight sync
        exchange must still receive a complete envelope and the process
        must shut down gracefully.
        """
        process, host, port = _spawn_chaotic_server()
        sync_result: dict = {}

        def sync_call() -> None:
            connection = http.client.HTTPConnection(host, port, timeout=120)
            try:
                connection.request(
                    "POST",
                    "/v1/generate",
                    body=json.dumps(
                        {
                            "description": DESCRIPTION,
                            "target": "bank",
                            "execute": True,
                            "mode": "pool",
                        }
                    ).encode(),
                )
                response = connection.getresponse()
                sync_result["status"] = response.status
                sync_result["body"] = json.loads(response.read())
            finally:
                connection.close()

        try:
            # Queue execution-heavy async work so workers are mid-crash...
            connection = http.client.HTTPConnection(host, port, timeout=60)
            try:
                for index in range(4):
                    connection.request(
                        "POST",
                        "/v1/generate?async=1",
                        body=json.dumps(
                            {
                                "description": DESCRIPTION,
                                "target": "bank",
                                "execute": True,
                                "mode": "pool",
                                "request_id": f"drain-{index}",
                            }
                        ).encode(),
                    )
                    response = connection.getresponse()
                    response.read()
                    # 202 accepted or 429 shed — both leave the server draining
                    # under load, which is the scenario being pinned.
                    assert response.status in (202, 429)
            finally:
                connection.close()
            # ... keep one sync exchange in flight ...
            thread = threading.Thread(target=sync_call)
            thread.start()
            time.sleep(0.1)
            # ... and pull the plug.
            process.send_signal(signal.SIGINT)
            thread.join(timeout=120)
            assert not thread.is_alive()
            assert process.wait(timeout=120) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
            process.stderr.close()
        # The in-flight exchange resolved with a complete, parseable envelope.
        assert sync_result["body"]["status"] in ("ok", "degraded", "error")
        assert sync_result["body"]["schema_version"] == "1.0"
