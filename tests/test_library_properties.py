"""Property-based tests across the NLP engine, grammar, and evaluation metrics."""

from __future__ import annotations

import ast

from hypothesis import given, settings, strategies as st

from repro.eval import decision_accuracy, edit_similarity, token_bleu, token_jaccard
from repro.llm import CodeGrammar, DECISION_SLOTS, DecisionVector, reference_decisions
from repro.nlp import FaultSpecExtractor, PromptBuilder, Tokenizer
from repro.rlhf import FeedbackParser
from repro.types import FaultType, HandlingStyle, TriggerKind

_extractor = FaultSpecExtractor()
_grammar = CodeGrammar()
_prompts = PromptBuilder()
_tokenizer = Tokenizer()
_parser = FeedbackParser()

_FAULT_PHRASES = [
    "a timeout", "a race condition", "a memory leak", "an unhandled exception",
    "a silent data corruption", "an off-by-one error", "a resource leak",
    "a network outage", "a disk failure", "an infinite loop", "a swallowed exception",
]
_VERBS = ["Simulate", "Introduce", "Inject", "Create"]
_LOCATIONS = ["process_transaction", "the checkout function", "the payment service", "update_inventory"]
_SUFFIXES = [
    "", " when the cart is empty", " 30% of the time", " every 3rd call",
    " with a retry mechanism", " and the error is only logged",
]


@st.composite
def fault_description(draw):
    verb = draw(st.sampled_from(_VERBS))
    phrase = draw(st.sampled_from(_FAULT_PHRASES))
    location = draw(st.sampled_from(_LOCATIONS))
    suffix = draw(st.sampled_from(_SUFFIXES))
    return f"{verb} {phrase} in {location}{suffix}."


@st.composite
def decision_vector(draw):
    return DecisionVector.from_dict(
        {slot: draw(st.sampled_from(values)) for slot, values in DECISION_SLOTS.items()}
    )


class TestSpecExtractionProperties:
    @given(fault_description())
    @settings(max_examples=80, deadline=None)
    def test_extraction_always_produces_a_valid_spec(self, text):
        spec = _extractor.extract_from_text(text)
        assert isinstance(spec.fault_type, FaultType)
        assert isinstance(spec.handling, HandlingStyle)
        assert isinstance(spec.trigger.kind, TriggerKind)
        assert 0.0 <= spec.confidence <= 1.0
        # Round trip through the dictionary form is loss-free.
        from repro.types import FaultSpec

        assert FaultSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    @given(fault_description())
    @settings(max_examples=40, deadline=None)
    def test_extraction_is_deterministic(self, text):
        assert _extractor.extract_from_text(text).to_dict() == _extractor.extract_from_text(text).to_dict()

    @given(fault_description())
    @settings(max_examples=40, deadline=None)
    def test_reference_decisions_are_always_valid(self, text):
        spec = _extractor.extract_from_text(text)
        reference_decisions(spec).validate()

    @given(st.text(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_tokenizer_offsets_always_match(self, text):
        for token in _tokenizer.tokenize(text):
            assert text[token.start : token.end] == token.text

    @given(st.text(max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_feedback_parser_never_crashes(self, critique):
        directives = _parser.directives_from_text(critique)
        assert isinstance(directives, dict)


class TestGrammarProperties:
    @given(fault_description(), decision_vector())
    @settings(max_examples=60, deadline=None)
    def test_rendered_code_is_always_valid_python(self, text, decisions):
        spec = _extractor.extract_from_text(text)
        prompt = _prompts.build(spec, None)
        rendered = _grammar.render(prompt, decisions)
        ast.parse(rendered.function_source)
        assert rendered.notes


class TestMetricProperties:
    code_snippets = st.sampled_from(
        [
            "def f(x):\n    return x + 1\n",
            "def g(y):\n    return y * 2\n",
            "class A:\n    pass\n",
            "for i in range(10):\n    print(i)\n",
            "try:\n    work()\nexcept ValueError:\n    pass\n",
        ]
    )

    @given(code_snippets, code_snippets)
    @settings(max_examples=40, deadline=None)
    def test_similarity_metrics_bounded_and_symmetric_identity(self, left, right):
        for metric in (edit_similarity, token_jaccard):
            value = metric(left, right)
            assert 0.0 <= value <= 1.0
            assert metric(left, left) == 1.0
        assert 0.0 <= token_bleu(left, right) <= 1.0

    @given(decision_vector(), decision_vector())
    @settings(max_examples=60, deadline=None)
    def test_decision_accuracy_bounds(self, left, right):
        accuracy = decision_accuracy(left.to_dict(), right.to_dict())
        assert 0.0 <= accuracy <= 1.0
        assert decision_accuracy(left.to_dict(), left.to_dict()) == 1.0

    @given(decision_vector(), decision_vector())
    @settings(max_examples=60, deadline=None)
    def test_decision_distance_is_a_semimetric(self, left, right):
        from repro.llm import decision_distance

        assert decision_distance(left, left) == 0.0
        assert decision_distance(left, right) == decision_distance(right, left)
        assert 0.0 <= decision_distance(left, right) <= 1.0
