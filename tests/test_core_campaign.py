"""Tests for campaign orchestration and the neural-vs-baseline comparison."""

from __future__ import annotations

import pytest

from repro.core import CampaignOrchestrator

SCENARIOS = [
    "Simulate a timeout in the transfer function causing an unhandled exception",
    "Introduce a race condition in apply_interest under concurrent updates",
    "Make the withdraw function silently swallow errors instead of raising them",
    "Remove the overdraft validation check from withdraw",
    "Silently corrupt the amount returned by the transfer function",
]


@pytest.fixture(scope="module")
def orchestrator(prepared_pipeline):
    return CampaignOrchestrator(prepared_pipeline, target="bank", mode="inprocess")


@pytest.fixture(scope="module")
def comparison(orchestrator):
    return orchestrator.compare(SCENARIOS, budget=8)


class TestNeuralCampaign:
    def test_neural_coverage_is_full(self, comparison):
        neural = comparison.techniques["neural"]
        assert neural.coverage.scenario_coverage == pytest.approx(1.0)
        assert neural.effectiveness.total == len(SCENARIOS)

    def test_neural_campaign_activates_faults(self, comparison):
        neural = comparison.techniques["neural"]
        assert neural.effectiveness.activation_rate > 0.0


class TestBaselineCampaigns:
    def test_predefined_covers_fewer_scenarios_than_neural(self, comparison):
        neural = comparison.techniques["neural"]
        predefined = comparison.techniques["predefined-model"]
        assert predefined.coverage.scenario_coverage < neural.coverage.scenario_coverage

    def test_predefined_requires_more_effort(self, comparison):
        neural = comparison.techniques["neural"]
        predefined = comparison.techniques["predefined-model"]
        assert predefined.effort_minutes > neural.effort_minutes

    def test_random_expresses_no_scenarios(self, comparison):
        random_result = comparison.techniques["random"]
        assert random_result.coverage.scenario_coverage == 0.0
        assert random_result.effectiveness.total > 0

    def test_budget_respected(self, comparison):
        assert comparison.techniques["predefined-model"].effectiveness.total <= 8
        assert comparison.techniques["random"].effectiveness.total <= 8


class TestComparisonRendering:
    def test_summary_rows_have_all_techniques(self, comparison):
        rows = comparison.summary_rows()
        assert {row["technique"] for row in rows} == {"neural", "predefined-model", "random"}
        for row in rows:
            assert 0.0 <= row["scenario_coverage"] <= 1.0
            assert row["effort_minutes"] >= 0.0

    def test_to_dict_serialisable(self, comparison):
        import json

        json.dumps(comparison.to_dict())

    def test_efficiency_comparison_favours_neural(self, orchestrator):
        efficiency = orchestrator.efficiency_comparison(SCENARIOS)
        assert efficiency["speedup"] > 1.0
        assert efficiency["neural"]["minutes"] < efficiency["conventional"]["minutes"]
